"""Extension — ISI equalization beyond the plateau limit (§10 future work).

The paper's receivers (and this library's default) estimate each band's
color from its *pure plateau* — the scanlines whose exposure window sits
inside one symbol period.  That plateau shrinks as ``exposure / band``
grows and vanishes entirely when the exposure approaches the symbol period,
hard-limiting the symbol-rate x exposure envelope (dim scenes force long
exposures; see the range bench).

``repro.rx.equalizer`` removes that limit for exposures up to one symbol
period: the mixing of adjacent symbols into each scanline is *exactly
known* (the exposure window's overlap with each symbol period), so a
tridiagonal least-squares deconvolution in linear RGB recovers per-symbol
colors from pure and mixed scanlines alike.

The bench locks the exposure at 92% of the symbol period (plateau ~2.5
scanlines: plateau estimation yields nothing) and compares the standard and
equalized receivers on the same recording.
"""

import pytest

from repro.camera.auto_exposure import ExposureSettings
from repro.camera.devices import DeviceProfile, nexus_5
from repro.core.config import SystemConfig
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.channel import ChannelConditions
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE

RATE = 4000.0
EXPOSURE_S = 0.92 / RATE  # plateau ~2.5 rows on the Nexus 5: standard dead


def run_pair(order: int, seed: int = 5):
    device = nexus_5()
    config = SystemConfig(
        csk_order=order, symbol_rate=RATE,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(3 * config.rs_params().k, seed=seed))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name, timing=device.timing, response=device.response,
        noise=device.noise, optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    camera.auto_exposure.lock(ExposureSettings(EXPOSURE_S, 100))
    frames = camera.record(waveform, duration=2.0)

    outcomes = {}
    for label, kwargs in (
        ("standard", dict(equalize=False)),
        # Deconvolution leaks a little energy into OFF symbols (L* is
        # compressive), so the dark threshold loosens in equalized mode.
        ("equalized", dict(equalize=True, off_lightness=55.0)),
    ):
        receiver = make_receiver(config, device.timing, **kwargs)
        report = receiver.process_frames(frames)
        matches = align_ground_truth(report.bands, plan.symbols, waveform)
        outcomes[label] = {
            "symbols": report.symbols_detected,
            "ser": data_symbol_error_rate(matches),
            "decoded": report.packets_decoded,
            "seen": report.packets_seen,
        }
    return outcomes


def test_extension_isi_equalizer(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_pair(order=4), rounds=1, iterations=1
    )

    print(
        "\nExtension — ISI equalization at exposure = 0.92 x symbol period "
        "(4-CSK @ 4 kHz, Nexus 5)"
    )
    print("  receiver  | symbols | SER     | packets decoded/seen")
    for label, result in outcomes.items():
        print(
            f"  {label:9s} | {result['symbols']:7d} | {result['ser']:.4f} |"
            f" {result['decoded']}/{result['seen']}"
        )

    standard = outcomes["standard"]
    equalized = outcomes["equalized"]

    # The plateau receiver is physically blind here: no pure scanlines.
    assert standard["symbols"] == 0
    assert standard["decoded"] == 0

    # Equalization revives the link end to end.
    assert equalized["symbols"] > 1000
    assert equalized["ser"] < 0.08
    assert equalized["decoded"] >= 10
    assert equalized["decoded"] >= 0.7 * equalized["seen"]
