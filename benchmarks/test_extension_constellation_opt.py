"""Extension — camera-aware constellation optimization (§10 future work).

The paper closes with: "we plan to optimize the CSK constellation design to
minimize the inter-symbol interference."  This bench implements the
separation-maximizing half of that program and evaluates it end-to-end:
a 32-CSK constellation optimized for the Nexus 5's *received* chroma space
(via the balanced hill climb in ``repro.csk.optimizer``, with exposure,
white balance and sensor saturation modelled) runs against the standard
design on the full link at the stressed corner.

The result is itself a finding that supports the paper's framing: the
optimizer widens the static decision-space margin ~3x — a necessary
condition — but at the high-rate corner the link's errors are dominated by
*inter-symbol interference* (band-boundary mixing and residual timing
error), which point separation alone does not control.  That is exactly why
the paper's future work targets ISI rather than plain separation; the
optimizer here is the infrastructure such a design effort would start from.
"""

import pytest

from repro.camera.devices import nexus_5
from repro.core.config import SystemConfig
from repro.csk.constellation import design_constellation
from repro.csk.optimizer import (
    optimize_constellation,
    received_space_map,
    separation_report,
)
from repro.link.simulator import LinkSimulator
from repro.phy.led import typical_tri_led

ORDER = 32
RATE = 4000.0


def run_link(constellation, seed=29):
    device = nexus_5()
    config = SystemConfig(
        csk_order=ORDER,
        symbol_rate=RATE,
        design_loss_ratio=device.timing.gap_fraction,
        custom_constellation=constellation,
    )
    result = LinkSimulator(
        config, device, simulated_columns=32, seed=seed
    ).run(duration_s=2.5)
    return result.metrics


def test_extension_constellation_optimization(benchmark):
    def run():
        led = typical_tri_led()
        device = nexus_5()
        mapper = received_space_map(device.response, led)
        standard = design_constellation(ORDER, led.gamut)
        optimized = optimize_constellation(
            ORDER, led.gamut, space_map=mapper, iterations=2500, seed=3
        )
        return {
            "standard_margin": separation_report(standard, mapper)[
                "decision_min_separation"
            ],
            "optimized_margin": separation_report(optimized, mapper)[
                "decision_min_separation"
            ],
            "standard_metrics": run_link(None),
            "optimized_metrics": run_link(optimized),
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nExtension — camera-aware constellation design (32-CSK @ 4 kHz)")
    print(
        f"  received-space min separation: "
        f"{outcome['standard_margin']:.2f} -> {outcome['optimized_margin']:.2f} dE"
    )
    std = outcome["standard_metrics"]
    opt = outcome["optimized_metrics"]
    print(f"  standard : SER={std.data_symbol_error_rate:.4f} "
          f"goodput={std.goodput_bps:.0f} bps "
          f"({std.packets_decoded}/{std.packets_seen} packets)")
    print(f"  optimized: SER={opt.data_symbol_error_rate:.4f} "
          f"goodput={opt.goodput_bps:.0f} bps "
          f"({opt.packets_decoded}/{opt.packets_seen} packets)")

    print(
        "  finding: the static margin is a necessary but not sufficient "
        "condition —\n  at this corner errors are ISI/alignment-bound, so "
        "separation alone does not\n  lower SER; the paper's future work "
        "targets ISI for this reason."
    )

    # The optimizer must widen the decision-space margin substantially —
    # the separation-maximizing half of the §10 program.
    assert outcome["optimized_margin"] > 1.3 * outcome["standard_margin"]
    # The optimized design must remain *usable* end-to-end (same error
    # regime, not a collapse): at this ISI-bound corner both designs sit in
    # the same SER band.
    assert opt.data_symbol_error_rate < 2.0 * max(
        std.data_symbol_error_rate, 0.02
    )
    # Both calibrate and decode through the full chain.
    assert opt.packets_seen > 10 and std.packets_seen > 10
