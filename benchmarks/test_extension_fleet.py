"""Extension — one transmitter, many phones (§8's closing observation).

"In practice, where a single ColorBars transmitter has to support different
smartphones, the achievable goodput remains bounded by the slowest (highest
inter-frame loss ratio) smartphone that needs to be supported."

The bench runs one shared broadcast (provisioned for the fleet's worst loss
ratio) against both paper phones, and each phone against a link provisioned
just for it.  Shape checks: the shared link costs the *better* receiver
goodput (extra parity it did not need), while the worst receiver loses
little — its loss ratio set the provisioning.
"""

import pytest

from repro.camera.devices import iphone_5s, nexus_5
from repro.link.multi import broadcast_to_fleet


def test_extension_fleet_provisioning(benchmark):
    report = benchmark.pedantic(
        lambda: broadcast_to_fleet(
            [nexus_5(), iphone_5s()],
            csk_order=16,
            symbol_rate=3000,
            duration_s=2.5,
            compare_dedicated=True,
            seed=23,
        ),
        rounds=1,
        iterations=1,
    )

    print("\nExtension — fleet broadcast (16-CSK @ 3 kHz)")
    for line in report.summary_lines():
        print(" " + line)
    for member in report.members:
        print(
            f"  {member.device_name}: provisioning cost "
            f"{member.provisioning_cost_bps:+.0f} bps"
        )

    # The shared link provisions for the iPhone's loss ratio.
    assert report.worst_loss_ratio == pytest.approx(0.3727)

    by_name = {m.device_name: m for m in report.members}
    nexus = by_name["Nexus 5"]
    iphone = by_name["iPhone 5S"]

    # Everyone still decodes on the shared link.
    assert nexus.shared_metrics.goodput_bps > 0
    assert iphone.shared_metrics.goodput_bps > 0

    # The better receiver pays for the fleet: its dedicated link would
    # carry meaningfully more payload than the shared one.
    assert nexus.dedicated_metrics.goodput_bps > nexus.shared_metrics.goodput_bps

    # The worst receiver defines the provisioning, so a dedicated link
    # gains it comparatively little.
    nexus_gain = nexus.provisioning_cost_bps
    iphone_gain = iphone.provisioning_cost_bps
    assert iphone_gain < nexus_gain
