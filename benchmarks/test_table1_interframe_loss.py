"""Table 1 — symbols received per second and average inter-frame loss ratio.

Paper values (Table 1):

    rate        1000 Hz  2000 Hz  3000 Hz  4000 Hz   avg loss
    Nexus 5      772.84  1506.11  2352.65  3060.67     0.2312
    iPhone 5S    640.55  1263.56  1887.73  2431.01     0.3727

The bench regenerates both rows from the simulated recordings: received
symbols per second are the receiver's detected bands per second, and the
loss ratio comes from the gap accounting.  Shape checks: the iPhone loses
more symbols than the Nexus at every rate, and both land near their
calibrated Table 1 ratios.
"""

import pytest

from benchmarks.conftest import RATES

PAPER_LOSS = {"Nexus 5": 0.2312, "iPhone 5S": 0.3727}


@pytest.fixture(scope="module")
def table1(full_sweep):
    rows = {}
    for device_name, cells in full_sweep.items():
        per_rate = {}
        losses = []
        for rate in RATES:
            # Use the 8-CSK column (any order shares the timing behaviour).
            result = cells.get((8, rate))
            if result is None:
                continue
            received_per_s = (
                result.report.symbols_detected / result.metrics.duration_s
            )
            per_rate[rate] = received_per_s
            losses.append(result.metrics.inter_frame_loss_ratio)
        rows[device_name] = (per_rate, sum(losses) / len(losses))
    return rows


def test_table1_interframe_loss(table1, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nTable 1 — symbols received per second / avg inter-frame loss ratio")
    print(f"{'device':>10} | " + " | ".join(f"{int(r)} Hz" for r in RATES) + " | avg loss (paper)")
    for device_name, (per_rate, avg_loss) in table1.items():
        cols = " | ".join(
            f"{per_rate.get(rate, float('nan')):7.1f}" for rate in RATES
        )
        print(
            f"{device_name:>10} | {cols} | {avg_loss:.4f} "
            f"(paper {PAPER_LOSS[device_name]:.4f})"
        )

    nexus_rates, nexus_loss = table1["Nexus 5"]
    iphone_rates, iphone_loss = table1["iPhone 5S"]

    # Loss ratios close to the Table 1 calibration points.
    assert nexus_loss == pytest.approx(PAPER_LOSS["Nexus 5"], abs=0.05)
    assert iphone_loss == pytest.approx(PAPER_LOSS["iPhone 5S"], abs=0.06)

    # iPhone receives fewer symbols per second at every rate.
    for rate in RATES:
        if rate in nexus_rates and rate in iphone_rates:
            assert iphone_rates[rate] < nexus_rates[rate]

    # Received symbols scale roughly as (1 - l) * S.
    for device_name, (per_rate, avg_loss) in table1.items():
        for rate, received in per_rate.items():
            assert received == pytest.approx((1 - avg_loss) * rate, rel=0.25)
