"""Ablation — the two demodulation design choices of §6-§7.

1. **CIELab vs RGB matching** (§6.1): the receiver classifies bands by
   chroma distance in the ab-plane.  The ablation reclassifies the same
   received bands by Euclidean distance in raw mean RGB instead; brightness
   variation leaks into the metric and errors rise.
2. **Calibration on vs off** (§6.2): with calibration off, bands are matched
   against the *nominal* constellation colors pushed through an ideal
   pipeline instead of the references learned from calibration packets; the
   device's color response mismatch turns into symbol errors.
"""

import numpy as np
import pytest

from repro.camera.devices import DeviceProfile, nexus_5
from repro.core.config import SystemConfig
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.csk.demodulator import DecisionKind, nominal_calibration
from repro.link.channel import ChannelConditions
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE

ORDER = 16
RATE = 2000.0


@pytest.fixture(scope="module")
def recording():
    """One shared recording: frames, plan, waveform, calibrated receiver."""
    device = nexus_5()
    config = SystemConfig(
        csk_order=ORDER, symbol_rate=RATE,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(3 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name,
        timing=device.timing,
        response=device.response,
        noise=device.noise,
        optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=13)
    frames = camera.record(waveform, duration=2.5)
    receiver = make_receiver(config, device.timing)
    report = receiver.process_frames(frames)
    return config, transmitter, plan, waveform, receiver, report


def classify_rgb(report, rgb_refs):
    """Reclassify every received band by raw-RGB nearest neighbor."""
    from repro.color.cielab import lab_to_xyz
    from repro.color.srgb import xyz_to_srgb

    decisions = []
    for band in report.bands:
        lab = band.lab
        if lab[0] < 12.0:
            decisions.append(("off", None))
            continue
        rgb = xyz_to_srgb(lab_to_xyz(lab))
        distances = np.sqrt(((rgb_refs - rgb) ** 2).sum(axis=1))
        decisions.append(("data", int(np.argmin(distances))))
    return decisions


def _two_segment_matches(seed: int = 13):
    """A recording whose brightness changes midway (the phone moved back).

    Returns ``(train, test)`` ground-truth-aligned data matches: ``train``
    from the close segment, ``test`` from the farther (dimmer) one.  This is
    the scenario behind §6.1's CIELab choice — references learned at one
    brightness must still classify at another.
    """
    device = nexus_5()
    config = SystemConfig(
        csk_order=ORDER, symbol_rate=RATE,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(3 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    segments = []
    for distance in (0.03, 0.045):
        profile = DeviceProfile(
            name=device.name, timing=device.timing, response=device.response,
            noise=device.noise,
            optics=ChannelConditions(distance_m=distance).make_optics(),
        )
        camera = profile.make_camera(simulated_columns=32, seed=seed)
        camera.enable_awb = True
        camera.auto_exposure.lock()  # hold exposure: only radiance changes
        frames = camera.record(waveform, duration=1.2)
        receiver = make_receiver(config, device.timing)
        report = receiver.process_frames(frames)
        matches = align_ground_truth(report.bands, plan.symbols, waveform)
        segments.append([m for m in matches if m.truth.is_data])
    return segments[0], segments[1]


def test_ablation_lab_vs_rgb_matching(recording, benchmark):
    """Learn references at one brightness, classify at another.

    The §6.1 argument for CIELab's ab-plane is robustness: dropping the
    lightness dimension makes references immune to brightness changes
    between calibration time and data time (the phone moving, ambient
    shifting, AE retuning).  The comparison trains both matchers on a
    close-range segment and classifies a dimmer, farther segment — raw RGB
    references go stale with brightness, ab references do not.
    """
    train, test = benchmark.pedantic(
        _two_segment_matches, rounds=1, iterations=1
    )

    from repro.color.cielab import lab_to_xyz
    from repro.color.srgb import xyz_to_srgb

    def featurize(match, space):
        if space == "rgb":
            return xyz_to_srgb(lab_to_xyz(match.band.lab))
        return match.band.chroma  # ab-plane, lightness dropped

    results = {}
    for space in ("rgb", "ab"):
        dims = 3 if space == "rgb" else 2
        sums = np.zeros((ORDER, dims))
        counts = np.zeros(ORDER)
        for match in train:
            sums[match.truth.index] += featurize(match, space)
            counts[match.truth.index] += 1
        refs = sums / np.maximum(counts[:, np.newaxis], 1)
        wrong = sum(
            int(
                np.argmin(
                    np.sqrt(((refs - featurize(m, space)) ** 2).sum(axis=1))
                )
            )
            != m.truth.index
            for m in test
        )
        results[space] = wrong / max(len(test), 1)

    print("\nAblation — demodulation color space (16-CSK @ 2 kHz, Nexus 5)")
    print("  (references from the first fifth, classified on the rest)")
    print(f"  CIELab ab-plane matching SER: {results['ab']:.4f}")
    print(f"  raw RGB matching SER        : {results['rgb']:.4f}")
    assert results["ab"] <= results["rgb"] + 1e-9


def test_ablation_calibration_off(recording, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config, transmitter, plan, waveform, receiver, report = recording

    matches = align_ground_truth(report.bands, plan.symbols, waveform)
    calibrated_ser = data_symbol_error_rate(matches)

    # Calibration-off ablation: match the same band chroma against nominal
    # references (ideal-pipeline constellation colors).
    nominal = nominal_calibration(config.constellation, transmitter.modulator)
    wrong = 0
    total = 0
    for match in matches:
        if not match.truth.is_data:
            continue
        indices, _ = nominal.match(match.band.chroma)
        total += 1
        if int(indices) != match.truth.index:
            wrong += 1
    uncalibrated_ser = wrong / max(total, 1)

    print("\nAblation — transmitter-assisted calibration (16-CSK @ 2 kHz)")
    print(f"  calibrated SER  : {calibrated_ser:.4f}")
    print(f"  uncalibrated SER: {uncalibrated_ser:.4f}")
    # Calibration must help substantially on a device with a skewed
    # color response.
    assert calibrated_ser < uncalibrated_ser
    assert uncalibrated_ser > 0.05
