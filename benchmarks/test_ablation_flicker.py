"""Ablation — the white-symbol ratio trade (§4).

Dedicated illumination symbols buy flicker-free operation but carry no data.
The bench sweeps the white fraction around the flicker model's choice at a
fixed symbol rate and reports both sides of the trade: the worst-case
perceived chromaticity excursion (flicker margin) and the airtime share left
for data.  Shape checks: excursion shrinks as whites grow; the model's own
operating point keeps the excursion near the perception threshold while
preserving most of the airtime.
"""

import numpy as np
import pytest

from repro.csk.constellation import design_constellation
from repro.csk.modulator import CskModulator
from repro.flicker.bloch import worst_case_excursion
from repro.flicker.threshold import FlickerModel, XY_FLICKER_THRESHOLD
from repro.phy.led import typical_tri_led
from repro.phy.symbols import data_symbol, white_symbol
from repro.phy.waveform import EXTEND_CYCLE

RATE = 2000.0
FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)


def measure_excursion(white_fraction, trials=4):
    """Mean worst-case excursion over several random streams.

    A single stream's worst window is a noisy order statistic; averaging a
    few independent realizations gives a stable curve.
    """
    led = typical_tri_led()
    constellation = design_constellation(16, led.gamut)
    modulator = CskModulator(constellation, led, symbol_rate=RATE)
    excursions = []
    for seed in range(trials):
        rng = np.random.default_rng(seed)
        symbols = [
            white_symbol()
            if rng.random() < white_fraction
            else data_symbol(int(rng.integers(0, 16)))
            for _ in range(int(RATE))
        ]
        waveform = modulator.waveform(symbols, extend=EXTEND_CYCLE)
        excursions.append(
            worst_case_excursion(waveform, led.white_point.as_array())
        )
    return float(np.mean(excursions))


def test_ablation_white_ratio(benchmark):
    def run():
        led = typical_tri_led()
        constellation = design_constellation(16, led.gamut)
        model = FlickerModel.for_constellation(constellation)
        curve = {f: measure_excursion(f) for f in FRACTIONS}
        model_fraction = model.required_white_fraction(RATE)
        return curve, model_fraction, measure_excursion(model_fraction)

    curve, model_fraction, model_excursion = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print("\nAblation — white-symbol fraction vs flicker margin (16-CSK @ 2 kHz)")
    print("  white fraction | worst xy excursion | data airtime share")
    for fraction, excursion in curve.items():
        print(f"  {fraction:14.2f} | {excursion:18.4f} | {1 - fraction:14.2f}")
    print(
        f"  model operating point: {model_fraction:.2f} white -> "
        f"excursion {model_excursion:.4f} (threshold {XY_FLICKER_THRESHOLD})"
    )

    values = [curve[f] for f in FRACTIONS]
    # More whites, less excursion (trend over the sweep; individual steps
    # are order statistics and may wobble).
    assert values[-1] < values[0]
    assert all(b <= a * 1.35 for a, b in zip(values, values[1:]))
    # Without whites, random data flickers visibly beyond threshold.
    assert curve[0.0] > XY_FLICKER_THRESHOLD
    # The model's operating point controls flicker without giving up most
    # of the airtime.
    assert model_excursion < 2.5 * XY_FLICKER_THRESHOLD
    assert model_fraction < 0.7
