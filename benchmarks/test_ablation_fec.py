"""Ablation — Reed-Solomon parity sizing around the §5 rule.

The paper dimensions parity as 2t = 2 * eta * C * L_S — twice the bits lost
per inter-frame gap.  This bench sweeps the parity budget around that rule
on a synthetic gap-loss channel (burst erasures at the measured gap length)
and reports decode success and net rate per parity setting: too little
parity cannot absorb the burst; too much wastes airtime.

It also quantifies the value of *erasure* decoding over errors-only
decoding: with known gap positions the code absorbs twice the loss.
"""

import numpy as np
import pytest

from repro.exceptions import UncorrectableBlockError
from repro.fec.reed_solomon import ReedSolomonCodec, rs_params_for_loss

SYMBOL_RATE = 3000.0
FRAME_RATE = 30.0
LOSS_RATIO = 0.2312  # Nexus 5
BITS_PER_SYMBOL = 4  # 16-CSK
ETA = 0.8


def burst_channel_trial(codec, rng, burst_bytes, as_erasures=True):
    """One codeword through a gap-burst channel; returns decode success."""
    data = bytes(rng.integers(0, 256, codec.k, dtype=np.uint8))
    word = bytearray(codec.encode(data))
    start = int(rng.integers(0, codec.n - burst_bytes + 1))
    positions = list(range(start, start + burst_bytes))
    for pos in positions:
        word[pos] = 0
    try:
        decoded = codec.decode(
            bytes(word), erasure_positions=positions if as_erasures else None
        )
    except UncorrectableBlockError:
        return False
    return decoded == data


def test_ablation_parity_sweep(benchmark):
    def run():
        params = rs_params_for_loss(
            SYMBOL_RATE, FRAME_RATE, LOSS_RATIO, BITS_PER_SYMBOL, ETA
        )
        # Bytes erased by one gap: eta * C * l * S / F / 8.
        burst_bytes = int(
            round(ETA * BITS_PER_SYMBOL * LOSS_RATIO * SYMBOL_RATE / FRAME_RATE / 8)
        )
        rng = np.random.default_rng(0)
        outcomes = {}
        for parity_scale in (0.25, 0.5, 1.0, 1.5, 2.0):
            parity = max(2, int(params.parity * parity_scale) & ~1)
            codec = ReedSolomonCodec(params.n, params.n - parity)
            successes = sum(
                burst_channel_trial(codec, rng, burst_bytes) for _ in range(120)
            )
            rate = codec.k / codec.n
            outcomes[parity_scale] = (parity, successes / 120, rate)
        return params, burst_bytes, outcomes

    params, burst_bytes, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — RS parity sizing (16-CSK @ 3 kHz, Nexus 5 loss ratio)")
    print(f"  paper rule: RS({params.n},{params.k}), gap burst = {burst_bytes} bytes")
    print("  parity x rule | parity bytes | decode rate | code rate | net rate")
    for scale, (parity, success, rate) in outcomes.items():
        print(
            f"  {scale:13.2f} | {parity:12d} | {success:11.2f} | {rate:9.2f}"
            f" | {success * rate:8.3f}"
        )

    # The paper's sizing (scale 1.0) decodes everything: its 2x margin
    # covers the gap burst with room for symbol errors.
    assert outcomes[1.0][1] == 1.0
    # A quarter of the rule's parity cannot absorb the burst.
    assert outcomes[0.25][1] < 1.0
    # Extra parity cannot raise the decode rate but always costs code rate.
    assert outcomes[2.0][1] == 1.0
    assert outcomes[2.0][2] < outcomes[1.0][2]
    # Net delivered rate peaks at (or below) the paper's sizing, not above:
    # the rule's doubling is margin for ISI errors, not wasted headroom.
    best = max(outcomes.values(), key=lambda v: v[1] * v[2])
    assert best[0] <= outcomes[1.0][0]


def test_ablation_erasures_vs_errors(benchmark):
    def run():
        params = rs_params_for_loss(
            SYMBOL_RATE, FRAME_RATE, LOSS_RATIO, BITS_PER_SYMBOL, ETA
        )
        codec = ReedSolomonCodec(params.n, params.k)
        rng = np.random.default_rng(1)
        outcomes = {}
        for burst_scale in (0.6, 1.0):
            burst = max(1, int(params.parity * burst_scale))
            with_erasures = sum(
                burst_channel_trial(codec, rng, burst, as_erasures=True)
                for _ in range(60)
            )
            without = sum(
                burst_channel_trial(codec, rng, burst, as_erasures=False)
                for _ in range(60)
            )
            outcomes[burst_scale] = (burst, with_erasures / 60, without / 60)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — erasure decoding vs errors-only decoding")
    print("  burst (bytes) | erasure decode | errors-only decode")
    for scale, (burst, with_e, without_e) in outcomes.items():
        print(f"  {burst:13d} | {with_e:14.2f} | {without_e:18.2f}")

    # Knowing the gap position doubles the correctable loss: a burst equal
    # to the full parity budget decodes with erasures, never without.
    burst, with_e, without_e = outcomes[1.0]
    assert with_e == 1.0
    assert without_e < 0.2
