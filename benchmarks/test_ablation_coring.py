"""Ablation — band-color estimation: plateau mean vs min-variance coring.

The default receiver estimates each band's color as the plain mean of the
band's trimmed pure plateau (a paper-faithful estimator).  The library also
implements an exposure-aware refinement: search the plateau for the
minimum-chroma-dispersion window and take its median, which suppresses
scanline-correlated pipeline noise below the plain-mean floor.

This bench runs the same recording through both estimators at the stressed
corner (32-CSK, 4 kHz, Nexus 5) and reports the SER each achieves, so the
trade is quantified rather than assumed: under weak scanline noise the
dispersion search wins clearly; under the strong row-correlated noise of the
Nexus preset, its small selected windows average less noise away and the
plain plateau mean is competitive.  Deployments should measure on their own
hardware — this bench is the template for that measurement.
"""

import pytest

from repro.camera.devices import DeviceProfile, nexus_5
from repro.core.config import SystemConfig
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.channel import ChannelConditions
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE


def run_with_coring(coring: str, seed: int = 17):
    device = nexus_5()
    config = SystemConfig(
        csk_order=32, symbol_rate=4000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(3 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name, timing=device.timing, response=device.response,
        noise=device.noise, optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    frames = camera.record(waveform, duration=2.0)
    receiver = make_receiver(config, device.timing, coring=coring)
    report = receiver.process_frames(frames)
    matches = align_ground_truth(report.bands, plan.symbols, waveform)
    return {
        "ser": data_symbol_error_rate(matches),
        "decoded": report.packets_decoded,
        "seen": report.packets_seen,
    }


def test_ablation_coring(benchmark):
    def run():
        return {
            "central": run_with_coring("central"),
            "min_variance": run_with_coring("min_variance"),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — band color estimator (32-CSK @ 4 kHz, Nexus 5)")
    print("  estimator     | SER     | packets decoded/seen")
    for name, result in outcomes.items():
        print(
            f"  {name:13s} | {result['ser']:.4f} |"
            f" {result['decoded']}/{result['seen']}"
        )

    central = outcomes["central"]
    refined = outcomes["min_variance"]
    # Both estimators must keep the framing machinery alive: similar packet
    # visibility, sane SER range.
    assert central["seen"] > 10 and refined["seen"] > 10
    assert abs(central["seen"] - refined["seen"]) <= 0.3 * central["seen"]
    for result in outcomes.values():
        assert 0.0 <= result["ser"] <= 0.5
    # At this stressed corner neither estimator may be an order of
    # magnitude apart — the choice is a trade, not a correctness issue.
    low, high = sorted([central["ser"], refined["ser"]])
    assert high <= max(4 * low, 0.05)
