"""Fig 10 — raw throughput vs symbol frequency per CSK order, both devices.

Paper observations (Figs 10a/10b):

* throughput grows with symbol frequency,
* without error correction, higher CSK orders yield higher raw throughput,
* the maxima at 32-CSK / 4 kHz are on the order of 11 Kbps (Nexus 5) and
  9 Kbps (iPhone 5S),
* the iPhone trails the Nexus despite its lower SER because its inter-frame
  loss ratio is much higher (Table 1).
"""

import pytest

from benchmarks.conftest import ORDERS, RATES, format_series_table


@pytest.fixture(scope="module")
def throughput_tables(full_sweep):
    return {
        device: {
            key: result.metrics.throughput_bps / 1000.0
            for key, result in cells.items()
        }
        for device, cells in full_sweep.items()
    }


def test_fig10_throughput(throughput_tables, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    for device, table in throughput_tables.items():
        print(
            "\n"
            + format_series_table(
                f"Fig 10 — raw throughput vs frequency ({device})", table, "kbps"
            )
        )

    for device, table in throughput_tables.items():
        # Throughput rises with frequency for every order that spans rates.
        for order in ORDERS:
            rates_present = [r for r in RATES if (order, r) in table]
            if len(rates_present) >= 2:
                assert table[(order, rates_present[-1])] > table[
                    (order, rates_present[0])
                ]

        # Higher order -> higher raw throughput at the fastest shared rate.
        at_4k = {o: table[(o, 4000.0)] for o in ORDERS if (o, 4000.0) in table}
        if 32 in at_4k and 4 in at_4k:
            assert at_4k[32] > at_4k[16] > at_4k[8] > at_4k[4]

    nexus = throughput_tables["Nexus 5"]
    iphone = throughput_tables["iPhone 5S"]

    # Peak throughput magnitudes: same order as the paper's 11 / 9 Kbps.
    nexus_peak = max(nexus.values())
    iphone_peak = max(iphone.values())
    assert 7.0 < nexus_peak < 16.0, f"Nexus peak {nexus_peak:.1f} kbps"
    assert 5.0 < iphone_peak < 13.0, f"iPhone peak {iphone_peak:.1f} kbps"

    # The loss-ratio asymmetry puts the iPhone below the Nexus.
    assert iphone_peak < nexus_peak
    for key in nexus:
        if key in iphone and key[1] >= 2000:
            assert iphone[key] < nexus[key] * 1.1
