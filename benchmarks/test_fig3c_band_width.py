"""Fig 3(c) — color band width shrinks as the symbol rate rises.

The paper shows frames captured at 1000 and 3000 sym/s: the faster stream
produces proportionally narrower bands, and below ~10 pixels a band can no
longer be demodulated (the §4 feasibility rule).  The bench measures the
detected band widths at both rates on the Nexus 5 geometry and checks the
1/rate scaling plus the 10-row feasibility boundary.
"""

import numpy as np
import pytest

from repro.camera.devices import nexus_5
from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.channel import ChannelConditions
from repro.camera.devices import DeviceProfile
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE


def measure_band_widths(rate: float, seed: int = 0):
    device = nexus_5()
    config = SystemConfig(
        csk_order=8,
        symbol_rate=rate,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(2 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name,
        timing=device.timing,
        response=device.response,
        noise=device.noise,
        optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    frames = camera.record(waveform, duration=0.4)
    # Band width is a geometry measurement: run the segmenter directly
    # (no calibration needed to measure where bands fall).
    from repro.rx.preprocess import frame_to_scanline_lab
    from repro.rx.segmentation import BandSegmenter

    segmenter = BandSegmenter(
        rows_per_symbol=device.timing.rows_per_symbol(rate)
    )
    widths = []
    for frame in frames:
        scanlines = frame_to_scanline_lab(frame)
        smear = frame.exposure.exposure_s / frame.row_period
        for band in segmenter.segment(scanlines, smear_rows=smear):
            widths.append(band.width)
    return np.array(widths), device.timing.rows_per_symbol(rate)


def test_fig3c_band_width(benchmark):
    def run():
        return {rate: measure_band_widths(rate) for rate in (1000.0, 3000.0)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig 3(c) — band width vs symbol rate (Nexus 5 geometry)")
    print("  rate (Hz) | expected rows/symbol | median detected width")
    medians = {}
    for rate, (widths, expected) in results.items():
        median = float(np.median(widths)) if len(widths) else float("nan")
        medians[rate] = median
        print(f"  {rate:9.0f} | {expected:20.1f} | {median:10.1f}")

    widths_1k, expected_1k = results[1000.0]
    widths_3k, expected_3k = results[3000.0]
    assert len(widths_1k) > 20 and len(widths_3k) > 20

    # Bands shrink with rate, tracking the 1/rate geometry.
    assert medians[3000.0] < medians[1000.0]
    assert medians[1000.0] == pytest.approx(expected_1k, rel=0.3)
    assert medians[3000.0] == pytest.approx(expected_3k, rel=0.3)
    assert medians[1000.0] / medians[3000.0] == pytest.approx(3.0, rel=0.35)

    # Feasibility rule: the 10-row minimum bounds the usable symbol rate.
    device = nexus_5()
    limit_rate = 1.0 / (10 * device.timing.row_period)
    assert device.timing.rows_per_symbol(limit_rate) == pytest.approx(10.0)
    assert device.timing.rows_per_symbol(4000.0) > 10.0
