"""Figs 6(b)/6(c) — perceived color varies with exposure time and ISO.

The paper transmits a pure-blue symbol and sweeps the camera's exposure time
and ISO manually: the received chroma moves substantially in both sweeps —
the "same camera, different symbols" half of the receiver-diversity problem
that periodic recalibration compensates (§6.2).

The bench captures a constant pure-blue waveform on the Nexus 5 geometry at
manual settings and reports the mean received (a, b) per setting; shape
checks: the chroma trajectory spans well beyond a JND in each sweep, and
longer exposures desaturate toward white (channel saturation).
"""

import numpy as np
import pytest

from repro.camera.auto_exposure import ExposureSettings
from repro.camera.devices import DeviceProfile, nexus_5
from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter
from repro.link.channel import ChannelConditions
from repro.phy.symbols import data_symbol
from repro.phy.waveform import EXTEND_CYCLE
from repro.rx.preprocess import frame_to_scanline_lab


def capture_mean_chroma(settings: ExposureSettings, seed=0):
    device = nexus_5()
    config = SystemConfig(
        csk_order=4, symbol_rate=1000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    # Constant pure-blue-ish stream: the constellation point nearest blue.
    blue_index = int(
        np.argmin(
            [
                p.distance_to(transmitter.config.emitter.blue.chromaticity)
                for p in transmitter.config.constellation.points
            ]
        )
    )
    waveform = transmitter.modulator.waveform(
        [data_symbol(blue_index)] * 200, extend=EXTEND_CYCLE
    )
    profile = DeviceProfile(
        name=device.name,
        timing=device.timing,
        response=device.response,
        noise=device.noise,
        optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    camera.enable_awb = False  # manual sweep: hold the ISP still
    frame = camera.capture_frame(waveform, 0.0, settings=settings)
    lab = frame_to_scanline_lab(frame)
    lit = lab[lab[:, 0] > 12]
    return lit[:, 1:].mean(axis=0)


EXPOSURES = (1 / 8000, 1 / 4000, 1 / 2000, 1 / 1000, 1 / 500)
ISOS = (100, 200, 400, 800, 1600)


def test_fig6b_exposure_sweep(benchmark):
    chromas = benchmark.pedantic(
        lambda: {
            e: capture_mean_chroma(ExposureSettings(e, 100)) for e in EXPOSURES
        },
        rounds=1,
        iterations=1,
    )
    print("\nFig 6(b) — received chroma of a blue symbol vs exposure time")
    print("  exposure (s) |    a    |    b")
    for exposure, ab in chromas.items():
        print(f"  {exposure:12.6f} | {ab[0]:7.1f} | {ab[1]:7.1f}")

    points = np.array(list(chromas.values()))
    travel = np.sqrt(((points - points[0]) ** 2).sum(axis=1)).max()
    print(f"  chroma travel across sweep: {travel:.1f} dE")
    assert travel > 2.3  # beyond a JND: exposure changes the received color

    # Longer exposures saturate channels and desaturate toward white.
    chroma_magnitude = np.sqrt((points**2).sum(axis=1))
    assert chroma_magnitude[-1] < chroma_magnitude[0]


def test_fig6c_iso_sweep(benchmark):
    chromas = benchmark.pedantic(
        lambda: {
            iso: capture_mean_chroma(ExposureSettings(1 / 4000, iso))
            for iso in ISOS
        },
        rounds=1,
        iterations=1,
    )
    print("\nFig 6(c) — received chroma of a blue symbol vs ISO")
    print("  ISO  |    a    |    b")
    for iso, ab in chromas.items():
        print(f"  {iso:>4} | {ab[0]:7.1f} | {ab[1]:7.1f}")

    points = np.array(list(chromas.values()))
    travel = np.sqrt(((points - points[0]) ** 2).sum(axis=1)).max()
    print(f"  chroma travel across sweep: {travel:.1f} dE")
    assert travel > 2.3
