"""Fig 11 — goodput vs symbol frequency per CSK order, both devices.

Paper observations (Figs 11a/11b):

* goodput (payload delivered after packet reassembly + RS decoding) grows
  with symbol frequency,
* unlike raw throughput, the highest order does not always win: 32-CSK's
  SER erodes its goodput, and the maxima occur at 16-CSK / 4 kHz —
  about 5.2 Kbps (Nexus 5) and 2.5 Kbps (iPhone 5S),
* the iPhone's goodput is bounded by its higher loss ratio (more parity
  overhead provisioned, more packets cut).
"""

import pytest

from benchmarks.conftest import ORDERS, RATES, format_series_table


@pytest.fixture(scope="module")
def goodput_tables(full_sweep):
    return {
        device: {
            key: result.metrics.goodput_bps / 1000.0
            for key, result in cells.items()
        }
        for device, cells in full_sweep.items()
    }


def test_fig11_goodput(goodput_tables, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    for device, table in goodput_tables.items():
        print(
            "\n"
            + format_series_table(
                f"Fig 11 — goodput vs frequency ({device})", table, "kbps"
            )
        )

    nexus = goodput_tables["Nexus 5"]
    iphone = goodput_tables["iPhone 5S"]

    # Goodput rises with rate for the mid orders on the Nexus.
    for order in (8, 16):
        rates_present = [r for r in RATES if (order, r) in nexus]
        if len(rates_present) >= 2:
            assert nexus[(order, rates_present[-1])] > nexus[
                (order, rates_present[0])
            ]

    # The peak sits at a mid/high order, not necessarily 32-CSK: 16-CSK at
    # the fast end must be competitive with (or beat) 32-CSK.
    if (16, 4000.0) in nexus and (32, 4000.0) in nexus:
        assert nexus[(16, 4000.0)] >= 0.5 * nexus[(32, 4000.0)]

    # Peak magnitudes: same scale as the paper's 5.2 / 2.5 Kbps, and the
    # Nexus outperforms the iPhone.
    nexus_peak = max(nexus.values())
    iphone_peak = max(iphone.values())
    assert 1.5 < nexus_peak < 9.0, f"Nexus goodput peak {nexus_peak:.2f} kbps"
    assert 0.4 < iphone_peak < 6.0, f"iPhone goodput peak {iphone_peak:.2f} kbps"
    assert iphone_peak < nexus_peak

    # Goodput never exceeds raw throughput anywhere.
    # (cross-check against the stored results)
