"""Fig 6(a) — the same color symbols are perceived differently per camera.

The paper transmits the 8-CSK constellation and plots where each symbol
lands in the ab-plane for the Nexus 5 and iPhone 5S: the clusters differ
noticeably between the devices (different color filters, ISPs).  The bench
captures calibration packets with both simulated devices and reports the
per-symbol received chroma; shape checks: (i) within a device, the eight
symbols are well separated; (ii) across devices, the same symbol lands at a
noticeably different chroma (the motivation for §6 calibration).
"""

import numpy as np
import pytest

from repro.camera.devices import DeviceProfile, iphone_5s, nexus_5
from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.channel import ChannelConditions
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE


def received_references(device, seed=0):
    config = SystemConfig(
        csk_order=8,
        symbol_rate=2000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name,
        timing=device.timing,
        response=device.response,
        noise=device.noise,
        optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    frames = camera.record(waveform, duration=1.5)
    receiver = make_receiver(config, device.timing)
    receiver.process_frames(frames)
    assert receiver.calibration.is_calibrated
    return receiver.calibration.references


def test_fig6a_receiver_diversity(benchmark):
    def run():
        return {
            "Nexus 5": received_references(nexus_5()),
            "iPhone 5S": received_references(iphone_5s()),
        }

    refs = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig 6(a) — received chroma of the 8-CSK symbols per device")
    print("  symbol |    Nexus 5 (a, b)   |   iPhone 5S (a, b)")
    for index in range(8):
        n = refs["Nexus 5"][index]
        i = refs["iPhone 5S"][index]
        print(
            f"  {index:>6} | ({n[0]:7.1f}, {n[1]:7.1f}) | ({i[0]:7.1f}, {i[1]:7.1f})"
        )

    for device, table in refs.items():
        # Within a device, symbols stay separable (else CSK cannot work).
        deltas = table[:, np.newaxis, :] - table[np.newaxis, :, :]
        distances = np.sqrt((deltas**2).sum(axis=-1))
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 4.0, f"{device} symbols collapse"

    # Across devices, the same symbol lands in a noticeably different spot
    # for most of the constellation — the §6 calibration motivation.
    displacement = np.sqrt(
        ((refs["Nexus 5"] - refs["iPhone 5S"]) ** 2).sum(axis=-1)
    )
    print(f"  mean cross-device displacement: {displacement.mean():.1f} dE")
    assert displacement.mean() > 5.0
    assert (displacement > 2.3).sum() >= 5  # beyond a JND for most symbols
