"""Resilience matrix — fault intensity x injector, goodput degradation.

Sweeps every registered fault injector over a shared intensity grid on the
Nexus 5 preset at 4-CSK (the configuration whose fault-free baseline decodes
every packet) and checks the graceful-degradation contract:

* **no crash** at any grid point — containment means a faulted session
  always returns a report;
* **zero is a no-op** — the 0.0 column of every injector matches the
  no-fault baseline byte for byte;
* **monotone degradation** — goodput is non-increasing in intensity.  This
  is structural, not statistical: injectors draw a fixed per-frame random
  budget and scale the damage, so a harder sweep cell damages a superset of
  what a milder one damaged (see repro/faults/base.py);
* **no cliffs** — goodput stays positive up to each injector's documented
  threshold (the "Fault model & degradation contract" section of DESIGN.md).

The documented thresholds deliberately sit one grid step inside the
measured cliff, so the bench fails if a receiver change makes degradation
meaningfully sharper.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.camera.devices import nexus_5
from repro.core.config import SystemConfig
from repro.faults import FAULT_REGISTRY, make_injector
from repro.link.simulator import LinkResult, RunSpec
from repro.perf.runtime import run_specs_resilient

INTENSITIES = (0.0, 0.1, 0.2, 0.35, 0.5)
SEED = 1
DURATION_S = 2.0

#: Goodput must remain positive at every intensity <= this, per injector
#: (the degradation contract DESIGN.md documents).  Injectors whose cliff
#: lies beyond the grid use the grid maximum.
CLIFF_THRESHOLDS = {
    "frame-drop": 0.5,
    "occlusion": 0.2,
    "saturation": 0.5,
    "scanline-corruption": 0.35,
    "timing-jitter": 0.5,
}


def _spec(faults) -> RunSpec:
    device = nexus_5()
    config = SystemConfig(
        csk_order=4,
        symbol_rate=1000,
        design_loss_ratio=device.timing.gap_fraction,
        frame_rate=device.timing.frame_rate,
    )
    return RunSpec(
        config=config,
        device=device,
        simulated_columns=32,
        seed=SEED,
        faults=tuple(faults),
        duration_s=DURATION_S,
    )


MatrixResults = Dict[Tuple[str, float], LinkResult]


@pytest.fixture(scope="module")
def matrix() -> Tuple[LinkResult, MatrixResults]:
    # The whole fault x intensity grid (plus the no-fault baseline) runs
    # through the perf executor; COLORBARS_WORKERS parallelizes it and the
    # shared plan cache builds the identical broadcast exactly once.
    keys = [
        (name, intensity)
        for name in sorted(FAULT_REGISTRY)
        for intensity in INTENSITIES
    ]
    specs = [_spec([])] + [
        _spec([make_injector(name, intensity)]) for name, intensity in keys
    ]
    outcome = run_specs_resilient(specs)
    # The resilient runtime contains cell failures instead of raising, so
    # containment is now an explicit matrix assertion: no cell may fail.
    assert not outcome.degraded, outcome.failure_summary()
    baseline = outcome.results[0]
    cells: MatrixResults = dict(zip(keys, outcome.results[1:]))
    return baseline, cells


def test_resilience_matrix(matrix, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline, cells = matrix

    print("\nResilience matrix — goodput (bps) by injector x intensity")
    header = "  injector             | " + " | ".join(
        f"{x:>5.2f}" for x in INTENSITIES
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name in sorted(FAULT_REGISTRY):
        row = " | ".join(
            f"{cells[(name, x)].metrics.goodput_bps:5.0f}" for x in INTENSITIES
        )
        print(f"  {name:<20} | {row}")

    assert baseline.metrics.goodput_bps > 0

    for name in sorted(FAULT_REGISTRY):
        series = [cells[(name, x)] for x in INTENSITIES]

        # Zero intensity is byte-identical to the no-fault baseline.
        zero = cells[(name, 0.0)]
        assert zero.metrics == baseline.metrics
        assert zero.report.payloads == baseline.report.payloads
        assert len(zero.fault_schedule) == 0

        # Containment: every grid point completed and produced a report.
        for result in series:
            assert result.report.packets_failed_fec == len(
                result.report.fec_failures
            )

        # Monotone, graceful degradation.
        goodputs = [r.metrics.goodput_bps for r in series]
        for lower, higher in zip(goodputs, goodputs[1:]):
            assert higher <= lower, (
                f"{name}: goodput rose with intensity ({goodputs})"
            )

        # No cliff to zero below the documented threshold.
        threshold = CLIFF_THRESHOLDS[name]
        for intensity, result in zip(INTENSITIES, series):
            if intensity <= threshold:
                assert result.metrics.goodput_bps > 0, (
                    f"{name}@{intensity}: goodput hit zero below the "
                    f"documented threshold {threshold}"
                )
