"""Shared benchmark infrastructure.

The Figs 9/10/11 benches and Table 1 all consume the same CSK-order x
symbol-rate x device sweep; it is expensive (dozens of simulated video
recordings), so it is computed once per session and cached here.  The grid
runs through the :mod:`repro.perf` executor — set ``COLORBARS_WORKERS=4``
to fan the cells out over a process pool (bit-identical to serial).

Every bench prints the same rows/series the paper reports; assertions check
the qualitative *shape* (who wins, what rises with what), not the paper's
absolute testbed numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.camera.devices import DeviceProfile, iphone_5s, nexus_5
from repro.core.config import SystemConfig
from repro.link.simulator import LinkResult, RunSpec
from repro.perf.executor import run_specs

ORDERS = (4, 8, 16, 32)
RATES = (1000.0, 2000.0, 3000.0, 4000.0)

#: Recording length per sweep cell.  Low symbol rates need longer recordings
#: for the calibration EWMA to converge (the paper's measurements run for
#: minutes; these durations are the time-budget compromise).
def _duration_for(rate: float) -> float:
    return 3.5 if rate <= 2000 else 2.5


def cell_spec(
    device: DeviceProfile, order: int, rate: float, seed: int = 11
) -> RunSpec:
    """One sweep cell: a full TX -> camera -> RX run with shared settings."""
    config = SystemConfig(
        csk_order=order,
        symbol_rate=rate,
        design_loss_ratio=device.timing.gap_fraction,
        frame_rate=device.timing.frame_rate,
    )
    return RunSpec(
        config=config,
        device=device,
        simulated_columns=32,
        seed=seed,
        duration_s=_duration_for(rate),
    )


def run_cell(
    device: DeviceProfile, order: int, rate: float, seed: int = 11
) -> LinkResult:
    """Execute one cell (serial helper for one-off bench runs)."""
    return cell_spec(device, order, rate, seed=seed).execute()


SweepResults = Dict[str, Dict[Tuple[int, float], LinkResult]]


@pytest.fixture(scope="session")
def full_sweep() -> SweepResults:
    """The paper's full evaluation grid, computed once per bench session.

    All devices' feasible cells are flattened into one spec list and run
    through the perf executor, honoring ``COLORBARS_WORKERS``.
    """
    keys: list = []
    specs: list = []
    for device in (nexus_5(), iphone_5s()):
        for order in ORDERS:
            for rate in RATES:
                if device.timing.rows_per_symbol(rate) < 10:
                    continue
                keys.append((device.name, (order, rate)))
                specs.append(cell_spec(device, order, rate))
    cells = run_specs(specs)
    results: SweepResults = {}
    for (device_name, cell_key), result in zip(keys, cells):
        results.setdefault(device_name, {})[cell_key] = result
    return results


def format_series_table(
    title: str,
    cells: Dict[Tuple[int, float], float],
    unit: str = "",
) -> str:
    """Render an {(order, rate): value} dict as the paper's figure series."""
    lines = [title]
    header = "  CSK order | " + " | ".join(f"{int(rate)} Hz" for rate in RATES)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for order in ORDERS:
        row = [f"  {order:>9} |"]
        for rate in RATES:
            value = cells.get((order, rate))
            row.append(f" {value:8.4f} |" if value is not None else "      -- |")
        lines.append("".join(row))
    if unit:
        lines.append(f"  (values in {unit})")
    return "\n".join(lines)
