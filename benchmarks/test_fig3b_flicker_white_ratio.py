"""Fig 3(b) — minimum white-light percentage vs symbol frequency.

The paper measured this curve with 10 volunteers watching the LED at symbol
frequencies from 500 to 5000 Hz; the required white share falls as frequency
rises (more symbols average inside each critical duration).  Our substitute
is the Bloch's-law perceptual model; the bench regenerates the curve and
checks the monotone-decreasing shape and the paper's operating points
(high white share near 500 Hz, ~20-30% near 4 kHz).

A second series validates the model against direct waveform simulation:
random symbol streams with the model's white fraction must keep the
perceived chromaticity excursion below the flicker threshold.
"""

import numpy as np
import pytest

from repro.csk.constellation import design_constellation
from repro.csk.modulator import CskModulator
from repro.flicker.bloch import worst_case_excursion
from repro.flicker.threshold import FlickerModel, XY_FLICKER_THRESHOLD
from repro.phy.led import typical_tri_led
from repro.phy.symbols import data_symbol, white_symbol
from repro.phy.waveform import EXTEND_CYCLE

FREQUENCIES = (500, 1000, 2000, 3000, 4000, 5000)


@pytest.fixture(scope="module")
def white_curve():
    led = typical_tri_led()
    constellation = design_constellation(16, led.gamut)
    model = FlickerModel.for_constellation(constellation)
    return {f: model.required_white_fraction(f) for f in FREQUENCIES}


def test_fig3b_white_fraction_curve(white_curve, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nFig 3(b) — minimum white-light fraction vs symbol frequency")
    print("  freq (Hz) | white fraction")
    for freq, fraction in white_curve.items():
        print(f"  {freq:>9} | {fraction:.3f}")

    values = [white_curve[f] for f in FREQUENCIES]
    # Monotone decreasing, as in the paper's curve.
    assert values == sorted(values, reverse=True)
    # Operating points: lots of white needed at 500 Hz, modest at 4 kHz.
    assert white_curve[500] > 0.6
    assert 0.1 <= white_curve[4000] <= 0.45
    assert white_curve[5000] < white_curve[1000]


def test_fig3b_model_validates_against_waveform(benchmark):
    """Streams mixed at the model's white fraction stay flicker-free."""

    def run():
        led = typical_tri_led()
        constellation = design_constellation(16, led.gamut)
        model = FlickerModel.for_constellation(constellation)
        rng = np.random.default_rng(0)
        outcomes = {}
        for freq in (1000, 3000):
            fraction = model.required_white_fraction(freq)
            modulator = CskModulator(constellation, led, symbol_rate=freq)
            symbols = [
                white_symbol()
                if rng.random() < fraction
                else data_symbol(int(rng.integers(0, 16)))
                for _ in range(int(freq * 0.8))
            ]
            waveform = modulator.waveform(symbols, extend=EXTEND_CYCLE)
            excursion = worst_case_excursion(
                waveform, led.white_point.as_array()
            )
            outcomes[freq] = excursion
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  worst-case perceived xy excursion with model's white fraction:")
    for freq, excursion in outcomes.items():
        print(f"  {freq:>5} Hz: {excursion:.4f} (threshold {XY_FLICKER_THRESHOLD})")
    for freq, excursion in outcomes.items():
        # The threshold is a statistical criterion (high quantile); allow
        # a modest margin over it for the worst single window.
        assert excursion < 2.5 * XY_FLICKER_THRESHOLD
