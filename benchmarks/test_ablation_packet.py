"""Ablation — packet size around the paper's natural choice (§5).

The paper sets the packet to span one frame period plus one gap: small
packets can vanish entirely inside the gap; large packets amplify the cost
of a lost header.  The bench sweeps the payload (hence packet) size on a
frame/gap loss model and reports delivery efficiency per size; shape check:
the frame-period-scale packet is at or near the optimum.

The model is analytic over the symbol-timeline: packets are laid end to end
over repeating readout/gap windows, a packet survives if its preamble+header
fall inside a readout span and its body loses no more than the parity
budget.  This isolates the packetization geometry from camera noise.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.packet.framing import PacketKind, preamble_symbols

RATE = 3000.0
FRAME_RATE = 30.0
LOSS = 0.2312
ETA = 0.8


def delivery_efficiency(packet_symbols, header_symbols, parity_symbol_budget):
    """Fraction of payload delivered for a given packet length (symbols).

    Packets are placed back to back over the frame/gap timeline; a packet
    delivers its payload iff (a) its first `header_symbols` symbols avoid
    the gap entirely and (b) at most `parity_symbol_budget` of its body
    symbols fall into gaps.
    """
    symbols_per_period = RATE / FRAME_RATE
    gap_len = LOSS * symbols_per_period
    period = symbols_per_period

    delivered = 0
    total = 0
    position = 0.0
    # Simulate enough packets for the phase to precess through the period.
    for _ in range(400):
        start = position
        header_end = start + header_symbols
        body_end = start + packet_symbols
        position = body_end

        def lost_between(a, b):
            lost = 0.0
            # Gaps occupy [k*period + (period - gap), (k+1)*period).
            k = int(a // period)
            while k * period < b:
                gap_start = k * period + (period - gap_len)
                gap_stop = (k + 1) * period
                lost += max(0.0, min(b, gap_stop) - max(a, gap_start))
                k += 1
            return lost

        total += 1
        if lost_between(start, header_end) > 0:
            continue  # preamble or header clipped: packet dropped
        if lost_between(header_end, body_end) > parity_symbol_budget:
            continue  # more body loss than the code can absorb
        delivered += 1
    return delivered / total


def test_ablation_packet_size(benchmark):
    def run():
        config = SystemConfig(
            csk_order=16, symbol_rate=RATE, design_loss_ratio=LOSS,
            illumination_ratio=ETA,
        )
        packetizer = config.make_packetizer()
        params = config.rs_params()
        header = len(preamble_symbols(PacketKind.DATA)) + 3

        natural = packetizer.packet_length(params.n)
        # The paper sizes parity for exactly one gap per packet
        # (2t = 2*eta*C*L_S); that budget is FIXED, whatever the packet size.
        parity_bytes = params.parity
        parity_symbols = parity_bytes * 8 / config.bits_per_symbol / ETA

        outcomes = {}
        for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
            n_bytes = max(parity_bytes + 2, int(params.n * scale))
            packet_symbols = packetizer.packet_length(n_bytes)
            efficiency = delivery_efficiency(
                packet_symbols, header, parity_symbols
            )
            payload_share = (n_bytes - parity_bytes) / max(n_bytes, 1)
            # Net: delivered packets x payload share x airtime efficiency.
            airtime_share = (
                n_bytes * 8 / config.bits_per_symbol / ETA / packet_symbols
            )
            outcomes[scale] = (
                packet_symbols,
                efficiency,
                efficiency * payload_share * airtime_share,
            )
        return natural, outcomes

    natural, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    symbols_per_period = RATE / FRAME_RATE
    print("\nAblation — packet size (16-CSK @ 3 kHz, Nexus 5 loss geometry)")
    print(f"  natural packet = {natural} symbols "
          f"(frame+gap period = {symbols_per_period:.0f} symbols)")
    print("  size x natural | symbols | delivery rate | net efficiency")
    for scale, (symbols, efficiency, net) in outcomes.items():
        print(
            f"  {scale:14.2f} | {symbols:7d} | {efficiency:13.2f} | {net:8.3f}"
        )

    # The paper-scale packet delivers a solid majority of packets.
    assert outcomes[1.0][1] > 0.5
    # Far larger packets collapse: they span several gaps but carry parity
    # for only one (the §5 "resultant data loss can be much larger" case).
    assert outcomes[4.0][1] < 0.5 * outcomes[1.0][1]
    # Far smaller packets waste airtime on headers and parity: their net
    # efficiency falls well below the natural size's.
    assert outcomes[0.25][2] < 0.5 * outcomes[1.0][2]
    # Note: 2x the natural size can look slightly better in this *noise-free*
    # geometry model because the parity rule's 2x margin covers a second gap;
    # in the real channel that margin is consumed by symbol errors (see
    # test_ablation_fec), which is why the paper sizes to one frame+gap.
    assert outcomes[2.0][1] <= outcomes[1.0][1] + 0.1
