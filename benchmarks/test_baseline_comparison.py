"""The headline comparison — ColorBars vs the OOK and FSK prior art.

Paper §1/§9: prior FSK-based LED-to-camera systems reached 11.32 B/s
(RollingLight) and 1.25 B/s (Visual Light Landmarks); ColorBars reaches
kilobits per second.  The bench runs all three modems through the *same*
camera simulator and compares delivered rates; shape checks: FSK lands at
the bytes-per-second scale and ColorBars beats it by well over an order of
magnitude.
"""

import pytest

from repro.baselines.fsk import FskModem
from repro.baselines.ook import OokModem
from repro.camera.devices import nexus_5
from repro.core.config import SystemConfig
from repro.link.simulator import LinkSimulator
from repro.phy.led import typical_tri_led
from repro.phy.waveform import EXTEND_CYCLE


def run_colorbars():
    device = nexus_5()
    config = SystemConfig(
        csk_order=16, symbol_rate=4000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    result = LinkSimulator(config, device, simulated_columns=32, seed=2).run(
        duration_s=2.5
    )
    return result.metrics.throughput_bps, result.metrics.goodput_bps


def run_ook():
    led = typical_tri_led()
    device = nexus_5()
    modem = OokModem(led, symbol_rate=2000)
    waveform = modem.modulate(b"baseline comparison payload", extend=EXTEND_CYCLE)
    camera = device.make_camera(simulated_columns=32, seed=2)
    frames = camera.record(waveform, duration=2.0)
    result = modem.demodulate_frames(
        frames, device.timing.rows_per_symbol(2000), 2.0
    )
    return result.throughput_bps


def run_fsk():
    led = typical_tri_led()
    device = nexus_5()
    modem = FskModem(led)
    waveform = modem.modulate(b"baseline comparison payload", extend=EXTEND_CYCLE)
    camera = device.make_camera(simulated_columns=32, seed=2)
    frames = camera.record(waveform, duration=2.0)
    result = modem.demodulate_frames(frames, 2.0)
    return result.throughput_bps


def test_baseline_comparison(benchmark):
    def run():
        colorbars_tput, colorbars_goodput = run_colorbars()
        return {
            "colorbars_throughput": colorbars_tput,
            "colorbars_goodput": colorbars_goodput,
            "ook": run_ook(),
            "fsk": run_fsk(),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nBaseline comparison (same camera substrate, Nexus 5)")
    print(f"  ColorBars 16-CSK@4kHz throughput: {rates['colorbars_throughput']:8.0f} bps")
    print(f"  ColorBars 16-CSK@4kHz goodput   : {rates['colorbars_goodput']:8.0f} bps")
    print(f"  OOK (Manchester, raw)           : {rates['ook']:8.0f} bps")
    print(f"  FSK (RollingLight-style)        : {rates['fsk']:8.0f} bps"
          f" = {rates['fsk'] / 8:.1f} B/s (paper comparators: 11.32, 1.25 B/s)")

    # FSK sits at the bytes-per-second scale the paper quotes for prior work.
    assert 2 <= rates["fsk"] / 8 <= 60

    # ColorBars' raw throughput beats FSK by far more than an order of
    # magnitude, and beats raw OOK as well.
    assert rates["colorbars_throughput"] > 20 * rates["fsk"]
    assert rates["colorbars_throughput"] > rates["ook"]

    # Even after FEC overhead, goodput alone clears the FSK baseline.
    assert rates["colorbars_goodput"] > 5 * rates["fsk"]
