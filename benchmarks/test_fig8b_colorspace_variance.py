"""Fig 8(b) — per-pixel color variance within a band: RGB vs CIELab.

Brightness in a received frame is not uniform (Fig 8a: the center is
brighter than the periphery), so the same symbol's pixels scatter widely in
RGB but tightly in CIELab's ab-plane once the lightness channel is dropped.
The bench reproduces the measurement procedure of §8 "Color Space
Conversion": take a color band in a captured frame, compute each pixel's
distance to the band's mean color in both spaces, and compare the variances.
"""

import numpy as np
import pytest

from repro.camera.devices import DeviceProfile, nexus_5
from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter
from repro.link.channel import ChannelConditions
from repro.phy.symbols import data_symbol
from repro.phy.waveform import EXTEND_CYCLE
from repro.rx.preprocess import column_color_variance


def capture_band_frame(seed=0):
    device = nexus_5()
    config = SystemConfig(
        csk_order=8, symbol_rate=1000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    waveform = transmitter.modulator.waveform(
        [data_symbol(4)] * 100, extend=EXTEND_CYCLE
    )
    # The figure isolates the *brightness non-uniformity* effect, so the
    # capture keeps pipeline (scanline) noise modest — that noise hits both
    # color spaces equally and would only dilute the contrast under study.
    from repro.camera.noise import SensorNoise

    quiet_noise = SensorNoise(
        full_well_electrons=device.noise.full_well_electrons,
        read_noise_electrons=device.noise.read_noise_electrons,
        prnu=device.noise.prnu,
        row_noise=0.02,
    )
    profile = DeviceProfile(
        name=device.name,
        timing=device.timing,
        response=device.response,
        noise=quiet_noise,
        # Strong vignetting: the Fig 8(a) brightness non-uniformity.
        optics=ChannelConditions(vignetting_strength=0.95).make_optics(),
    )
    # Full sensor width: the brightness falloff lives toward the frame
    # periphery, which a narrow centered strip would miss.
    camera = profile.make_camera(
        simulated_columns=profile.timing.cols, seed=seed
    )
    return camera.capture_frame(waveform, 0.0)


def test_fig8b_colorspace_variance(benchmark):
    def run():
        frame = capture_band_frame()
        # A wide row range spanning the vignetting gradient.
        band = slice(frame.rows // 4, 3 * frame.rows // 4)
        return {
            "rgb": column_color_variance(frame.pixels, band, space="rgb"),
            "lab": column_color_variance(frame.pixels, band, space="lab"),
        }

    variances = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig 8(b) — variance of pixel distance from the band mean color")
    print(f"  RGB color space    : {variances['rgb']:10.2f}")
    print(f"  CIELab (a, b) plane: {variances['lab']:10.2f}")
    print(
        f"  ratio RGB / Lab    : {variances['rgb'] / max(variances['lab'], 1e-9):10.1f}x"
    )

    # The paper's qualitative result: CIELab absorbs the brightness
    # non-uniformity, leaving much smaller variance than RGB.
    assert variances["lab"] < variances["rgb"] / 3
