"""Fig 9 — SER vs symbol frequency per CSK order, both devices.

Paper observations (Figs 9a/9b):

* 4- and 8-CSK achieve SER near zero (< 1e-3 .. 1e-2) at every rate,
* 16- and 32-CSK SER grows with symbol frequency (narrower bands mean
  fewer clean scanlines per symbol),
* the iPhone 5S achieves lower SER than the Nexus 5 at the high-rate,
  high-order corner ("better captures the true color").

The bench regenerates both panels and asserts those three shapes.
"""

import pytest

from benchmarks.conftest import ORDERS, RATES, format_series_table


@pytest.fixture(scope="module")
def ser_tables(full_sweep):
    return {
        device: {
            key: result.metrics.data_symbol_error_rate
            for key, result in cells.items()
        }
        for device, cells in full_sweep.items()
    }


def test_fig9_ser(ser_tables, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    for device, table in ser_tables.items():
        print("\n" + format_series_table(f"Fig 9 — SER vs frequency ({device})", table))

    for device, table in ser_tables.items():
        # Low orders are near error-free everywhere they ran.
        for order in (4, 8):
            for rate in RATES:
                if (order, rate) in table:
                    assert table[(order, rate)] < 0.02, (
                        f"{device} {order}-CSK @ {rate}: SER {table[(order, rate)]}"
                    )

        # 32-CSK is the most error-prone order at 4 kHz.
        at_4k = {o: table[(o, 4000.0)] for o in ORDERS if (o, 4000.0) in table}
        if 32 in at_4k and 8 in at_4k:
            assert at_4k[32] >= at_4k[8]

    # High orders degrade toward the fast end.  This is asserted on the
    # Nexus panel; on the iPhone the low-rate cells are *calibration
    # starved* in these short recordings (at 1 kHz its frames hold ~21
    # symbols, so 16/32-symbol calibration packets are always cut by the
    # gap and the references converge slowly), which inflates low-rate SER
    # — an artifact of recording length, not of the modulation, and
    # documented in EXPERIMENTS.md.
    nexus_table = ser_tables["Nexus 5"]
    for order in (16, 32):
        rates_present = sorted(
            rate for rate in RATES if (order, rate) in nexus_table
        )
        if len(rates_present) >= 2:
            fast = nexus_table[(order, rates_present[-1])]
            slow = nexus_table[(order, rates_present[0])]
            assert fast >= slow, (
                f"Nexus {order}-CSK SER must grow with rate: "
                f"{slow:.4f} -> {fast:.4f}"
            )

    # Receiver ordering at the stressed corner: iPhone below Nexus.
    nexus = ser_tables["Nexus 5"]
    iphone = ser_tables["iPhone 5S"]
    if (32, 4000.0) in nexus and (32, 4000.0) in iphone:
        assert iphone[(32, 4000.0)] <= nexus[(32, 4000.0)] + 0.02
