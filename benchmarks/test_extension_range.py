"""Extension — communication range (the paper's §10 future work).

The paper's prototype needed the phone within ~3 cm of its low-lumen LED
and names longer range as future work.  The simulator makes the range axis
explorable: irradiance falls with the inverse square of distance while
ambient light stays constant, so the auto-exposure raises gain (noise up)
and the signal-to-ambient contrast falls until the link degrades.

The bench sweeps distance at a fixed mid configuration and reports
SER/goodput per range; shape checks: the paper's 3 cm operating point is
healthy, degradation is monotone-ish with distance, and the link eventually
collapses — the quantitative version of "low lumens requires close
proximity".
"""

import pytest

from repro.camera.devices import nexus_5
from repro.core.config import SystemConfig
from repro.link.channel import ChannelConditions
from repro.link.simulator import LinkSimulator

DISTANCES_M = (0.03, 0.06, 0.12, 0.24)


def run_at_distance(distance_m: float, seed: int = 19):
    device = nexus_5()
    config = SystemConfig(
        csk_order=8, symbol_rate=2000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    channel = ChannelConditions(distance_m=distance_m, ambient_luminance=0.8)
    simulator = LinkSimulator(
        config, device, channel=channel, simulated_columns=32, seed=seed
    )
    result = simulator.run(duration_s=2.0)
    return result.metrics


def test_extension_range_sweep(benchmark):
    metrics = benchmark.pedantic(
        lambda: {d: run_at_distance(d) for d in DISTANCES_M},
        rounds=1,
        iterations=1,
    )

    print("\nExtension — range sweep (8-CSK @ 2 kHz, Nexus 5, ambient on)")
    print("  distance (cm) | SER     | goodput (bps) | packets")
    for distance, m in metrics.items():
        print(
            f"  {distance * 100:13.0f} | {m.data_symbol_error_rate:.4f} |"
            f" {m.goodput_bps:13.0f} | {m.packets_decoded}/{m.packets_seen}"
        )

    near = metrics[0.03]
    far = metrics[DISTANCES_M[-1]]
    # The paper's operating point is healthy.
    assert near.data_symbol_error_rate < 0.02
    assert near.goodput_bps > 100
    # Range costs performance; the farthest point is clearly degraded.
    assert (
        far.goodput_bps < 0.7 * near.goodput_bps
        or far.data_symbol_error_rate > near.data_symbol_error_rate + 0.02
    )
