"""Baseline LED-to-camera modems: OOK and FSK.

The paper's headline comparison (§1, §9) is against rolling-shutter
on-off-keying and the FSK schemes of RollingLight [1] (~11.32 B/s) and
Visual Light Landmarks [2] (~1.25 B/s).  These modems run through the same
tri-LED waveform / camera-simulator / scanline pipeline as ColorBars, so the
throughput gap measured by ``benchmarks/test_baseline_comparison.py`` comes
from modulation alone, not a different substrate.
"""

from repro.baselines.ook import OokModem, OokResult
from repro.baselines.fsk import FskModem, FskResult

__all__ = ["OokModem", "OokResult", "FskModem", "FskResult"]
