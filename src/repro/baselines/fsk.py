"""Frequency-shift-keying baseline (RollingLight-style).

The FSK schemes the paper compares against ([1] RollingLight, [2] Visual
Light Landmarks) encode each symbol as a *burst of on-off cycles at one of
several frequencies*; the camera measures the band-stripe frequency inside
the burst to recover the symbol (paper §2.1, Fig 1b).  Long symbols (many
cycles each) are what make FSK robust — and slow: the paper quotes 11.32
and 1.25 bytes per second.

This modem reproduces that design point: M frequencies = log2(M) bits per
burst, a fixed burst duration long enough to contain several cycles of the
slowest tone, and a dark guard interval between bursts for burst
synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.exceptions import ModulationError
from repro.phy.led import TriLedEmitter
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.rx.preprocess import frame_to_scanline_lab
from repro.util.bitstream import bits_to_bytes, bytes_to_bits, chunk_bits, int_to_bits
from repro.util.validation import require, require_positive


@dataclass
class FskResult:
    """Decoded symbols of one FSK recording plus accounting."""

    bits: List[int]
    bursts_observed: int
    duration_s: float

    @property
    def throughput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.bits) / self.duration_s

    def payload(self) -> bytes:
        usable = len(self.bits) - len(self.bits) % 8
        return bits_to_bytes(self.bits[:usable])


class FskModem:
    """Multi-tone on-off FSK over the tri-LED (white light only).

    Parameters
    ----------
    tones_hz:
        The symbol alphabet: one on-off switching frequency per symbol.
        Must have a power-of-two length.  Defaults to four tones between
        1 and 2.2 kHz, within what rolling-shutter cameras resolve.
    burst_s:
        Symbol (burst) duration.  RollingLight uses bursts spanning a good
        fraction of a frame so at least one full burst is captured per
        frame; the default 10 ms gives >= 10 cycles of the slowest tone.
    guard_s:
        Dark gap separating bursts, used for burst segmentation.
    """

    #: Waveform sampling rate for building the on-off chip sequence.
    CHIP_RATE_HZ = 20000.0

    def __init__(
        self,
        emitter: TriLedEmitter,
        tones_hz: Sequence[float] = (1000.0, 1400.0, 1800.0, 2200.0),
        burst_s: float = 0.010,
        guard_s: float = 0.002,
    ) -> None:
        tones = [float(t) for t in tones_hz]
        require(len(tones) >= 2, "need at least two tones")
        if len(tones) & (len(tones) - 1):
            raise ModulationError(
                f"tone count must be a power of two, got {len(tones)}"
            )
        for tone in tones:
            require_positive(tone, "tone frequency")
            require(
                tone < self.CHIP_RATE_HZ / 4,
                f"tone {tone} Hz too fast for the chip rate",
            )
        require_positive(burst_s, "burst_s")
        require_positive(guard_s, "guard_s")
        self.emitter = emitter
        self.tones_hz = tones
        self.burst_s = float(burst_s)
        self.guard_s = float(guard_s)
        self._on_xyz = emitter.emit_chromaticity(emitter.white_point)
        self._off_xyz = emitter.off_xyz()

    @property
    def bits_per_burst(self) -> int:
        return len(self.tones_hz).bit_length() - 1

    @property
    def bits_per_second_on_air(self) -> float:
        return self.bits_per_burst / (self.burst_s + self.guard_s)

    # -- TX ------------------------------------------------------------------

    def modulate(self, payload: bytes, extend: str = EXTEND_CYCLE) -> OpticalWaveform:
        """Encode payload bits as tone bursts separated by dark guards."""
        if not payload:
            raise ModulationError("payload must not be empty")
        chips: List[np.ndarray] = []
        chips_per_burst = int(round(self.burst_s * self.CHIP_RATE_HZ))
        chips_per_guard = int(round(self.guard_s * self.CHIP_RATE_HZ))
        times = np.arange(chips_per_burst) / self.CHIP_RATE_HZ
        for group in chunk_bits(bytes_to_bits(payload), self.bits_per_burst):
            tone_index = 0
            for bit in group:
                tone_index = (tone_index << 1) | bit
            tone = self.tones_hz[tone_index]
            on = (np.sin(2 * np.pi * tone * times) >= 0).astype(float)
            for state in on:
                chips.append(self._on_xyz if state else self._off_xyz)
            chips.extend([self._off_xyz] * chips_per_guard)
        return OpticalWaveform(
            np.stack(chips), self.CHIP_RATE_HZ, extend=extend
        )

    # -- RX ------------------------------------------------------------------

    def demodulate_frames(
        self,
        frames: Sequence[CapturedFrame],
        duration_s: float,
    ) -> FskResult:
        """Recover tone bursts from the scanline lightness signal.

        Each frame's scanline lightness is segmented into lit bursts
        (separated by guard gaps); the stripe frequency inside a burst is
        estimated by zero-crossing counting and matched to the nearest tone.
        Bursts cut by the frame edge or the inter-frame gap are dropped —
        the synchronization loss the original systems also pay.
        """
        bits: List[int] = []
        bursts = 0
        for frame in frames:
            # Smooth enough to suppress scanline pipeline noise (which would
            # inject spurious zero crossings) while staying well under the
            # fastest tone's half-period in rows.
            half_period_rows = 1.0 / (
                2.0 * max(self.tones_hz) * frame.row_period
            )
            smooth = max(3, min(int(half_period_rows / 4), 9))
            scanlines = frame_to_scanline_lab(frame, smooth_rows=smooth)
            lightness = scanlines[:, 0]
            rows_per_second = 1.0 / frame.row_period
            for start, stop in self._bursts(lightness, frame):
                bursts += 1
                tone_index = self._classify_burst(
                    lightness[start:stop], rows_per_second
                )
                if tone_index is None:
                    continue
                bits.extend(int_to_bits(tone_index, self.bits_per_burst))
        return FskResult(bits=bits, bursts_observed=bursts, duration_s=duration_s)

    def _bursts(self, lightness: np.ndarray, frame: CapturedFrame) -> List[tuple]:
        """Locate complete bursts: lit spans bounded by guard-length gaps."""
        threshold = max(np.percentile(lightness, 80) * 0.3, 8.0)
        lit = lightness > threshold
        guard_rows = int(self.guard_s / frame.row_period * 0.6)
        burst_rows = int(self.burst_s / frame.row_period)
        spans: List[tuple] = []
        run_start = None
        gap = guard_rows  # treat the frame start as a gap
        for row, is_lit in enumerate(lit):
            if is_lit:
                if run_start is None and gap >= guard_rows:
                    run_start = row
                gap = 0
            else:
                gap += 1
                if run_start is not None and gap >= guard_rows:
                    spans.append((run_start, row - gap + 1))
                    run_start = None
        # A burst still open at the frame edge is incomplete: drop it.
        return [
            (start, stop)
            for start, stop in spans
            if (stop - start) >= 0.7 * burst_rows
        ]

    def _classify_burst(
        self, lightness: np.ndarray, rows_per_second: float
    ):
        """Zero-crossing frequency estimate -> nearest tone index."""
        if lightness.size < 8:
            return None
        centered = lightness - lightness.mean()
        crossings = np.count_nonzero(np.diff(np.signbit(centered)))
        duration = lightness.size / rows_per_second
        if duration <= 0 or crossings == 0:
            return None
        frequency = crossings / (2.0 * duration)
        distances = [abs(frequency - tone) for tone in self.tones_hz]
        best = int(np.argmin(distances))
        # Reject estimates far from every tone (noise bursts).
        spacing = min(
            abs(a - b)
            for i, a in enumerate(self.tones_hz)
            for b in self.tones_hz[i + 1 :]
        )
        if distances[best] > spacing:
            return None
        return best
