"""On-off-keying baseline for rolling-shutter cameras.

OOK transmits one bit per symbol period by switching the LED fully on or
off (paper §2.1, Fig 1b).  It is the simplest rolling-shutter modulation
and the paper's first point of comparison: less robust to ambient light,
flicker-prone under long runs of equal bits, and limited to one bit per
band — the data-rate ceiling ColorBars breaks with color.

The modem uses Manchester-style run-length limiting (each data bit becomes
an on-off or off-on pair) so the LED never idles in one state long enough
to flicker, matching how practical OOK VLC links are run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.exceptions import ModulationError
from repro.phy.led import TriLedEmitter
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.rx.preprocess import frame_to_scanline_lab
from repro.util.bitstream import bits_to_bytes, bytes_to_bits
from repro.util.validation import require, require_positive


@dataclass
class OokResult:
    """Decoded bits of one OOK recording plus accounting."""

    bits: List[int]
    symbols_observed: int
    duration_s: float

    @property
    def throughput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return len(self.bits) / self.duration_s

    def payload(self) -> bytes:
        usable = len(self.bits) - len(self.bits) % 8
        return bits_to_bytes(self.bits[:usable])


class OokModem:
    """Manchester-coded on-off keying over the tri-LED."""

    def __init__(
        self,
        emitter: TriLedEmitter,
        symbol_rate: float,
        off_lightness: float = 12.0,
    ) -> None:
        require_positive(symbol_rate, "symbol_rate")
        emitter.pwm.check_symbol_rate(symbol_rate)
        self.emitter = emitter
        self.symbol_rate = float(symbol_rate)
        self.off_lightness = off_lightness
        self._on_xyz = emitter.emit_chromaticity(emitter.white_point)
        self._off_xyz = emitter.off_xyz()

    @property
    def bits_per_second_on_air(self) -> float:
        """Data bits per second of airtime (half the symbol rate)."""
        return self.symbol_rate / 2.0

    # -- TX ------------------------------------------------------------------

    def modulate(self, payload: bytes, extend: str = EXTEND_CYCLE) -> OpticalWaveform:
        """Manchester-encode payload bits into an on/off waveform."""
        if not payload:
            raise ModulationError("payload must not be empty")
        levels: List[np.ndarray] = []
        for bit in bytes_to_bits(payload):
            if bit:
                levels.extend([self._on_xyz, self._off_xyz])
            else:
                levels.extend([self._off_xyz, self._on_xyz])
        return OpticalWaveform(np.stack(levels), self.symbol_rate, extend=extend)

    # -- RX ------------------------------------------------------------------

    def demodulate_frames(
        self,
        frames: Sequence[CapturedFrame],
        rows_per_symbol: float,
        duration_s: float,
    ) -> OokResult:
        """Threshold scanlines into on/off runs and undo the Manchester code.

        Bits interrupted by the inter-frame gap are dropped: plain OOK has no
        erasure protection, which is part of why its net rate is low.
        """
        require_positive(rows_per_symbol, "rows_per_symbol")
        bits: List[int] = []
        symbols = 0
        for frame in frames:
            states = self._frame_states(frame, rows_per_symbol)
            symbols += len(states)
            # Manchester pairs: (1,0) -> 1, (0,1) -> 0; resynchronize on
            # violations ((0,0)/(1,1) cannot be a code pair).
            index = 0
            while index + 1 < len(states):
                pair = (states[index], states[index + 1])
                if pair == (1, 0):
                    bits.append(1)
                    index += 2
                elif pair == (0, 1):
                    bits.append(0)
                    index += 2
                else:
                    index += 1
        return OokResult(bits=bits, symbols_observed=symbols, duration_s=duration_s)

    def _frame_states(
        self, frame: CapturedFrame, rows_per_symbol: float
    ) -> List[int]:
        scanlines = frame_to_scanline_lab(frame)
        lit = scanlines[:, 0] >= self.off_lightness
        states: List[int] = []
        run_start = 0
        for row in range(1, len(lit) + 1):
            if row == len(lit) or lit[row] != lit[run_start]:
                run_width = row - run_start
                count = max(int(round(run_width / rows_per_symbol)), 0)
                states.extend([int(lit[run_start])] * count)
                run_start = row
        return states
