"""Scanline-to-band segmentation by symbol-timing recovery.

Each transmitted symbol occupies a run of scanlines (its *band*, Fig 1c).
The symbol rate is a system parameter, so the expected band pitch ``P``
(rows per symbol) is known exactly; what the receiver must estimate is the
*phase* — where the band grid sits within the frame.  Segmentation therefore
works like classic symbol-timing recovery rather than free-form edge
detection:

1. compute a boundary-strength signal ``g(r)`` — the color distance between
   scanlines one exposure-smear apart (transitions between bands are ramps
   ``smear`` rows long, because a scanline whose exposure window straddles a
   symbol boundary integrates both colors);
2. find the grid phase by maximizing the comb energy
   ``E(phi) = mean_k g(phi + k P)`` — every inter-band transition in the
   frame votes for the same phase;
3. place one band per grid cell and estimate its color from the *pure
   plateau*: the ``P - smear`` rows whose exposure windows sit entirely
   inside the symbol period, refined with a minimum-chroma-dispersion
   window search.

This remains robust when the exposure is a large fraction of the symbol
period (the high-symbol-rate regime of Fig 9, where transition rows
outnumber pure rows), and it splits runs of identical adjacent symbols for
free — the grid does not care that no edge is visible between them.

Band timing comes from the core rows: their exposure midpoints lie inside
the symbol period, so ``Band.center_row`` anchors slot indexing across
frames to a fraction of a symbol.

The 10-pixel minimum band width of paper §4 is enforced here: configurations
whose band pitch falls below it are rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import DemodulationError
from repro.util.validation import require, require_positive

#: Paper §4: below ~10 scanlines a band cannot be demodulated reliably.
MIN_BAND_ROWS = 10


@dataclass(frozen=True)
class Band:
    """One detected color band.

    ``row_start``/``row_stop`` span the grid cell; ``core_start``/
    ``core_stop`` bound the pure plateau used for both the color estimate
    and the band's timing.
    """

    row_start: int
    row_stop: int
    core_start: int
    core_stop: int
    lab: np.ndarray

    @property
    def width(self) -> int:
        return self.row_stop - self.row_start

    @property
    def center_row(self) -> float:
        """Center of the pure core — the band's timing anchor."""
        return (self.core_start + self.core_stop - 1) / 2.0


class BandSegmenter:
    """Splits per-scanline Lab sequences into symbol bands.

    Parameters
    ----------
    rows_per_symbol:
        Band pitch in scanlines (from sensor timing and symbol rate).
        Must be at least :data:`MIN_BAND_ROWS`.
    boundary_delta_e:
        Retained for API compatibility; the comb estimator weighs *all*
        transitions, so no hard threshold is applied during segmentation.
    off_lightness:
        L* below which rows count as dark (OFF symbols); used to weight the
        boundary signal so dark/lit edges vote like color edges.
    edge_trim_fraction:
        Fraction trimmed from each side of the grid cell before estimating
        the band color (``central`` coring), or extra trim applied to the
        pure plateau before the dispersion search (``min_variance`` coring).
    coring:
        How the band's color is estimated from its scanlines:

        * ``"central"`` (default) — plain mean over the trimmed pure
          plateau.  The estimate's noise scales as ``1/sqrt(plateau)``, and
          the plateau shrinks linearly as the symbol rate rises (fewer
          scanlines per band, a fixed exposure smear): this is the
          narrower-bands-are-harder mechanism behind Fig 9's SER growth.
        * ``"min_variance"`` — additionally search the plateau for the
          minimum-chroma-dispersion window and take its median.  The
          selection suppresses scanline-correlated pipeline noise below
          the plain-mean floor — a receiver refinement beyond the paper,
          quantified in the coring ablation bench.
    """

    #: Grid-phase search resolution, in rows.
    PHASE_STEP_ROWS = 0.25

    #: Supported coring strategies.
    CORING_MODES = ("central", "min_variance")

    def __init__(
        self,
        rows_per_symbol: float,
        boundary_delta_e: float = 9.0,
        off_lightness: float = 12.0,
        edge_trim_fraction: float = 0.2,
        min_band_rows: int = MIN_BAND_ROWS,
        coring: str = "central",
        allow_no_plateau: bool = False,
    ) -> None:
        require_positive(rows_per_symbol, "rows_per_symbol")
        if rows_per_symbol < min_band_rows:
            raise DemodulationError(
                f"expected band width {rows_per_symbol:.1f} rows is below the "
                f"{min_band_rows}-row demodulation minimum; lower the symbol "
                "rate or use a taller sensor"
            )
        require_positive(boundary_delta_e, "boundary_delta_e")
        require_positive(off_lightness, "off_lightness")
        require(
            0 <= edge_trim_fraction < 0.5,
            f"edge_trim_fraction must be in [0, 0.5), got {edge_trim_fraction}",
        )
        if coring not in self.CORING_MODES:
            raise DemodulationError(
                f"coring must be one of {self.CORING_MODES}, got {coring!r}"
            )
        self.rows_per_symbol = float(rows_per_symbol)
        self.boundary_delta_e = boundary_delta_e
        self.off_lightness = off_lightness
        self.edge_trim_fraction = edge_trim_fraction
        self.min_band_rows = min_band_rows
        self.coring = coring
        #: When True, a vanishing pure plateau (exposure ~ band width) does
        #: not abort segmentation: the band grid is still produced (the
        #: comb phase needs only the transition ramps), with colors left to
        #: downstream ISI equalization (repro.rx.equalizer) to recover.
        self.allow_no_plateau = allow_no_plateau

    # -- phase recovery ------------------------------------------------------

    def _boundary_signal(
        self, scanline_lab: np.ndarray, lag: int
    ) -> np.ndarray:
        """Color distance between scanlines ``lag`` rows apart.

        Chroma distance plus a (down-weighted) lightness term so dark/lit
        transitions around OFF symbols vote alongside color transitions.
        """
        diff = scanline_lab[lag:] - scanline_lab[:-lag]
        return np.hypot(diff[:, 1], diff[:, 2]) + 0.4 * np.abs(diff[:, 0])

    def _grid_phase(self, g: np.ndarray) -> float:
        """Phase of the band grid: argmax of the comb energy of ``g``.

        All candidate phases are evaluated in one pass: a ``(phases, teeth)``
        comb-position matrix, one gather from ``g``, and a masked row mean.
        ``g`` is non-negative, so empty combs (energy 0) can never beat a
        real transition comb; ties resolve to the first (lowest) phase, as
        the scalar loop this replaces did.
        """
        pitch = self.rows_per_symbol
        phases = np.arange(0.0, pitch, self.PHASE_STEP_ROWS)
        limit = len(g) - 1
        counts = np.maximum(np.ceil((limit - phases) / pitch), 0).astype(int)
        teeth = int(counts.max()) if counts.size else 0
        if teeth == 0:
            return 0.0
        tooth_index = np.arange(teeth)
        positions = phases[:, np.newaxis] + pitch * tooth_index[np.newaxis, :]
        valid = tooth_index[np.newaxis, :] < counts[:, np.newaxis]
        samples = g[np.minimum(np.round(positions).astype(int), len(g) - 1)]
        energies = np.where(valid, samples, 0.0).sum(axis=1)
        energies /= np.maximum(counts, 1)
        return float(phases[int(np.argmax(energies))])

    # -- band extraction -----------------------------------------------------

    def segment(
        self, scanline_lab: np.ndarray, smear_rows: float = 0.0
    ) -> List[Band]:
        """Detect the symbol bands of one frame.

        ``smear_rows`` is the exposure time divided by the row period — the
        number of scanlines whose exposure window straddles each symbol
        boundary (and hence the length of every inter-band transition ramp).
        """
        scanline_lab = np.asarray(scanline_lab, dtype=float)
        if scanline_lab.ndim != 2 or scanline_lab.shape[1] != 3:
            raise DemodulationError(
                f"expected (rows, 3) Lab array, got {scanline_lab.shape}"
            )
        if smear_rows < 0:
            raise DemodulationError(f"smear_rows must be >= 0, got {smear_rows}")
        rows = scanline_lab.shape[0]
        pitch = self.rows_per_symbol
        plateau = pitch - smear_rows
        if plateau < 3:
            if not self.allow_no_plateau:
                # The exposure window spans (nearly) the whole band: no pure
                # scanlines remain, so nothing in this frame is demodulable
                # by plateau estimation.  This is runtime channel state (a
                # dim scene pushed the auto exposure long), not a
                # configuration error — the frame simply yields no symbols
                # and the link degrades to zero throughput, the physically
                # correct outcome at excessive range.
                return []
            # Equalized mode: keep the grid; colors will be recovered by
            # deconvolution downstream.  A minimal nominal plateau keeps
            # the per-band bookkeeping (cores anchor timing only).
            plateau = min(3.0, pitch)
        if rows < pitch:
            return []

        lag = max(1, min(int(round(smear_rows)), int(pitch / 2)))
        g = self._boundary_signal(scanline_lab, lag)
        phase = self._grid_phase(g)

        # The boundary signal with window [r, r + lag] peaks when the window
        # is centered on a transition center, which sits smear/2 before the
        # next symbol's first pure row.  Symbol-start rows therefore sit at
        # phase + lag/2 + smear/2 (mod pitch).
        first_start = phase + lag / 2.0 + smear_rows / 2.0
        first_start -= pitch * np.ceil(first_start / pitch)

        cell_count = int(np.ceil((rows - first_start) / pitch))
        starts = first_start + pitch * np.arange(max(cell_count, 0))
        if starts.size == 0:
            return []
        cell_lo = np.round(starts).astype(int)
        cell_hi = np.round(starts + pitch).astype(int)
        lo = np.maximum(np.floor(starts).astype(int), 0)
        hi = np.minimum(np.ceil(starts + plateau).astype(int), rows)
        # Partial symbols at the frame edges drop out here.
        keep = (hi - lo) >= max(3, 0.4 * plateau)
        cell_lo, cell_hi, lo, hi = (
            cell_lo[keep], cell_hi[keep], lo[keep], hi[keep]
        )
        if self.coring == "min_variance":
            return [
                self._make_band(scanline_lab, *bounds)
                for bounds in zip(
                    lo.tolist(), hi.tolist(), cell_lo.tolist(), cell_hi.tolist()
                )
            ]
        return self._central_bands(scanline_lab, lo, hi, cell_lo, cell_hi)

    def _central_bands(
        self,
        scanline_lab: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        cell_lo: np.ndarray,
        cell_hi: np.ndarray,
    ) -> List[Band]:
        """All central-coring bands of a frame in one batched pass.

        Same trim arithmetic as :meth:`_make_band`'s central branch, with
        the per-band core means computed from one cumulative sum over the
        scanlines instead of one ``mean`` reduction per band.
        """
        rows = scanline_lab.shape[0]
        trim = ((hi - lo) * self.edge_trim_fraction).astype(int)
        core_start = lo + trim
        core_stop = hi - trim
        narrow = (core_stop - core_start) < 3
        core_start = np.where(narrow, lo, core_start)
        core_stop = np.where(
            narrow, np.minimum(np.maximum(hi, core_start + 3), rows), core_stop
        )
        sums = np.concatenate(
            [np.zeros((1, 3)), np.cumsum(scanline_lab, axis=0)]
        )
        labs = (sums[core_stop] - sums[core_start]) / (
            (core_stop - core_start)[:, np.newaxis]
        )
        return [
            Band(
                row_start=max(int(c_lo), 0),
                row_stop=min(int(c_hi), rows),
                core_start=int(start),
                core_stop=int(stop),
                lab=labs[index],
            )
            for index, (c_lo, c_hi, start, stop) in enumerate(
                zip(cell_lo, cell_hi, core_start, core_stop)
            )
        ]

    def _make_band(
        self,
        scanline_lab: np.ndarray,
        plateau_lo: int,
        plateau_hi: int,
        cell_lo: int,
        cell_hi: int,
    ) -> Band:
        total_rows = scanline_lab.shape[0]
        if self.coring == "min_variance":
            rows = scanline_lab[plateau_lo:plateau_hi]
            width = plateau_hi - plateau_lo
            core_len = max(3, int(width * (1.0 - 2 * self.edge_trim_fraction)))
            if core_len >= width:
                offset, core = 0, rows
            else:
                offset, core = self._purest_window(rows, core_len)
            # Median resists residual transition rows better than the mean.
            lab = np.median(core, axis=0)
            core_start = plateau_lo + offset
            core_stop = core_start + core.shape[0]
        else:
            # Plain mean over the trimmed plateau.  Unlike the dispersion
            # search, the mean has no selection bias, so scanline-correlated
            # pipeline noise enters at its full 1/sqrt(plateau) floor —
            # shrinking plateaus (higher symbol rates) estimate worse.
            width = plateau_hi - plateau_lo
            trim = int(width * self.edge_trim_fraction)
            core_start = max(plateau_lo + trim, 0)
            core_stop = min(plateau_hi - trim, total_rows)
            if core_stop - core_start < 3:
                core_start = max(plateau_lo, 0)
                core_stop = min(max(plateau_hi, core_start + 3), total_rows)
            core = scanline_lab[core_start:core_stop]
            lab = core.mean(axis=0)
        return Band(
            row_start=max(cell_lo, 0),
            row_stop=min(cell_hi, total_rows),
            core_start=core_start,
            core_stop=core_stop,
            lab=lab,
        )

    @staticmethod
    def _purest_window(rows: np.ndarray, core_len: int) -> Tuple[int, np.ndarray]:
        """Offset and rows of the minimum-chroma-dispersion window.

        The pure plateau sits at an offset that depends on residual phase
        error, so a fixed trim can miss it; the minimum-variance window
        finds it regardless.
        """
        n = rows.shape[0]
        if core_len >= n:
            return 0, rows
        chroma = rows[:, 1:]
        # Rolling mean/variance via cumulative sums: O(n) per band.
        padded = np.vstack([np.zeros((1, 2)), np.cumsum(chroma, axis=0)])
        padded_sq = np.vstack(
            [np.zeros((1, 2)), np.cumsum(chroma**2, axis=0)]
        )
        window_sum = padded[core_len:] - padded[:-core_len]
        window_sq = padded_sq[core_len:] - padded_sq[:-core_len]
        variance = (window_sq / core_len - (window_sum / core_len) ** 2).sum(
            axis=1
        )
        best = int(np.argmin(variance))
        return best, rows[best : best + core_len]
