"""ISI equalization by exposure deconvolution.

At high symbol rates the exposure window spans a large fraction of each
band, so most scanlines observe a *mixture* of two adjacent symbols.  The
standard receiver works around that by estimating colors from the shrinking
pure plateau; this module instead exploits that the mixing is exactly
known: a scanline whose exposure window starts at row ``r`` integrates
symbol ``k`` and ``k+1`` with weights given by the window's overlap with
each symbol period.  Stacking every scanline yields an overdetermined
linear system

    s(r) = w_k(r) * c_k + w_{k+1}(r) * c_{k+1}

in *linear* RGB (optical mixing is linear before gamma), whose least-squares
solution recovers the per-symbol colors ``c_k`` using **all** rows — pure
and mixed alike.  The normal equations are tridiagonal (each row touches at
most two symbols), so a frame solves in O(symbols).

This is the inter-symbol-interference half of the paper's §10 future work;
combined with the plateau estimators it lets the receiver keep climbing in
symbol rate after pure plateaus vanish.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.camera.noise import dequantize_8bit
from repro.color.cielab import xyz_to_lab
from repro.color.srgb import linear_rgb_to_xyz, srgb_to_linear
from repro.exceptions import DemodulationError
from repro.rx.segmentation import Band


def frame_to_scanline_linear(frame: CapturedFrame) -> np.ndarray:
    """Per-scanline mean *linear* RGB — the domain where mixing is linear."""
    srgb = dequantize_8bit(frame.pixels)
    return srgb_to_linear(srgb).mean(axis=1)


def _window_weights(
    row: float, exposure_rows: float, cell_starts: np.ndarray
) -> Optional[tuple]:
    """Which two symbols a scanline's exposure window overlaps, and how much.

    ``cell_starts`` are the grid-cell start rows (window-start coordinates);
    the window covers ``[row, row + exposure_rows)``.
    """
    window_lo = row
    window_hi = row + max(exposure_rows, 1e-9)
    index = int(np.searchsorted(cell_starts, window_lo, side="right")) - 1
    if index < 0 or index + 1 >= len(cell_starts):
        return None
    boundary = cell_starts[index + 1]
    first = max(0.0, min(window_hi, boundary) - window_lo)
    second = max(0.0, window_hi - max(window_lo, boundary))
    total = first + second
    if total <= 0:
        return None
    return index, first / total, second / total


def deconvolve_frame(
    frame: CapturedFrame,
    bands: List[Band],
    smear_rows: float,
    ridge: float = 1e-3,
    preserve_dark_below: Optional[float] = None,
) -> List[Band]:
    """Re-estimate every band's color by exposure deconvolution.

    ``bands`` must come from the grid segmenter (their ``row_start`` values
    define the cell grid).  Returns new :class:`Band` objects with the
    deconvolved colors in CIELab; geometry and timing anchors are preserved.

    ``ridge`` regularizes the normal equations (scanline noise would
    otherwise leak between neighbouring symbols through the near-singular
    boundary rows).

    ``preserve_dark_below`` keeps the segmenter's direct plateau estimate
    for bands whose measured lightness is already under the threshold: an
    off symbol carries no chroma to recover, and at the black floor the
    regularized solve can only *add* leakage from lit neighbours — enough
    to push a dark band across the off-lightness decision boundary and
    corrupt the white/off anchors the packet assembler keys on.
    """
    if not bands:
        return []
    if smear_rows < 0:
        raise DemodulationError(f"smear_rows must be >= 0, got {smear_rows}")

    scanlines = frame_to_scanline_linear(frame)
    rows = scanlines.shape[0]
    count = len(bands)

    # Grid cell starts in window-start coordinates: the band's first pure
    # row IS the cell start used by the segmenter.
    cell_starts = np.array([band.row_start for band in bands], dtype=float)
    # Append the implied end of the final cell for boundary bookkeeping.
    pitch = (
        (cell_starts[-1] - cell_starts[0]) / (count - 1)
        if count > 1
        else float(bands[0].row_stop - bands[0].row_start)
    )
    grid = np.append(cell_starts, cell_starts[-1] + pitch)

    # Accumulate tridiagonal normal equations: (A^T A) c = A^T s.
    diag = np.full(count, ridge)
    off = np.zeros(max(count - 1, 0))
    rhs = np.zeros((count, 3))
    row_indices = np.arange(rows, dtype=float)
    usable = (row_indices >= grid[0]) & (row_indices + smear_rows < grid[-1])
    for r in np.nonzero(usable)[0]:
        weights = _window_weights(float(r), smear_rows, grid)
        if weights is None:
            continue
        k, w1, w2 = weights
        if k >= count:
            continue
        diag[k] += w1 * w1
        rhs[k] += w1 * scanlines[r]
        if k + 1 < count:
            diag[k + 1] += w2 * w2
            off[k] += w1 * w2
            rhs[k + 1] += w2 * scanlines[r]

    colors = _solve_tridiagonal(diag, off, rhs)
    colors = np.clip(colors, 0.0, 1.0)
    lab = xyz_to_lab(linear_rgb_to_xyz(colors))

    return [
        Band(
            row_start=band.row_start,
            row_stop=band.row_stop,
            core_start=band.core_start,
            core_stop=band.core_stop,
            lab=(
                band.lab
                if preserve_dark_below is not None
                and band.lab[0] < preserve_dark_below
                else lab[index]
            ),
        )
        for index, band in enumerate(bands)
    ]


def _solve_tridiagonal(
    diag: np.ndarray, off: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Thomas algorithm for the symmetric tridiagonal normal equations."""
    n = diag.shape[0]
    if n == 1:
        return rhs / max(diag[0], 1e-12)
    c_prime = np.zeros(n - 1)
    d_prime = np.zeros((n, rhs.shape[1]))
    denom = diag[0]
    c_prime[0] = off[0] / denom
    d_prime[0] = rhs[0] / denom
    for i in range(1, n):
        denom = diag[i] - off[i - 1] * c_prime[i - 1]
        denom = denom if abs(denom) > 1e-12 else 1e-12
        if i < n - 1:
            c_prime[i] = off[i] / denom
        d_prime[i] = (rhs[i] - off[i - 1] * d_prime[i - 1]) / denom
    solution = np.zeros_like(d_prime)
    solution[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        solution[i] = d_prime[i] - c_prime[i] * solution[i + 1]
    return solution
