"""Symbol detection: bands -> classified received symbols.

Bridges segmentation and packet assembly.  Before the first calibration
packet arrives the detector runs in *bootstrap* mode — OFF by lightness,
WHITE by low chroma magnitude, everything else an unknown DATA color — which
is all preamble matching needs (the calibration flag is built from OFF and
WHITE precisely so an uncalibrated receiver can latch onto it, paper §6.2).
Once calibrated, full constellation matching takes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.csk.demodulator import (
    CskDemodulator,
    DecisionKind,
    SymbolDecision,
)
from repro.exceptions import DemodulationError
from repro.rx.segmentation import Band


@dataclass(frozen=True)
class ReceivedBand:
    """A detected band tagged with its frame, timing and decision."""

    frame_index: int
    band: Band
    mid_time: float
    decision: SymbolDecision

    @property
    def lab(self) -> np.ndarray:
        return self.band.lab

    @property
    def chroma(self) -> np.ndarray:
        return self.band.lab[1:]

    def to_char(self) -> str:
        return self.decision.to_char()


class SymbolDetector:
    """Classifies segmented bands, in bootstrap or calibrated mode."""

    def __init__(
        self,
        demodulator: CskDemodulator,
        bootstrap_white_chroma: float = 14.0,
    ) -> None:
        if bootstrap_white_chroma <= 0:
            raise DemodulationError(
                "bootstrap_white_chroma must be positive, "
                f"got {bootstrap_white_chroma}"
            )
        self.demodulator = demodulator
        self.bootstrap_white_chroma = bootstrap_white_chroma

    @property
    def calibrated(self) -> bool:
        return self.demodulator.calibration.is_calibrated

    def _bootstrap_decision(self, lab: np.ndarray) -> SymbolDecision:
        lightness = float(lab[0])
        chroma_mag = float(np.hypot(lab[1], lab[2]))
        if lightness < self.demodulator.off_lightness:
            return SymbolDecision(DecisionKind.OFF, None, 0.0, True)
        if chroma_mag < self.bootstrap_white_chroma:
            return SymbolDecision(DecisionKind.WHITE, None, chroma_mag, True)
        # Unknown color: report as unconfident DATA with no index.  The
        # assembler ignores data payloads until calibration anyway.
        return SymbolDecision(DecisionKind.DATA, None, chroma_mag, False)

    def _bootstrap_stream(self, labs: np.ndarray) -> List[SymbolDecision]:
        """Vectorized :meth:`_bootstrap_decision` over ``(N, 3)`` Lab rows."""
        lightness = labs[:, 0]
        chroma_mag = np.hypot(labs[:, 1], labs[:, 2])
        off = lightness < self.demodulator.off_lightness
        white = ~off & (chroma_mag < self.bootstrap_white_chroma)
        return [
            SymbolDecision(DecisionKind.OFF, None, 0.0, True)
            if is_off
            else SymbolDecision(
                DecisionKind.WHITE if is_white else DecisionKind.DATA,
                None,
                mag,
                bool(is_white),
            )
            for is_off, is_white, mag in zip(
                off.tolist(), white.tolist(), chroma_mag.tolist()
            )
        ]

    def detect(
        self,
        frame: CapturedFrame,
        bands: List[Band],
    ) -> List[ReceivedBand]:
        """Attach timing and symbol decisions to a frame's bands."""
        if not bands:
            return []
        labs = np.stack([band.lab for band in bands])
        if self.calibrated:
            decisions = self.demodulator.decide_stream(labs)
        else:
            decisions = self._bootstrap_stream(labs)
        centers = np.array([band.center_row for band in bands])
        mid_times = (
            frame.start_time
            + centers * frame.row_period
            + frame.exposure.exposure_s / 2.0
        )
        return [
            ReceivedBand(
                frame_index=frame.index,
                band=band,
                mid_time=mid_time,
                decision=decision,
            )
            for band, mid_time, decision in zip(
                bands, mid_times.tolist(), decisions
            )
        ]
