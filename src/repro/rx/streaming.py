"""Incremental (frame-at-a-time) facade over the ColorBars receiver.

:class:`StreamingReceiver` turns the batch receiver into a long-lived
session: frames are fed one at a time, data packets are emitted as
:class:`PacketEvent` the moment their codeword window closes (the next
preamble is found), and ``finish()`` flushes the tail.  The contract — and
the reason this module exists as a facade instead of a rewrite — is **byte
identity with the batch pass**: for any frame sequence, feeding the frames
one by one and calling ``finish()`` leaves ``report`` equal to what
``ColorBarsReceiver.process_frames`` returns on the same sequence, with and
without injected faults.  Identity holds by construction, not by testing
alone (though ``tests/rx/test_streaming_equivalence.py`` gates it):

* segmentation and classification reuse the receiver's own per-frame
  methods, in feed order;
* stitching is the batch fold (:meth:`PacketAssembler.stitch_into`) with
  the previous band carried across feeds;
* preamble matching is the batch greedy scan with an explicit cursor
  (:class:`repro.rx.assembler.PreambleScanner`) that refuses to decide at a
  position until enough symbols have arrived to make the batch decision;
* packet windows close exactly where batch windows close (the next match,
  or end of stream at ``finish()``), through the shared
  :meth:`PacketAssembler.extract_window`;
* calibration events are *queued* and committed at ``finish()`` — the batch
  pass classifies every frame against a table frozen for the whole call and
  absorbs calibrations only afterwards, so absorbing mid-stream would make
  streaming classification diverge.  "Online" absorption therefore means
  per-session, not per-frame: each ``finish()`` folds the session's
  credible calibration packets into the table in arrival order.

A receiver that *starts uncalibrated* cannot stream: the batch bootstrap
pass is non-causal (it scans the entire recording for calibration packets
before classifying frame 0).  In that case frames are buffered and the
whole pipeline — via the same ``_process_segmented`` the batch path runs —
executes at ``finish()``, which then emits every packet event at once.

Between preambles the consumed prefix of the stitched stream is pruned, so
a calibrated session holds O(window) state no matter how long it runs —
the property the session service (:mod:`repro.serve`) builds its memory
caps on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.camera.frame import CapturedFrame
from repro.exceptions import StreamingStateError
from repro.obs.schema import M_FRAME_BANDS, M_PACKET_ERASURES, SPAN_SEGMENT
from repro.packet.framing import PacketKind
from repro.rx.assembler import CalibrationEvent, StreamItem
from repro.rx.receiver import ColorBarsReceiver, FecFailure, ReceiverReport


@dataclass(frozen=True)
class PacketEvent:
    """One data packet closing inside a streaming session.

    ``decoded`` tells which of ``payload`` (the k-byte packet payload) and
    ``failure`` (the :class:`~repro.rx.receiver.FecFailure` record) is set.
    ``erasures`` and ``complete`` summarize how much of the codeword the
    inter-frame gaps swallowed; ``codeword_symbols`` is the codeword length
    the packet's header advertised, making ``erasure_fraction`` the
    per-packet channel-quality signal the link-adaptation controller
    consumes at packet boundaries (:mod:`repro.link.adapt`).
    """

    first_frame: int
    decoded: bool
    payload: Optional[bytes]
    failure: Optional[FecFailure]
    erasures: int
    complete: bool
    codeword_symbols: int = 0

    @property
    def erasure_fraction(self) -> Optional[float]:
        """Erased share of this packet's codeword; ``None`` if unknown."""
        if self.codeword_symbols <= 0:
            return None
        return min(1.0, self.erasures / self.codeword_symbols)


def _event_from(packet, outcome) -> PacketEvent:
    decoded = isinstance(outcome, bytes)
    return PacketEvent(
        first_frame=packet.first_frame,
        decoded=decoded,
        payload=outcome if decoded else None,
        failure=None if decoded else outcome,
        erasures=len(packet.erasure_positions),
        complete=packet.complete,
        codeword_symbols=packet.header_bytes,
    )


class StreamingReceiver:
    """Feed frames one at a time; collect packet events as codewords close.

    Wraps (and mutates) a :class:`ColorBarsReceiver` — the wrapped
    receiver's calibration table, assembler stats, tracer and metrics are
    the session's.  ``report`` accumulates exactly the
    :class:`ReceiverReport` the batch pass would have produced; read it
    after ``finish()``.
    """

    def __init__(self, receiver: ColorBarsReceiver) -> None:
        self.receiver = receiver
        self.report = ReceiverReport()
        #: Frames accepted so far (including frames whose pipeline failed).
        self.frames_fed = 0
        #: Fed frames whose pipeline raised and was contained.  Maintained
        #: in both modes (the buffered bootstrap mode does not touch
        #: ``report.frame_failures`` until ``finish()``), so a supervisor
        #: can spot a poison stream while it is still being fed.
        self.failures_contained = 0
        self._assembler = receiver.assembler
        self._scanner = self._assembler.make_scanner()
        self._items: List[StreamItem] = []
        self._chars = ""
        self._previous_band = None
        #: The last matched, not-yet-closed preamble: ``(start, kind)``.
        self._pending: Optional[tuple] = None
        self._calibrations: List[CalibrationEvent] = []
        #: An uncalibrated receiver cannot classify causally (the batch
        #: bootstrap scans the whole recording first): buffer segmented
        #: frames and run the shared batch path at ``finish()``.
        self._buffering = not receiver.calibration.is_calibrated
        self._segmented: List = []
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def buffering(self) -> bool:
        """True while frames are buffered for a bootstrap ``finish()``."""
        return self._buffering

    @property
    def last_contained_failure(self):
        """The most recent contained :class:`FrameFailure`, or ``None``.

        Live sessions report through ``report.frame_failures``; buffering
        sessions have not run the reporting pass yet, so their failures are
        read off the buffered segments.  Supervisors use this to attribute
        a poison stream without waiting for ``finish()``.
        """
        if self.report.frame_failures:
            return self.report.frame_failures[-1]
        for seg in reversed(self._segmented):
            if seg.failure is not None:
                return seg.failure
        return None

    def feed(self, frame: CapturedFrame) -> List[PacketEvent]:
        """Absorb one frame; return the packet events it closed."""
        if self._finished:
            raise StreamingStateError(
                "feed() on a finished streaming session: create a new "
                "StreamingReceiver for a new recording"
            )
        self.frames_fed += 1
        receiver = self.receiver
        with receiver.tracer.span(SPAN_SEGMENT, frame=frame.index):
            seg = receiver._segment_frame(frame)
        if self._buffering:
            if seg.failure is not None:
                self.failures_contained += 1
            self._segmented.append(seg)
            return []
        report = self.report
        failures_before = len(report.frame_failures)
        bands = receiver._classify_frame(seg, report.frame_failures)
        if len(report.frame_failures) > failures_before:
            self.failures_contained += 1
        report.frames_processed += 1
        report.bands.extend(bands)
        report.symbols_detected += len(bands)
        receiver.metrics.histogram(M_FRAME_BANDS).observe(len(bands))
        grown_from = len(self._items)
        self._previous_band = self._assembler.stitch_into(
            self._items, bands, self._previous_band
        )
        self._chars += "".join(
            self._assembler._classify_char(item)
            for item in self._items[grown_from:]
        )
        return self._drain(final=False)

    def finish(self) -> List[PacketEvent]:
        """Flush the stream: close the last window, commit calibrations."""
        if self._finished:
            raise StreamingStateError(
                "finish() called twice on a streaming session"
            )
        self._finished = True
        receiver = self.receiver
        if self._buffering:
            collected: List[tuple] = []
            if self._segmented:
                receiver._process_segmented(
                    self._segmented, self.report, collect=collected
                )
            self._segmented = []
            return [_event_from(packet, outcome) for packet, outcome in collected]
        events = self._drain(final=True)
        self.report.symbols_lost_in_gaps = (
            self._assembler.stats.symbols_lost_in_gaps
        )
        receiver._absorb_calibrations(self._calibrations, self.report)
        self._calibrations = []
        receiver._record_report_metrics(self.report)
        return events

    # -- internals -------------------------------------------------------

    def _drain(self, final: bool) -> List[PacketEvent]:
        """Advance the preamble scan; close and emit every decided window."""
        events: List[PacketEvent] = []
        for start, kind in self._scanner.scan(self._chars, final):
            if self._pending is not None:
                events.extend(self._close(self._pending, limit=start))
            self._assembler.stats.preambles_seen += 1
            self._pending = (start, kind)
        if final:
            if self._pending is not None:
                events.extend(
                    self._close(self._pending, limit=len(self._items))
                )
                self._pending = None
            self._items = []
            self._chars = ""
            self._scanner.position = 0
            return events
        # Steady-state memory bound: everything before the open window (or,
        # with no window open, before the scan cursor) can never be read
        # again — extraction only looks inside [match start, next match).
        if self._pending is not None:
            cut, kind = self._pending
            self._pending = (0, kind)
        else:
            cut = self._scanner.position
        if cut > 0:
            del self._items[:cut]
            self._chars = self._chars[cut:]
            self._scanner.position -= cut
        return events

    def _close(self, match: tuple, limit: int) -> List[PacketEvent]:
        """Extract one closed window; queue calibrations, emit data events."""
        start, kind = match
        result = self._assembler.extract_window(self._items, start, kind, limit)
        if kind is PacketKind.CALIBRATION:
            if result is not None:
                self._calibrations.append(result)
            return []
        if result is None:
            return []
        report = self.report
        report.packets_seen += 1
        self.receiver.metrics.histogram(M_PACKET_ERASURES).observe(
            len(result.erasure_positions)
        )
        outcome = self.receiver._decode_packet(result, report)
        return [_event_from(result, outcome)]
