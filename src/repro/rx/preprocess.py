"""Frame preprocessing: color-space conversion and dimension reduction.

Paper §7 steps 1-2: convert the received frame from RGB to CIELab (removing
the non-uniform brightness via the lightness channel) and collapse the 2-D
frame to one mean color per scanline to keep per-frame processing cheap on a
phone.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.camera.noise import dequantize_8bit
from repro.color.cielab import xyz_to_lab
from repro.color.illuminants import ILLUMINANT_D65
from repro.color.srgb import SRGB_BYTE_TO_LINEAR, srgb_to_linear
from repro.color.srgb import SRGB_TO_XYZ_MATRIX, linear_rgb_to_xyz
from repro.exceptions import DemodulationError


def _read_only_f32(values: np.ndarray) -> np.ndarray:
    table = np.ascontiguousarray(values, dtype=np.float32)
    table.flags.writeable = False
    return table


#: Float32 fusion of the receive-path color chain.  An 8-bit frame has only
#: 256 distinct channel values, so gamma decode is a table lookup; the
#: XYZ matrix and the white-point division fuse into one matmul
#: (``ratios = linear @ (M.T / white)``), and Lab's channel mixing
#: (``L = 116 fy - 16`` etc.) is itself a matmul plus an offset.  The only
#: per-pixel transcendental left is the CIELab cube root.  Scanline means
#: are a float32 weighted contraction over the column axis; the result
#: matches the reference ``xyz_to_lab(linear_rgb_to_xyz(srgb_to_linear``
#: ``(...)))`` chain to float32 rounding (~1e-6 relative) — far below the
#: ΔE = 2.3 decision scale.
_SRGB_BYTE_TO_LINEAR_F32 = _read_only_f32(SRGB_BYTE_TO_LINEAR)
_RGB_TO_XYZ_RATIOS_F32 = _read_only_f32(
    SRGB_TO_XYZ_MATRIX.T / ILLUMINANT_D65.XYZ[np.newaxis, :]
)
_LAB_BASIS = np.array(
    [[0.0, 500.0, 0.0], [116.0, -500.0, 200.0], [0.0, 0.0, -200.0]]
)
_LAB_BASIS.flags.writeable = False
_LAB_OFFSET = np.array([-16.0, 0.0, 0.0])
_LAB_OFFSET.flags.writeable = False
#: CIELab toe: f(t) = t / (3 δ²) + 4/29 for t <= δ³, δ = 6/29.
_LAB_TOE_THRESHOLD = (6.0 / 29.0) ** 3
_LAB_TOE_SCALE = 1.0 / (3.0 * (6.0 / 29.0) ** 2)
_LAB_TOE_OFFSET = 4.0 / 29.0
#: Frames per chunk of the fused conversion loop (cache blocking).
_CHUNK_FRAMES = 4


def _scanlines_from_pixels(pixels: np.ndarray, smooth_rows: int) -> np.ndarray:
    """sRGB bytes ``(..., rows, cols, 3)`` -> scanline Lab ``(..., rows, 3)``.

    The shared core of the single-frame and batched entry points: gamma
    decode by byte lookup, one fused RGB->XYZ/white matmul, the Lab cube
    root, one Lab-mixing matmul, column mean, box smooth.  Every step is
    elementwise, a per-row matmul, or a per-frame reduction/convolution, so
    batched and per-frame calls are bitwise identical.
    """
    rows, cols = pixels.shape[-3:-1]
    lead = pixels.shape[:-3]
    frames = int(np.prod(lead)) if lead else 1
    linear = np.take(_SRGB_BYTE_TO_LINEAR_F32, pixels.reshape(-1, 3))
    linear = linear.reshape(frames, rows * cols, 3)
    f_rows = np.empty((frames, rows, 3))
    col_weights = np.full(cols, 1.0 / cols, dtype=np.float32)
    # Frame-sized chunks keep the working set cache-resident; every kernel
    # is per-frame independent, so chunking cannot change a byte.
    for lo in range(0, frames, _CHUNK_FRAMES):
        hi = min(lo + _CHUNK_FRAMES, frames)
        ratios = linear[lo:hi].reshape(-1, 3) @ _RGB_TO_XYZ_RATIOS_F32
        f = np.cbrt(ratios)
        toe = ratios <= _LAB_TOE_THRESHOLD
        ratios *= _LAB_TOE_SCALE
        ratios += _LAB_TOE_OFFSET
        np.copyto(f, ratios, where=toe)
        f_rows[lo:hi] = np.einsum(
            "frck,c->frk", f.reshape(hi - lo, rows, cols, 3), col_weights
        )
    # Lab's channel mixing is linear, so it commutes with the column mean:
    # mix the (rows, 3) means instead of every pixel.
    scanlines = f_rows @ _LAB_BASIS
    scanlines += _LAB_OFFSET
    scanlines = scanlines.reshape(lead + (rows, 3))
    if smooth_rows > 1:
        kernel = np.ones(smooth_rows) / smooth_rows
        flat_scan = scanlines.reshape(-1, scanlines.shape[-2], 3)
        smoothed = np.empty_like(flat_scan)
        for index in range(flat_scan.shape[0]):
            for channel in range(3):
                smoothed[index, :, channel] = np.convolve(
                    flat_scan[index, :, channel], kernel, mode="same"
                )
        scanlines = smoothed.reshape(scanlines.shape)
    return scanlines


def frame_to_scanline_lab(
    frame: CapturedFrame, smooth_rows: int = 3
) -> np.ndarray:
    """Reduce a captured frame to per-scanline CIELab colors.

    Returns ``(rows, 3)`` — the mean (L, a, b) of each scanline.  Conversion
    happens per pixel *before* averaging (as the paper's receiver does), so
    the lightness non-uniformity is removed where it arises rather than
    being smeared into the mean.  A short box filter (``smooth_rows``)
    suppresses scanline-scale pipeline noise; it is narrow relative to the
    10-row minimum band width, so band edges stay sharp enough to segment.
    """
    return _scanlines_from_pixels(frame.pixels, smooth_rows)


def frames_to_scanline_lab(
    frames: Sequence[CapturedFrame], smooth_rows: int = 3
) -> List[np.ndarray]:
    """Batched :func:`frame_to_scanline_lab` over a same-shape recording.

    One stacked gamma-decode/XYZ/Lab/mean pass over all frames instead of a
    Python loop of per-frame passes; returns one ``(rows, 3)`` array per
    frame, bitwise identical to the per-frame results.  All frames must
    share a pixel shape (recordings do — fault injectors preserve shapes and
    only ever drop whole frames).
    """
    if not frames:
        return []
    shape = frames[0].pixels.shape
    for frame in frames:
        if frame.pixels.shape != shape:
            raise DemodulationError(
                f"frames_to_scanline_lab needs one shape, got {shape} "
                f"and {frame.pixels.shape}"
            )
    pixels = np.stack([frame.pixels for frame in frames])
    scanlines = _scanlines_from_pixels(pixels, smooth_rows)
    return [scanlines[i] for i in range(len(frames))]


def scanline_chroma(scanline_lab: np.ndarray) -> np.ndarray:
    """Drop the lightness channel: ``(rows, 3)`` Lab -> ``(rows, 2)`` ab."""
    scanline_lab = np.asarray(scanline_lab, dtype=float)
    if scanline_lab.ndim != 2 or scanline_lab.shape[1] != 3:
        raise DemodulationError(
            f"expected (rows, 3) Lab array, got {scanline_lab.shape}"
        )
    return scanline_lab[:, 1:]


def column_color_variance(
    pixels: np.ndarray, row_slice: slice, space: str = "lab"
) -> float:
    """Variance of per-pixel distance from a band's mean color (Fig 8b).

    Computes, for the pixels of one band (a row range), the variance of the
    Euclidean distance from each pixel's color to the band's mean color —
    in CIELab's ab-plane (``space='lab'``) or raw RGB (``space='rgb'``).
    The paper uses this to show CIELab absorbs brightness non-uniformity.
    """
    pixels = np.asarray(pixels)
    band = dequantize_8bit(pixels[row_slice])
    if band.size == 0:
        raise DemodulationError("row_slice selects an empty band")
    if space == "rgb":
        samples = band.reshape(-1, 3) * 255.0
    elif space == "lab":
        linear = srgb_to_linear(band)
        lab = xyz_to_lab(linear_rgb_to_xyz(linear))
        samples = lab.reshape(-1, 3)[:, 1:]
    else:
        raise DemodulationError(f"space must be 'rgb' or 'lab', got {space!r}")
    mean = samples.mean(axis=0)
    distances = np.sqrt(np.sum((samples - mean) ** 2, axis=1))
    return float(distances.var())
