"""Frame preprocessing: color-space conversion and dimension reduction.

Paper §7 steps 1-2: convert the received frame from RGB to CIELab (removing
the non-uniform brightness via the lightness channel) and collapse the 2-D
frame to one mean color per scanline to keep per-frame processing cheap on a
phone.
"""

from __future__ import annotations

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.camera.noise import dequantize_8bit
from repro.color.cielab import xyz_to_lab
from repro.color.srgb import srgb_to_linear
from repro.color.srgb import linear_rgb_to_xyz
from repro.exceptions import DemodulationError


def frame_to_scanline_lab(
    frame: CapturedFrame, smooth_rows: int = 3
) -> np.ndarray:
    """Reduce a captured frame to per-scanline CIELab colors.

    Returns ``(rows, 3)`` — the mean (L, a, b) of each scanline.  Conversion
    happens per pixel *before* averaging (as the paper's receiver does), so
    the lightness non-uniformity is removed where it arises rather than
    being smeared into the mean.  A short box filter (``smooth_rows``)
    suppresses scanline-scale pipeline noise; it is narrow relative to the
    10-row minimum band width, so band edges stay sharp enough to segment.
    """
    srgb = dequantize_8bit(frame.pixels)
    linear = srgb_to_linear(srgb)
    xyz = linear_rgb_to_xyz(linear)
    lab = xyz_to_lab(xyz)
    scanlines = lab.mean(axis=1)
    if smooth_rows > 1:
        kernel = np.ones(smooth_rows) / smooth_rows
        scanlines = np.stack(
            [
                np.convolve(scanlines[:, channel], kernel, mode="same")
                for channel in range(3)
            ],
            axis=1,
        )
    return scanlines


def scanline_chroma(scanline_lab: np.ndarray) -> np.ndarray:
    """Drop the lightness channel: ``(rows, 3)`` Lab -> ``(rows, 2)`` ab."""
    scanline_lab = np.asarray(scanline_lab, dtype=float)
    if scanline_lab.ndim != 2 or scanline_lab.shape[1] != 3:
        raise DemodulationError(
            f"expected (rows, 3) Lab array, got {scanline_lab.shape}"
        )
    return scanline_lab[:, 1:]


def column_color_variance(
    pixels: np.ndarray, row_slice: slice, space: str = "lab"
) -> float:
    """Variance of per-pixel distance from a band's mean color (Fig 8b).

    Computes, for the pixels of one band (a row range), the variance of the
    Euclidean distance from each pixel's color to the band's mean color —
    in CIELab's ab-plane (``space='lab'``) or raw RGB (``space='rgb'``).
    The paper uses this to show CIELab absorbs brightness non-uniformity.
    """
    pixels = np.asarray(pixels)
    band = dequantize_8bit(pixels[row_slice])
    if band.size == 0:
        raise DemodulationError("row_slice selects an empty band")
    if space == "rgb":
        samples = band.reshape(-1, 3) * 255.0
    elif space == "lab":
        linear = srgb_to_linear(band)
        lab = xyz_to_lab(linear_rgb_to_xyz(linear))
        samples = lab.reshape(-1, 3)[:, 1:]
    else:
        raise DemodulationError(f"space must be 'rgb' or 'lab', got {space!r}")
    mean = samples.mean(axis=0)
    distances = np.sqrt(np.sum((samples - mean) ** 2, axis=1))
    return float(distances.var())
