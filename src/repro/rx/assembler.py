"""Cross-frame packet assembly with inter-frame-gap erasure accounting.

A ColorBars packet is sized to one frame period plus one gap (paper §5), so
most packets straddle a frame boundary: a prefix arrives in frame *i*, a
burst of symbols vanishes in the gap, and the suffix arrives in frame
*i + 1*.  Because the receiver knows the frame timing, it knows *where* in
the packet the burst sits and *how many* symbols it swallowed — which turns
the loss into byte erasures at known positions for the Reed-Solomon decoder
(far stronger than treating them as unknown-position errors).

The assembler consumes the per-frame band streams and emits
:class:`ReceivedPacket` objects carrying the reconstructed codeword bytes
and their erasure positions, plus calibration events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.csk.demodulator import DecisionKind
from repro.exceptions import FramingError
from repro.packet.framing import (
    CALIBRATION_FLAG,
    DATA_FLAG,
    DELIMITER,
    PacketKind,
)
from repro.packet.packetizer import Packetizer
from repro.rx.detector import ReceivedBand
from repro.util.bitstream import bits_to_bytes, int_to_bits
from repro.util.validation import require_positive


@dataclass(frozen=True)
class StreamItem:
    """One element of the stitched symbol stream: a band or a loss marker.

    ``band`` is ``None`` for gap markers, in which case ``lost`` counts the
    symbols the inter-frame gap swallowed at this position.
    """

    band: Optional[ReceivedBand]
    lost: int = 0

    @property
    def is_gap(self) -> bool:
        return self.band is None

    def char(self) -> str:
        return "_" if self.is_gap else self.band.to_char()


@dataclass
class ReceivedPacket:
    """A reassembled data packet ready for FEC decoding."""

    codeword: bytes
    erasure_positions: List[int]
    header_bytes: int
    symbols_received: int
    symbols_erased: int
    complete: bool
    first_frame: int
    symbol_errors_vs_layout: int = 0


@dataclass
class CalibrationEvent:
    """A received calibration packet's measured colors.

    ``indices`` lists which constellation symbols were actually received —
    calibration symbols go out in index order, so surviving bands map to
    indices by position even when the inter-frame gap cut the packet.
    """

    indices: List[int]
    symbol_chroma: np.ndarray
    white_chroma: Optional[np.ndarray]
    frame_index: int

    @property
    def complete(self) -> bool:
        return len(self.indices) == self.symbol_chroma.shape[0]


@dataclass
class AssemblerStats:
    """Counters the receiver reports (packet accounting of §8)."""

    preambles_seen: int = 0
    data_packets_ok: int = 0
    data_packets_dropped_header: int = 0
    data_packets_dropped_size: int = 0
    calibration_packets_ok: int = 0
    calibration_packets_dropped: int = 0
    symbols_consumed: int = 0
    symbols_lost_in_gaps: int = 0
    gaps_inserted: int = 0
    max_gap_symbols: int = 0

    def reset_stream_counters(self) -> None:
        """Zero the per-pass stitching counters (kept across extract calls)."""
        self.symbols_consumed = 0
        self.symbols_lost_in_gaps = 0
        self.gaps_inserted = 0
        self.max_gap_symbols = 0


class PreambleScanner:
    """Greedy left-to-right preamble matcher, resumable across feeds.

    The batch matcher scans the whole stitched character stream once; this
    class is that same scan with an explicit cursor so a streaming receiver
    can resume it as new symbols arrive.  ``scan(chars, final=False)``
    *waits* (stops without deciding) at any position where the available
    suffix is still a proper prefix of a preamble skeleton — deciding there
    could contradict what the batch pass would conclude once the rest of the
    pattern arrived.  A ``final=True`` scan applies exact batch semantics
    (a partial prefix at end-of-stream is not a match), so the concatenated
    match list over any feed split equals the batch match list by
    construction.  Calibration is tried before data at every position,
    mirroring the batch matcher's priority.
    """

    def __init__(self, calibration: str, data: str) -> None:
        self.calibration = calibration
        self.data = data
        #: Cursor: every position before it has been decided.
        self.position = 0

    @staticmethod
    def _could_complete(chars: str, position: int, pattern: str) -> bool:
        """True if ``chars[position:]`` is a proper prefix of ``pattern``."""
        remaining = len(chars) - position
        return remaining < len(pattern) and pattern.startswith(chars[position:])

    def scan(self, chars: str, final: bool) -> List[tuple]:
        """Advance the cursor, returning newly decided ``(start, kind)``."""
        matches: List[tuple] = []
        position = self.position
        while position < len(chars):
            if not final and (
                self._could_complete(chars, position, self.calibration)
                or (
                    not chars.startswith(self.calibration, position)
                    and self._could_complete(chars, position, self.data)
                )
            ):
                break
            if chars.startswith(self.calibration, position):
                matches.append((position, PacketKind.CALIBRATION))
                position += len(self.calibration)
            elif chars.startswith(self.data, position):
                matches.append((position, PacketKind.DATA))
                position += len(self.data)
            else:
                position += 1
        self.position = position
        return matches


class PacketAssembler:
    """Stitches frames, locates packets, reconstructs codewords + erasures."""

    def __init__(self, packetizer: Packetizer, symbol_rate: float) -> None:
        require_positive(symbol_rate, "symbol_rate")
        self.packetizer = packetizer
        self.symbol_rate = float(symbol_rate)
        self.stats = AssemblerStats()

    # -- stream stitching ------------------------------------------------

    def stitch(
        self, per_frame_bands: Sequence[Sequence[ReceivedBand]]
    ) -> List[StreamItem]:
        """Merge per-frame band lists, inserting gap markers between frames.

        The number of symbols lost between two frames comes from band
        timing: consecutive received bands are one symbol period apart on
        air, so a larger time difference across a frame boundary means
        ``round(dt / T) - 1`` symbols vanished (gap plus any edge bands the
        segmenter discarded).
        """
        items: List[StreamItem] = []
        previous_band: Optional[ReceivedBand] = None
        for frame_bands in per_frame_bands:
            previous_band = self.stitch_into(items, frame_bands, previous_band)
        return items

    def stitch_into(
        self,
        items: List[StreamItem],
        frame_bands: Sequence[ReceivedBand],
        previous_band: Optional[ReceivedBand],
    ) -> Optional[ReceivedBand]:
        """Fold one frame's bands onto a stitched stream, in place.

        The incremental form of :meth:`stitch` (which is a fold over this
        method, so batch and streaming stitching cannot diverge): the caller
        carries ``previous_band`` across calls and gap markers are inserted
        exactly where the batch pass would put them.  Returns the new
        ``previous_band``.
        """
        period = 1.0 / self.symbol_rate
        for band in frame_bands:
            if previous_band is not None:
                dt = band.mid_time - previous_band.mid_time
                missing = int(round(dt / period)) - 1
                if missing > 0:
                    items.append(StreamItem(band=None, lost=missing))
                    self.stats.symbols_lost_in_gaps += missing
                    self.stats.gaps_inserted += 1
                    self.stats.max_gap_symbols = max(
                        self.stats.max_gap_symbols, missing
                    )
            items.append(StreamItem(band=band))
            self.stats.symbols_consumed += 1
            previous_band = band
        return previous_band

    # -- preamble matching -------------------------------------------------

    @staticmethod
    def _classify_char(item: StreamItem) -> str:
        """'o' for a dark band, 'x' for any lit band, '_' for a gap.

        Preambles are matched on the OFF-symbol *skeleton* only: the dark
        symbol is the one band class that is trivially reliable ("easily
        identified", §5), whereas the white bands between them can drift
        toward data colors under exposure/white-balance wander.  Since OFF
        appears nowhere outside preambles, the skeleton alone identifies
        them with negligible false-positive probability.
        """
        if item.is_gap:
            return "_"
        if item.band.decision.kind is DecisionKind.OFF:
            return "o"
        return "x"

    @staticmethod
    def _skeleton(pattern: str) -> str:
        """Map an o/w preamble string to its dark/lit skeleton."""
        return "".join("o" if c == "o" else "x" for c in pattern)

    def make_scanner(self) -> "PreambleScanner":
        """A fresh incremental scanner over this packetizer's skeletons."""
        return PreambleScanner(
            calibration=self._skeleton(DELIMITER + CALIBRATION_FLAG),
            data=self._skeleton(DELIMITER + DATA_FLAG),
        )

    def _find_preambles(self, chars: str) -> List[tuple]:
        return self.make_scanner().scan(chars, final=True)

    # -- packet extraction -------------------------------------------------

    def extract(
        self, items: List[StreamItem]
    ) -> tuple:
        """Locate packets in a stitched stream.

        Returns ``(packets, calibration_events)``.  Data packets whose
        header (size field) was damaged or whose advertised size is
        impossible are dropped, as the paper specifies.
        """
        chars = "".join(self._classify_char(item) for item in items)
        matches = self._find_preambles(chars)
        self.stats.preambles_seen += len(matches)

        packets: List[ReceivedPacket] = []
        calibrations: List[CalibrationEvent] = []
        for match_index, (start, kind) in enumerate(matches):
            limit = (
                matches[match_index + 1][0]
                if match_index + 1 < len(matches)
                else len(items)
            )
            result = self.extract_window(items, start, kind, limit)
            if result is None:
                continue
            if kind is PacketKind.CALIBRATION:
                calibrations.append(result)
            else:
                packets.append(result)
        return packets, calibrations

    def extract_window(
        self, items: List[StreamItem], start: int, kind: PacketKind, limit: int
    ):
        """Extract the one packet whose preamble matched at ``start``.

        The window runs from the preamble to ``limit`` (the next preamble's
        start, or the end of the stream).  Both the batch :meth:`extract`
        loop and the streaming receiver's codeword-close path call this, so
        per-window extraction cannot diverge between them.  Returns a
        :class:`ReceivedPacket`, a :class:`CalibrationEvent`, or ``None``
        for a dropped packet; stats are updated either way.
        """
        flag = DATA_FLAG if kind is PacketKind.DATA else CALIBRATION_FLAG
        body_start = start + len(DELIMITER) + len(flag)
        if kind is PacketKind.CALIBRATION:
            event = self._extract_calibration(items, body_start, limit)
            if event is None:
                self.stats.calibration_packets_dropped += 1
            else:
                self.stats.calibration_packets_ok += 1
            return event
        return self._extract_data(items, body_start, limit)

    def _anchor_time(self, items: List[StreamItem], body_start: int) -> float:
        """On-air time of the last preamble symbol before ``body_start``.

        Slot indices within a packet are derived from band timing relative
        to this anchor: cumulative gap *counts* can drift by a symbol across
        frame boundaries, but each band's own exposure-core time is accurate
        to a fraction of a symbol, so ``round(dt / T)`` indexes slots exactly.
        """
        anchor = items[body_start - 1]
        if anchor.is_gap:  # cannot happen for a matched preamble
            raise FramingError("preamble ended in a gap marker")
        return anchor.band.mid_time

    def _timed_slot(self, anchor_time: float, band_time: float) -> int:
        """Slot index (0-based after the anchor symbol) from band timing."""
        period = 1.0 / self.symbol_rate
        return int(round((band_time - anchor_time) / period)) - 1

    def _extract_calibration(
        self, items: List[StreamItem], body_start: int, limit: int
    ) -> Optional[CalibrationEvent]:
        """Collect calibration colors, tolerating a gap mid-packet.

        Calibration symbols go out in index order; each surviving band maps
        to its constellation index by its timing offset from the preamble.
        """
        order = self.packetizer.mapper.constellation.order
        anchor_time = self._anchor_time(items, body_start)
        indices: List[int] = []
        chroma_rows: List[np.ndarray] = []
        frame_index = -1
        position = body_start
        while position < limit and position < len(items):
            item = items[position]
            position += 1
            if item.is_gap:
                continue
            if item.band.decision.kind is DecisionKind.OFF:
                # Calibration symbols are constellation colors — all lit.  A
                # dark band here is a corrupted slot (occlusion, torn rows),
                # and absorbing its chroma would poison the calibration
                # table for the whole session; skip it like a gap.
                continue
            slot = self._timed_slot(anchor_time, item.band.mid_time)
            if slot >= order:
                break
            if slot < 0 or (indices and slot <= indices[-1]):
                continue
            if frame_index < 0:
                frame_index = item.band.frame_index
            indices.append(slot)
            chroma_rows.append(item.band.chroma)
        if not indices:
            return None
        chroma = np.stack(chroma_rows)
        # White reference: mean chroma of the flag's lit bands (the flag's
        # bright symbols are white by construction, whatever they decoded as).
        whites = [
            items[i].band.chroma
            for i in range(max(body_start - len(CALIBRATION_FLAG), 0), body_start)
            if not items[i].is_gap
            and items[i].band.decision.kind is not DecisionKind.OFF
        ]
        white = np.mean(whites, axis=0) if whites else None
        return CalibrationEvent(
            indices=indices,
            symbol_chroma=chroma,
            white_chroma=white,
            frame_index=frame_index,
        )

    def _extract_data(
        self, items: List[StreamItem], body_start: int, limit: int
    ) -> Optional[ReceivedPacket]:
        size_symbols = self.packetizer.config.size_field_symbols
        anchor_time = self._anchor_time(items, body_start)

        # Size field: the first `size_symbols` timed slots must all be
        # present, contiguous DATA bands — a header touched by the gap (or
        # demodulated as anything but data) drops the packet, per §5.
        size_slots = items[body_start : body_start + size_symbols]
        if (
            len(size_slots) < size_symbols
            or any(
                s.is_gap
                or s.band.decision.kind is not DecisionKind.DATA
                or s.band.decision.index is None
                for s in size_slots
            )
            or any(
                self._timed_slot(anchor_time, s.band.mid_time) != i
                for i, s in enumerate(size_slots)
            )
        ):
            self.stats.data_packets_dropped_header += 1
            return None

        bits: List[int] = []
        for slot in size_slots:
            bits.extend(
                int_to_bits(
                    self.packetizer.mapper.label_of_index(
                        slot.band.decision.index
                    ),
                    self.packetizer.bits_per_symbol,
                )
            )
        codeword_bytes = 0
        for bit in bits:
            codeword_bytes = (codeword_bytes << 1) | bit
        if codeword_bytes == 0 or codeword_bytes > self.packetizer.max_codeword_bytes:
            self.stats.data_packets_dropped_size += 1
            return None

        layout = self.packetizer.body_layout(codeword_bytes)
        slots_needed = len(layout)
        slot_decisions, symbols_received, symbols_erased, layout_errors = (
            self._collect_body_slots(
                items,
                body_start + size_symbols,
                limit,
                slots_needed,
                layout,
                anchor_time,
                size_symbols,
            )
        )
        codeword, erasures = self._slots_to_codeword(
            slot_decisions, layout, codeword_bytes
        )
        packet = ReceivedPacket(
            codeword=codeword,
            erasure_positions=erasures,
            header_bytes=codeword_bytes,
            symbols_received=symbols_received,
            symbols_erased=symbols_erased,
            complete=symbols_erased == 0,
            first_frame=size_slots[0].band.frame_index,
            symbol_errors_vs_layout=layout_errors,
        )
        self.stats.data_packets_ok += 1
        return packet

    def _collect_body_slots(
        self,
        items: List[StreamItem],
        start: int,
        limit: int,
        slots_needed: int,
        layout: List[bool],
        anchor_time: float,
        slot_offset: int,
    ) -> tuple:
        """Place received bands into body slots by their on-air timing.

        Each band's timed offset from the preamble anchor names its slot
        exactly (gap *counts* can drift by a symbol across frame boundaries;
        band core times cannot).  Slots no band landed on — the inter-frame
        burst — become erasures.  Returns ``(slot_values, received, erased,
        layout_errors)`` where a slot value is a data index (int), 'w' for a
        white, or ``None`` for an erasure; ``layout_errors`` counts received
        slots whose class contradicts the white/data layout.
        """
        slot_values: List[object] = [None] * slots_needed
        received = 0
        layout_errors = 0
        position = start
        while position < limit and position < len(items):
            item = items[position]
            position += 1
            if item.is_gap:
                continue
            slot = self._timed_slot(anchor_time, item.band.mid_time) - slot_offset
            if slot < 0:
                continue
            if slot >= slots_needed:
                break
            if slot_values[slot] is not None:
                layout_errors += 1
                continue
            decision = item.band.decision
            expected_white = layout[slot]
            if decision.kind is DecisionKind.WHITE:
                if not expected_white:
                    layout_errors += 1
                slot_values[slot] = "w"
            elif decision.kind is DecisionKind.DATA and decision.index is not None:
                if expected_white:
                    layout_errors += 1
                slot_values[slot] = decision.index
            else:
                # OFF inside a body: a corrupted slot, left as an erasure.
                continue
            received += 1
        erased = sum(1 for v in slot_values if v is None)
        return slot_values, received, erased, layout_errors

    def _slots_to_codeword(
        self,
        slot_values: List[object],
        layout: List[bool],
        codeword_bytes: int,
    ) -> tuple:
        """Strip whites by layout; map data slots to bytes with erasures."""
        bits_per_symbol = self.packetizer.bits_per_symbol
        bits: List[int] = []
        erased_bits: List[bool] = []
        for slot_index, is_white in enumerate(layout):
            value = slot_values[slot_index]
            if is_white:
                # Illumination slot: discard whatever arrived here.
                continue
            if value is None or value == "w":
                # Lost, corrupted, or misclassified-as-white data slot.
                bits.extend([0] * bits_per_symbol)
                erased_bits.extend([True] * bits_per_symbol)
            else:
                label = self.packetizer.mapper.label_of_index(int(value))
                bits.extend(int_to_bits(label, bits_per_symbol))
                erased_bits.extend([False] * bits_per_symbol)

        total_bits = codeword_bytes * 8
        bits = bits[:total_bits] + [0] * max(0, total_bits - len(bits))
        erased_bits = erased_bits[:total_bits] + [True] * max(
            0, total_bits - len(erased_bits)
        )
        codeword = bits_to_bytes(bits)
        erasures = sorted(
            {
                bit_index // 8
                for bit_index, erased in enumerate(erased_bits)
                if erased
            }
        )
        return codeword, erasures
