"""The ColorBars receiver chain (paper §7).

Per frame: convert to CIELab and drop lightness (step 1), reduce the 2-D
frame to one mean color per scanline (step 2), segment scanlines into color
bands and classify each band (symbol detection), then assemble packets
across frames — accounting for the symbols lost in each inter-frame gap —
and run Reed-Solomon decoding (step 3).
"""

from repro.rx.preprocess import (
    frame_to_scanline_lab,
    frames_to_scanline_lab,
    scanline_chroma,
)
from repro.rx.segmentation import Band, BandSegmenter
from repro.rx.detector import ReceivedBand, SymbolDetector
from repro.rx.assembler import PacketAssembler, ReceivedPacket, StreamItem
from repro.rx.receiver import ColorBarsReceiver, ReceiverReport

__all__ = [
    "frame_to_scanline_lab",
    "frames_to_scanline_lab",
    "scanline_chroma",
    "Band",
    "BandSegmenter",
    "ReceivedBand",
    "SymbolDetector",
    "PacketAssembler",
    "ReceivedPacket",
    "StreamItem",
    "ColorBarsReceiver",
    "ReceiverReport",
]
