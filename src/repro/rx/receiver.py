"""The complete ColorBars receiver: frames in, payload bytes out.

Composes the per-frame pipeline (preprocess -> segment -> detect) with the
cross-frame assembler, calibration handling, and Reed-Solomon decoding,
mirroring the paper's two-threaded phone app in a single deterministic
object.  Feed it the frames of a recording and it returns a
:class:`ReceiverReport` with the delivered payloads and every counter the
evaluation section needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.camera.frame import CapturedFrame
from repro.csk.calibration import CalibrationTable
from repro.csk.demodulator import CskDemodulator
from repro.exceptions import UncorrectableBlockError
from repro.fec.reed_solomon import ReedSolomonCodec
from repro.packet.packetizer import Packetizer
from repro.rx.assembler import PacketAssembler, ReceivedPacket
from repro.rx.detector import ReceivedBand, SymbolDetector
from repro.rx.preprocess import frame_to_scanline_lab
from repro.rx.segmentation import BandSegmenter


@dataclass
class ReceiverReport:
    """Everything a receiving session produced.

    ``payloads`` holds the k-byte payload of every successfully decoded
    packet, in arrival order.  The symbol/packet counters feed the SER,
    throughput and goodput metrics of §8.
    """

    payloads: List[bytes] = field(default_factory=list)
    packets_decoded: int = 0
    packets_failed_fec: int = 0
    packets_seen: int = 0
    calibration_updates: int = 0
    bands: List[ReceivedBand] = field(default_factory=list)
    frames_processed: int = 0
    symbols_detected: int = 0
    symbols_lost_in_gaps: int = 0

    @property
    def payload_bytes(self) -> int:
        return sum(len(p) for p in self.payloads)


class ColorBarsReceiver:
    """Frames -> payloads, with calibration and erasure-aware FEC.

    Parameters mirror the system configuration both ends share: the
    packetizer (constellation, mapper, illumination ratio), the RS codec
    dimensions, the symbol rate, and the sensor timing (for the band width).
    """

    def __init__(
        self,
        packetizer: Packetizer,
        codec: ReedSolomonCodec,
        symbol_rate: float,
        rows_per_symbol: float,
        calibration: Optional[CalibrationTable] = None,
        off_lightness: float = 12.0,
        boundary_delta_e: float = 9.0,
        edge_trim_fraction: float = 0.2,
        coring: str = "central",
        equalize: bool = False,
    ) -> None:
        self.packetizer = packetizer
        self.codec = codec
        self.symbol_rate = float(symbol_rate)
        self.calibration = (
            calibration
            if calibration is not None
            else CalibrationTable(packetizer.mapper.constellation)
        )
        self.demodulator = CskDemodulator(
            self.calibration, off_lightness=off_lightness
        )
        self.segmenter = BandSegmenter(
            rows_per_symbol=rows_per_symbol,
            boundary_delta_e=boundary_delta_e,
            off_lightness=off_lightness,
            edge_trim_fraction=edge_trim_fraction,
            coring=coring,
            allow_no_plateau=equalize,
        )
        self.detector = SymbolDetector(self.demodulator)
        self.assembler = PacketAssembler(packetizer, symbol_rate)
        #: ISI equalization: re-estimate band colors by exposure
        #: deconvolution (repro.rx.equalizer) before classification.
        self.equalize = equalize

    # -- the full pipeline ---------------------------------------------------

    def process_frames(
        self, frames: Sequence[CapturedFrame]
    ) -> ReceiverReport:
        """Run the complete receive chain over a recording.

        The frame sequence is processed twice when the receiver starts
        uncalibrated: a first pass in bootstrap mode only to find calibration
        packets (as a just-joined phone would wait for one), then the full
        demodulation pass.  An already-calibrated receiver decodes in one
        pass while still absorbing any new calibration packets it sees.
        """
        report = ReceiverReport()
        if not frames:
            return report

        if not self.calibration.is_calibrated:
            self._bootstrap_calibration(frames, report)
            if not self.calibration.is_calibrated:
                # Never saw a usable calibration packet: nothing decodable.
                report.frames_processed = len(frames)
                return report

        per_frame_bands = [self._detect_frame(frame) for frame in frames]
        report.frames_processed = len(frames)
        for bands in per_frame_bands:
            report.bands.extend(bands)
            report.symbols_detected += len(bands)

        items = self.assembler.stitch(per_frame_bands)
        packets, calibrations = self.assembler.extract(items)
        report.symbols_lost_in_gaps = self.assembler.stats.symbols_lost_in_gaps

        for event in calibrations:
            self.calibration.update_partial(
                event.indices, event.symbol_chroma, event.white_chroma
            )
            report.calibration_updates += 1

        for packet in packets:
            report.packets_seen += 1
            self._decode_packet(packet, report)
        return report

    # -- internals -------------------------------------------------------

    def _detect_frame(self, frame: CapturedFrame) -> List[ReceivedBand]:
        scanlines = frame_to_scanline_lab(frame)
        # Scanlines whose exposure window straddles a symbol boundary carry
        # mixed colors; the segmenter excludes that many rows per band.
        smear_rows = frame.exposure.exposure_s / frame.row_period
        bands = self.segmenter.segment(scanlines, smear_rows=smear_rows)
        if self.equalize and bands:
            from repro.rx.equalizer import deconvolve_frame

            bands = deconvolve_frame(frame, bands, smear_rows)
        return self.detector.detect(frame, bands)

    def _bootstrap_calibration(
        self, frames: Sequence[CapturedFrame], report: ReceiverReport
    ) -> None:
        """First pass: find calibration packets with the bootstrap detector."""
        per_frame_bands = [self._detect_frame(frame) for frame in frames]
        items = self.assembler.stitch(per_frame_bands)
        _, calibrations = self.assembler.extract(items)
        for event in calibrations:
            self.calibration.update_partial(
                event.indices, event.symbol_chroma, event.white_chroma
            )
            report.calibration_updates += 1
        # Reset assembler counters: the decode pass recounts from scratch.
        self.assembler.stats.symbols_lost_in_gaps = 0
        self.assembler.stats.symbols_consumed = 0

    def _decode_packet(
        self, packet: ReceivedPacket, report: ReceiverReport
    ) -> None:
        expected_n = self.codec.n
        if packet.header_bytes != expected_n:
            # Header advertises a codeword the shared config does not use:
            # treat as a corrupt header (paper: discard the packet).
            report.packets_failed_fec += 1
            return
        erasures = [p for p in packet.erasure_positions if p < expected_n]
        if len(erasures) > self.codec.num_parity:
            report.packets_failed_fec += 1
            return
        try:
            payload = self.codec.decode(packet.codeword, erasures)
        except UncorrectableBlockError:
            report.packets_failed_fec += 1
            return
        report.payloads.append(payload)
        report.packets_decoded += 1
