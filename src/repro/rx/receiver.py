"""The complete ColorBars receiver: frames in, payload bytes out.

Composes the per-frame pipeline (preprocess -> segment -> detect) with the
cross-frame assembler, calibration handling, and Reed-Solomon decoding,
mirroring the paper's two-threaded phone app in a single deterministic
object.  Feed it the frames of a recording and it returns a
:class:`ReceiverReport` with the delivered payloads and every counter the
evaluation section needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.color.cielab import JND_DELTA_E
from repro.csk.calibration import CalibrationTable
from repro.csk.demodulator import CskDemodulator
from repro.exceptions import ColorBarsError, FrameFailure, UncorrectableBlockError
from repro.fec.reed_solomon import ReedSolomonCodec
from repro.obs.metrics import NULL_METRICS
from repro.obs.schema import (
    M_CALIBRATION_REJECTED,
    M_CALIBRATION_UPDATES,
    M_FRAME_BANDS,
    M_FRAMES_FAILED,
    M_PACKET_ERASURES,
    M_PACKETS_DECODED,
    M_PACKETS_FAILED_FEC,
    M_PACKETS_SEEN,
    M_SYMBOLS_DETECTED,
    M_SYMBOLS_LOST,
    SPAN_ASSEMBLE,
    SPAN_CALIBRATE,
    SPAN_DEMOD,
    SPAN_FEC,
    SPAN_SEGMENT,
)
from repro.obs.trace import NULL_TRACER
from repro.packet.packetizer import Packetizer
from repro.rx.assembler import CalibrationEvent, PacketAssembler, ReceivedPacket
from repro.rx.detector import ReceivedBand, SymbolDetector
from repro.rx.preprocess import frame_to_scanline_lab, frames_to_scanline_lab
from repro.rx.segmentation import BandSegmenter


#: Reasons a packet can fail FEC, as recorded in :class:`FecFailure`.
FEC_HEADER_MISMATCH = "header-mismatch"
FEC_ERASURE_BUDGET = "erasure-budget"
FEC_UNCORRECTABLE = "uncorrectable"

#: Calibration credibility gates (see ``_credible_calibration``).  A genuine
#: calibration body is all saturated constellation colors, so a symbol chroma
#: within this distance of the packet's own white reference marks a misframed
#: data packet (whose body is mostly illumination whites).
CALIBRATION_WHITE_GUARD_DELTA_E = 4.0 * JND_DELTA_E
#: Largest affine-fit RMS misfit a credible calibration event may have.
#: Measured genuine events fit within ~9 JND across devices and CSK orders,
#: while misframed data bodies land beyond ~25 JND.
CALIBRATION_RESIDUAL_LIMIT_DELTA_E = 15.0 * JND_DELTA_E


@dataclass(frozen=True)
class FecFailure:
    """Why one seen packet failed to decode.

    Retains the detail the aggregate ``packets_failed_fec`` counter loses:
    a resilience sweep needs to distinguish erasure-budget exhaustion (too
    much known loss — more parity or less damage would fix it) from
    miscorrection (``uncorrectable``: noise beyond the code's capability).
    """

    first_frame: int
    reason: str
    erasures: int
    parity_budget: int
    message: str = ""


@dataclass
class ReceiverReport:
    """Everything a receiving session produced.

    ``payloads`` holds the k-byte payload of every successfully decoded
    packet, in arrival order.  The symbol/packet counters feed the SER,
    throughput and goodput metrics of §8.  ``frame_failures`` lists every
    frame whose pipeline raised and was contained (the session-never-dies
    contract); ``fec_failures`` retains why each failed packet failed.

    The ``calibration_symbol_*`` / ``*_symbols_seen`` counters are the raw
    material of the channel-quality estimates (``ser_estimate``,
    ``delta_e_margin``, ``erasure_fraction``) that the link-adaptation
    controller consumes (:mod:`repro.link.adapt`); they are filled by the
    same shared internals in batch and streaming execution, so the two
    shapes report identical channel quality.
    """

    payloads: List[bytes] = field(default_factory=list)
    packets_decoded: int = 0
    packets_failed_fec: int = 0
    packets_seen: int = 0
    calibration_updates: int = 0
    calibration_rejected: int = 0
    bands: List[ReceivedBand] = field(default_factory=list)
    frames_processed: int = 0
    symbols_detected: int = 0
    symbols_lost_in_gaps: int = 0
    frame_failures: List[FrameFailure] = field(default_factory=list)
    fec_failures: List[FecFailure] = field(default_factory=list)
    #: Calibration symbols matched against an already-calibrated table, and
    #: how many matched the wrong index — a ground-truth SER probe, since
    #: calibration packets carry the constellation in known index order.
    calibration_symbols_seen: int = 0
    calibration_symbol_errors: int = 0
    #: Codeword symbols (bytes) of packets passing the header check, and how
    #: many of those positions the gaps erased.
    codeword_symbols_seen: int = 0
    erasure_symbols_seen: int = 0

    @property
    def payload_bytes(self) -> int:
        return sum(len(p) for p in self.payloads)

    @property
    def frames_failed(self) -> int:
        return len(self.frame_failures)

    # -- channel-quality estimates (None = undefined, never 0) ------------

    @property
    def ser_estimate(self) -> Optional[float]:
        """Symbol-error-rate proxy from calibration symbols.

        Calibration packets transmit the constellation in index order, so
        each received calibration symbol has a known ground-truth index;
        the fraction whose nearest reference disagrees is a direct SER
        measurement on known data.  ``None`` until at least one calibration
        packet was matched against a calibrated table.
        """
        if self.calibration_symbols_seen == 0:
            return None
        return self.calibration_symbol_errors / self.calibration_symbols_seen

    @property
    def delta_e_margin(self) -> Optional[float]:
        """Mean ΔE margin to the runner-up reference over lit decisions.

        Aggregates :attr:`~repro.csk.demodulator.SymbolDecision.margin`
        across every decision that has one.  ``None`` when no lit band was
        ever matched — notably the all-dark short-circuit path (occlusion,
        gap-straddling frames), where the margin is *undefined*, not zero.
        """
        total = 0.0
        count = 0
        for band in self.bands:
            gap = band.decision.margin
            if gap is not None:
                total += gap
                count += 1
        if count == 0:
            return None
        return total / count

    @property
    def erasure_fraction(self) -> Optional[float]:
        """Fraction of codeword symbol positions lost to gaps/erasures.

        ``None`` until at least one packet passed the header check.
        """
        if self.codeword_symbols_seen == 0:
            return None
        return self.erasure_symbols_seen / self.codeword_symbols_seen

    def fec_failures_by_reason(self) -> dict:
        """``{reason: count}`` over every recorded FEC failure."""
        counts: dict = {}
        for failure in self.fec_failures:
            counts[failure.reason] = counts.get(failure.reason, 0) + 1
        return counts


@dataclass
class _SegmentedFrame:
    """One frame's calibration-independent pipeline state, computed once.

    Either ``bands`` (the pre-detect segmentation, possibly empty) or
    ``failure`` (the contained pre-detect error) is set.  Both passes of
    :meth:`ColorBarsReceiver.process_frames` classify from this record
    instead of re-running preprocess/segment.
    """

    frame: CapturedFrame
    bands: list = field(default_factory=list)
    failure: Optional[FrameFailure] = None


class ColorBarsReceiver:
    """Frames -> payloads, with calibration and erasure-aware FEC.

    Parameters mirror the system configuration both ends share: the
    packetizer (constellation, mapper, illumination ratio), the RS codec
    dimensions, the symbol rate, and the sensor timing (for the band width).
    """

    def __init__(
        self,
        packetizer: Packetizer,
        codec: ReedSolomonCodec,
        symbol_rate: float,
        rows_per_symbol: float,
        calibration: Optional[CalibrationTable] = None,
        off_lightness: float = 12.0,
        boundary_delta_e: float = 9.0,
        edge_trim_fraction: float = 0.2,
        coring: str = "central",
        equalize: bool = False,
        tracer=None,
        metrics=None,
    ) -> None:
        self.packetizer = packetizer
        self.codec = codec
        #: Injected observability (see :mod:`repro.obs`); the no-op
        #: defaults keep every span/counter call on the fast path.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.symbol_rate = float(symbol_rate)
        self.calibration = (
            calibration
            if calibration is not None
            else CalibrationTable(packetizer.mapper.constellation)
        )
        self.demodulator = CskDemodulator(
            self.calibration, off_lightness=off_lightness
        )
        self.segmenter = BandSegmenter(
            rows_per_symbol=rows_per_symbol,
            boundary_delta_e=boundary_delta_e,
            off_lightness=off_lightness,
            edge_trim_fraction=edge_trim_fraction,
            coring=coring,
            allow_no_plateau=equalize,
        )
        self.detector = SymbolDetector(self.demodulator)
        self.assembler = PacketAssembler(packetizer, symbol_rate)
        #: ISI equalization: re-estimate band colors by exposure
        #: deconvolution (repro.rx.equalizer) before classification.
        self.equalize = equalize

    # -- the full pipeline ---------------------------------------------------

    def process_frames(
        self, frames: Sequence[CapturedFrame]
    ) -> ReceiverReport:
        """Run the complete receive chain over a recording.

        The frame sequence is processed twice when the receiver starts
        uncalibrated: a first pass in bootstrap mode only to find calibration
        packets (as a just-joined phone would wait for one), then the full
        demodulation pass.  An already-calibrated receiver decodes in one
        pass while still absorbing any new calibration packets it sees.

        Only classification depends on the calibration state, so the
        calibration-independent front half of the pipeline (preprocess ->
        segment -> equalize) runs once per frame and is reused by both
        passes — it dominates decode time, and recomputing it cannot change
        any output.
        """
        report = ReceiverReport()
        if not frames:
            return report

        scanlines = self._preprocess_recording(frames)
        segmented = []
        for frame, lab in zip(frames, scanlines):
            with self.tracer.span(SPAN_SEGMENT, frame=frame.index):
                segmented.append(self._segment_frame(frame, scanlines=lab))
        return self._process_segmented(segmented, report)

    def _preprocess_recording(
        self, frames: Sequence[CapturedFrame]
    ) -> List[Optional[np.ndarray]]:
        """Batched sRGB -> scanline-Lab over same-shape groups of frames.

        Whole recordings share one pixel shape, so preprocessing runs as a
        single stacked pass (bitwise identical to per-frame conversion).
        Frames in a group whose batched conversion raises — or mixed-shape
        inputs — fall back to ``None`` entries, which ``_segment_frame``
        preprocesses individually under its per-frame containment.
        """
        results: List[Optional[np.ndarray]] = [None] * len(frames)
        groups: dict = {}
        for position, frame in enumerate(frames):
            groups.setdefault(frame.pixels.shape, []).append(position)
        for positions in groups.values():
            try:
                labs = frames_to_scanline_lab([frames[p] for p in positions])
            except ColorBarsError:
                continue
            for position, lab in zip(positions, labs):
                results[position] = lab
        return results

    def _process_segmented(
        self,
        segmented: Sequence["_SegmentedFrame"],
        report: ReceiverReport,
        collect: Optional[list] = None,
    ) -> ReceiverReport:
        """Everything after segmentation: bootstrap, classify, assemble, FEC.

        Shared verbatim by :meth:`process_frames` and the buffered-bootstrap
        path of :class:`repro.rx.streaming.StreamingReceiver` (which must
        replay the non-causal bootstrap pass at ``finish()``), so the two
        cannot diverge.  ``collect``, when given, receives one
        ``(packet, outcome)`` tuple per seen packet — ``outcome`` is the
        decoded payload bytes or the :class:`FecFailure` — for callers that
        need per-packet events on top of the aggregate report.
        """
        if not self.calibration.is_calibrated:
            with self.tracer.span(SPAN_CALIBRATE) as span:
                self._bootstrap_calibration(segmented, report)
                span.set("calibrated", self.calibration.is_calibrated)
                span.set("updates", report.calibration_updates)
            if not self.calibration.is_calibrated:
                # Never saw a usable calibration packet: nothing decodable.
                report.frames_processed = len(segmented)
                self._record_report_metrics(report)
                return report

        with self.tracer.span(SPAN_DEMOD) as span:
            per_frame_bands = [
                self._classify_frame(seg, report.frame_failures)
                for seg in segmented
            ]
            report.frames_processed = len(segmented)
            bands_histogram = self.metrics.histogram(M_FRAME_BANDS)
            for bands in per_frame_bands:
                report.bands.extend(bands)
                report.symbols_detected += len(bands)
                bands_histogram.observe(len(bands))
            span.set("symbols", report.symbols_detected)
            span.set("frames_failed", report.frames_failed)

        with self.tracer.span(SPAN_ASSEMBLE) as span:
            items = self.assembler.stitch(per_frame_bands)
            packets, calibrations = self.assembler.extract(items)
            report.symbols_lost_in_gaps = (
                self.assembler.stats.symbols_lost_in_gaps
            )
            span.set("packets", len(packets))
            span.set("calibrations", len(calibrations))
            span.set("symbols_lost_in_gaps", report.symbols_lost_in_gaps)

        self._absorb_calibrations(calibrations, report)

        with self.tracer.span(SPAN_FEC) as span:
            erasure_histogram = self.metrics.histogram(M_PACKET_ERASURES)
            for packet in packets:
                report.packets_seen += 1
                erasure_histogram.observe(len(packet.erasure_positions))
                outcome = self._decode_packet(packet, report)
                if collect is not None:
                    collect.append((packet, outcome))
            span.set("decoded", report.packets_decoded)
            span.set("failed", report.packets_failed_fec)
        self._record_report_metrics(report)
        return report

    # -- internals -------------------------------------------------------

    def _record_report_metrics(self, report: ReceiverReport) -> None:
        """Fold one session's report into the injected metrics registry."""
        metrics = self.metrics
        metrics.counter(M_FRAMES_FAILED).inc(report.frames_failed)
        metrics.counter(M_SYMBOLS_DETECTED).inc(report.symbols_detected)
        metrics.counter(M_SYMBOLS_LOST).inc(report.symbols_lost_in_gaps)
        metrics.counter(M_PACKETS_SEEN).inc(report.packets_seen)
        metrics.counter(M_PACKETS_DECODED).inc(report.packets_decoded)
        metrics.counter(M_PACKETS_FAILED_FEC).inc(report.packets_failed_fec)
        metrics.counter(M_CALIBRATION_UPDATES).inc(report.calibration_updates)
        metrics.counter(M_CALIBRATION_REJECTED).inc(report.calibration_rejected)

    def _detect_frame(
        self,
        frame: CapturedFrame,
        failures: Optional[List[FrameFailure]] = None,
    ) -> List[ReceivedBand]:
        """One frame through preprocess -> segment -> detect, with containment.

        Any :class:`ColorBarsError` a stage raises is converted into a
        :class:`FrameFailure` on ``failures`` (when given) and the frame
        yields no bands — downstream, the assembler's timing-based stitching
        then treats it exactly like a full inter-frame gap, so one bad frame
        can never abort the session.
        """
        return self._classify_frame(self._segment_frame(frame), failures)

    def _segment_frame(
        self,
        frame: CapturedFrame,
        scanlines: Optional[np.ndarray] = None,
    ) -> "_SegmentedFrame":
        """The calibration-independent front half: preprocess -> segment.

        Deterministic in the frame alone, so its result is computed once and
        shared by the bootstrap and decode passes.  A contained failure is
        carried in the returned record; it is reported when (and only when)
        a pass that records failures consumes it.

        ``scanlines`` accepts the frame's precomputed scanline Lab from the
        batched recording pass; ``None`` (the streaming receiver's per-frame
        path, or a batched-pass fallback) converts here.
        """
        stage = "preprocess"
        try:
            if scanlines is None:
                scanlines = frame_to_scanline_lab(frame)
            # Scanlines whose exposure window straddles a symbol boundary
            # carry mixed colors; the segmenter excludes that many rows per
            # band.
            smear_rows = frame.exposure.exposure_s / frame.row_period
            stage = "segment"
            bands = self.segmenter.segment(scanlines, smear_rows=smear_rows)
            if self.equalize and bands:
                from repro.rx.equalizer import deconvolve_frame

                stage = "equalize"
                bands = deconvolve_frame(
                    frame,
                    bands,
                    smear_rows,
                    preserve_dark_below=self.demodulator.off_lightness,
                )
            return _SegmentedFrame(frame=frame, bands=bands)
        except ColorBarsError as exc:
            return _SegmentedFrame(
                frame=frame,
                failure=FrameFailure(
                    frame_index=frame.index,
                    stage=stage,
                    error_type=type(exc).__name__,
                    message=str(exc),
                ),
            )

    def _classify_frame(
        self,
        segmented: "_SegmentedFrame",
        failures: Optional[List[FrameFailure]] = None,
    ) -> List[ReceivedBand]:
        """The calibration-dependent back half: detect, with containment."""
        if segmented.failure is not None:
            if failures is not None:
                failures.append(segmented.failure)
            return []
        try:
            return self.detector.detect(segmented.frame, segmented.bands)
        except ColorBarsError as exc:
            if failures is not None:
                failures.append(
                    FrameFailure(
                        frame_index=segmented.frame.index,
                        stage="detect",
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                )
            return []

    def _bootstrap_calibration(
        self, segmented: Sequence["_SegmentedFrame"], report: ReceiverReport
    ) -> None:
        """First pass: find calibration packets with the bootstrap detector."""
        per_frame_bands = [self._classify_frame(seg) for seg in segmented]
        items = self.assembler.stitch(per_frame_bands)
        _, calibrations = self.assembler.extract(items)
        self._absorb_calibrations(calibrations, report)
        # Reset assembler counters: the decode pass recounts from scratch.
        self.assembler.stats.reset_stream_counters()

    def _absorb_calibrations(
        self, events: Sequence[CalibrationEvent], report: ReceiverReport
    ) -> None:
        """Fold credible calibration events into the table, count the rest.

        Credible events are also scored *before* they update the table:
        their symbols carry known ground-truth indices, so matching them
        against the current references measures the symbol error rate the
        channel is actually producing (``report.ser_estimate``).
        """
        for event in events:
            if not self._credible_calibration(event):
                report.calibration_rejected += 1
                continue
            if self.calibration.is_calibrated and len(event.indices) > 0:
                matched, _ = self.calibration.match(event.symbol_chroma)
                expected = np.asarray(list(event.indices))
                report.calibration_symbols_seen += len(event.indices)
                report.calibration_symbol_errors += int(
                    np.count_nonzero(matched != expected)
                )
            self.calibration.update_partial(
                event.indices, event.symbol_chroma, event.white_chroma
            )
            report.calibration_updates += 1

    def _credible_calibration(self, event: CalibrationEvent) -> bool:
        """Gate a calibration event before it can poison the table.

        Localized damage (occlusion, torn scanlines) can darken one band of
        a data preamble, mutating its OFF skeleton into the calibration
        skeleton — the data body then arrives here disguised as calibration
        colors, and absorbing it would corrupt every reference for the rest
        of the session.  Two physical checks expose the disguise: a genuine
        body never contains white-like chroma, and its colors must fit the
        affine chromaticity model the table itself extrapolates with.
        """
        if event.white_chroma is not None and len(event.indices) > 0:
            white_gap = np.sqrt(
                np.sum(
                    (event.symbol_chroma - event.white_chroma) ** 2, axis=1
                )
            )
            if bool(np.any(white_gap < CALIBRATION_WHITE_GUARD_DELTA_E)):
                return False
        residual = self.calibration.affine_residual(
            event.indices, event.symbol_chroma
        )
        return residual is None or residual <= CALIBRATION_RESIDUAL_LIMIT_DELTA_E

    def _decode_packet(self, packet: ReceivedPacket, report: ReceiverReport):
        """Decode one packet into ``report``; return the per-packet outcome.

        The outcome — the decoded payload ``bytes`` on success, the recorded
        :class:`FecFailure` otherwise — lets the streaming facade emit a
        packet event without re-deriving what happened from counter deltas.
        """
        expected_n = self.codec.n
        parity = self.codec.num_parity

        def fail(reason: str, erasure_count: int, message: str = "") -> FecFailure:
            failure = FecFailure(
                first_frame=packet.first_frame,
                reason=reason,
                erasures=erasure_count,
                parity_budget=parity,
                message=message,
            )
            report.packets_failed_fec += 1
            report.fec_failures.append(failure)
            return failure

        if packet.header_bytes != expected_n:
            # Header advertises a codeword the shared config does not use:
            # treat as a corrupt header (paper: discard the packet).
            return fail(
                FEC_HEADER_MISMATCH,
                len(packet.erasure_positions),
                f"header advertises n={packet.header_bytes}, codec n={expected_n}",
            )
        erasures = [p for p in packet.erasure_positions if p < expected_n]
        report.codeword_symbols_seen += expected_n
        report.erasure_symbols_seen += len(erasures)
        if len(erasures) > parity:
            return fail(
                FEC_ERASURE_BUDGET,
                len(erasures),
                f"{len(erasures)} erasures exceed parity budget {parity}",
            )
        try:
            payload = self.codec.decode(packet.codeword, erasures)
        except UncorrectableBlockError as exc:
            return fail(FEC_UNCORRECTABLE, len(erasures), str(exc))
        report.payloads.append(payload)
        report.packets_decoded += 1
        return payload
