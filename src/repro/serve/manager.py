"""The resilient session manager: thousands of receivers, none fatal.

:class:`SessionManager` multiplexes concurrent
:class:`~repro.rx.streaming.StreamingReceiver` sessions behind explicit
robustness contracts, mirroring the resilient sweep runtime (PR 4) one
level up — what :class:`~repro.exceptions.CellFailure` is to a sweep cell,
:class:`~repro.exceptions.SessionFailure` is to a session:

* **Admission control** — a hard ``max_sessions`` cap; refusals are
  structured (:class:`~repro.exceptions.AdmissionError` with a stable
  ``reason`` token) and counted, never silent.
* **Backpressure** — each session's frame queue is bounded by count and by
  bytes; overflow follows the configured policy (``drop-oldest`` sheds the
  stalest frame and admits the new one, ``reject`` refuses the new one).
  Either way the cap holds: queue depth and buffered bytes can never
  exceed configuration, no matter how fast producers push.
* **Idle eviction** — sessions silent longer than ``idle_timeout_s`` are
  flushed and retired, so abandoned producers cannot pin memory.  Time is
  an injectable monotonic clock, so eviction is deterministic under test.
* **Quarantine** — a session whose frames keep failing (``poison``), or
  whose receiver raises outright (``error``), is contained: its queue is
  discarded, a :class:`SessionFailure` is recorded, and every other
  session keeps decoding.  The manager itself never dies.
* **Link adaptation** — with a ``make_controller`` factory, each session
  carries a :class:`~repro.link.adapt.LinkAdaptationController` fed one
  channel-quality window per packet boundary; decisions are recorded as
  ``adapt-decision`` spans and ``colorbars.adapt.*`` metrics.  Quarantine
  becomes the *last* rung: a failure streak first forces a downshift
  (counted as an averted quarantine) and only quarantines — with cause
  ``channel`` — once the ladder is exhausted or the controller itself
  gives up.

Per-session spans and admitted/rejected/evicted/quarantined counters and
queue-depth gauges thread through :mod:`repro.obs` (see
``docs/METRICS.md``); the no-op defaults keep the hot path clean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import (
    AdmissionError,
    ColorBarsError,
    ConfigurationError,
    SessionFailure,
    SessionStateError,
)
from repro.link.adapt import ACTION_QUARANTINE, WindowStats
from repro.obs.metrics import NULL_METRICS
from repro.obs.schema import (
    M_ADAPT_QUARANTINES_AVERTED,
    SPAN_ADAPT_DECISION,
    M_SESSION_FRAMES_DROPPED,
    M_SESSION_QUEUE_PEAK,
    M_SESSIONS_ACTIVE,
    M_SESSIONS_ADMITTED,
    M_SESSIONS_CLOSED,
    M_SESSIONS_EVICTED,
    M_SESSIONS_QUARANTINED,
    M_SESSIONS_REJECTED,
    SPAN_SERVE_CLOSE,
    SPAN_SERVE_PUMP,
)
from repro.obs.trace import NULL_TRACER
from repro.rx.streaming import StreamingReceiver
from repro.serve.session import (
    STATE_ACTIVE,
    STATE_CLOSED,
    STATE_EVICTED,
    STATE_QUARANTINED,
    ReceiverSession,
    frame_cost_bytes,
)

#: Backpressure policies for a full session queue.
BACKPRESSURE_DROP_OLDEST = "drop-oldest"
BACKPRESSURE_REJECT = "reject"
BACKPRESSURE_POLICIES = (BACKPRESSURE_DROP_OLDEST, BACKPRESSURE_REJECT)

#: Admission refusal reasons (:class:`AdmissionError` ``reason`` tokens).
REJECT_CAPACITY = "capacity"
REJECT_DUPLICATE = "duplicate"

#: Quarantine causes (``SessionFailure.cause`` tokens): ``poison`` (frame
#: failure streak, no controller or ladder exhausted), ``error`` (receiver
#: raised), ``channel`` (the adaptation controller recommended quarantine).
CAUSE_POISON = "poison"
CAUSE_ERROR = "error"
CAUSE_CHANNEL = "channel"

#: ``submit_frame`` outcomes.
SUBMIT_ACCEPTED = "accepted"
SUBMIT_DROPPED_OLDEST = "accepted-dropped-oldest"
SUBMIT_REJECTED_FULL = "rejected-full"
SUBMIT_DROPPED_QUARANTINED = "dropped-quarantined"


@dataclass(frozen=True)
class ServePolicy:
    """Robustness knobs of the session service (all caps are hard caps)."""

    #: Admitted-and-active sessions the manager will hold at once.
    max_sessions: Optional[int] = 1024
    #: Frames one session may have queued (count cap).
    max_queued_frames: int = 64
    #: Bytes one session may have queued (memory cap); ``None`` = count-only.
    max_queued_bytes: Optional[int] = None
    #: What to do with a frame submitted to a full queue.
    backpressure: str = BACKPRESSURE_DROP_OLDEST
    #: Evict sessions silent this long (seconds); ``None`` = never.
    idle_timeout_s: Optional[float] = None
    #: Consecutive contained per-frame failures before quarantine.
    quarantine_after: int = 8

    def validate(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1 or None, got {self.max_sessions}"
            )
        if self.max_queued_frames < 1:
            raise ConfigurationError(
                f"max_queued_frames must be >= 1, got {self.max_queued_frames}"
            )
        if self.max_queued_bytes is not None and self.max_queued_bytes < 1:
            raise ConfigurationError(
                f"max_queued_bytes must be >= 1 or None, got "
                f"{self.max_queued_bytes}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ConfigurationError(
                f"idle_timeout_s must be positive or None, got "
                f"{self.idle_timeout_s}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )


class SessionManager:
    """Admit, feed, supervise and retire streaming receiver sessions.

    ``make_streaming`` builds the session's receiver from its id (most
    deployments ignore the id — every phone shares the link config).
    ``clock`` is a monotonic-seconds callable used only for idle
    accounting; inject a virtual clock for deterministic eviction tests.
    """

    def __init__(
        self,
        make_streaming: Callable[[str], StreamingReceiver],
        policy: Optional[ServePolicy] = None,
        tracer=None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        make_controller: Optional[Callable[[str], object]] = None,
    ) -> None:
        self.make_streaming = make_streaming
        #: Optional per-session link-adaptation controller factory
        #: (session id -> :class:`~repro.link.adapt.LinkAdaptationController`).
        #: ``None`` keeps the pre-adaptation behavior exactly.
        self.make_controller = make_controller
        self.policy = policy if policy is not None else ServePolicy()
        self.policy.validate()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.clock = clock
        #: Every session ever admitted, by id, in admission order.  Retired
        #: sessions stay retrievable; only active ones count against caps.
        self.sessions: Dict[str, ReceiverSession] = {}
        #: Quarantine records, in occurrence order (the degraded signal).
        self.failures: List[SessionFailure] = []
        self.rejections = 0
        self._active = 0
        self._peak_queue_depth = 0

    # -- admission -------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return self._active

    @property
    def peak_queue_depth(self) -> int:
        return self._peak_queue_depth

    @property
    def degraded(self) -> bool:
        """True once any session has been quarantined."""
        return bool(self.failures)

    def failure_summary(self) -> str:
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.cause] = counts.get(failure.cause, 0) + 1
        inner = ", ".join(
            f"{cause}: {count}" for cause, count in sorted(counts.items())
        )
        return f"{len(self.failures)} session(s) quarantined ({inner})"

    def open_session(self, session_id: str) -> ReceiverSession:
        """Admit a session or refuse with a structured reason."""
        policy = self.policy
        if session_id in self.sessions:
            self.rejections += 1
            self.metrics.counter(M_SESSIONS_REJECTED).inc()
            raise AdmissionError(
                REJECT_DUPLICATE,
                f"session id {session_id!r} already admitted "
                f"({self.sessions[session_id].state})",
            )
        if policy.max_sessions is not None and self._active >= policy.max_sessions:
            self.rejections += 1
            self.metrics.counter(M_SESSIONS_REJECTED).inc()
            raise AdmissionError(
                REJECT_CAPACITY,
                f"at capacity: {self._active} active session(s) of "
                f"{policy.max_sessions} allowed",
            )
        controller = (
            self.make_controller(session_id)
            if self.make_controller is not None
            else None
        )
        if controller is not None and controller.metrics is NULL_METRICS:
            # A factory that did not wire metrics inherits the manager's,
            # so adapt decisions land in the same registry as session ones.
            controller.metrics = self.metrics
        session = ReceiverSession(
            session_id,
            self.make_streaming(session_id),
            self.clock(),
            controller=controller,
        )
        self.sessions[session_id] = session
        self._active += 1
        self.metrics.counter(M_SESSIONS_ADMITTED).inc()
        self.metrics.gauge(M_SESSIONS_ACTIVE).set(self._active)
        return session

    def get(self, session_id: str) -> ReceiverSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise SessionStateError(
                f"unknown session id {session_id!r}"
            ) from None

    # -- backpressure ----------------------------------------------------

    def submit_frame(self, session_id: str, frame) -> str:
        """Queue one frame; returns a ``SUBMIT_*`` outcome token.

        The queue caps are enforced *here*, at the producer edge: after
        this call the session's queue depth and buffered bytes are within
        policy, whichever backpressure mode is configured.
        """
        session = self.get(session_id)
        if session.state == STATE_QUARANTINED:
            # Producer has not noticed the quarantine yet; shed quietly.
            session.frames_dropped += 1
            self.metrics.counter(M_SESSION_FRAMES_DROPPED).inc()
            return SUBMIT_DROPPED_QUARANTINED
        if not session.is_active:
            raise SessionStateError(
                f"session {session_id!r} is {session.state}: "
                "no further frames accepted"
            )
        policy = self.policy
        cost = frame_cost_bytes(frame)
        dropped_any = False
        while session.queue and self._over_caps(session, cost):
            if policy.backpressure == BACKPRESSURE_REJECT:
                session.frames_dropped += 1
                self.metrics.counter(M_SESSION_FRAMES_DROPPED).inc()
                return SUBMIT_REJECTED_FULL
            session.drop_oldest()
            self.metrics.counter(M_SESSION_FRAMES_DROPPED).inc()
            dropped_any = True
        if self._over_caps(session, cost):
            # Queue already empty: this one frame alone busts the byte cap.
            session.frames_dropped += 1
            self.metrics.counter(M_SESSION_FRAMES_DROPPED).inc()
            return SUBMIT_REJECTED_FULL
        session.enqueue(frame, cost)
        session.last_activity = self.clock()
        self._peak_queue_depth = max(
            self._peak_queue_depth, session.queue_depth
        )
        self.metrics.gauge(M_SESSION_QUEUE_PEAK).set(self._peak_queue_depth)
        return SUBMIT_DROPPED_OLDEST if dropped_any else SUBMIT_ACCEPTED

    def _over_caps(self, session: ReceiverSession, incoming_cost: int) -> bool:
        policy = self.policy
        if session.queue_depth + 1 > policy.max_queued_frames:
            return True
        if policy.max_queued_bytes is None:
            return False
        return session.queued_bytes + incoming_cost > policy.max_queued_bytes

    # -- pumping ---------------------------------------------------------

    def pump(self, max_frames_per_session: Optional[int] = None) -> int:
        """Feed every active session's queued frames; returns frames fed.

        Failures are contained per session: a quarantine removes one
        session from rotation and the pass continues with the rest.
        """
        fed = 0
        with self.tracer.span(SPAN_SERVE_PUMP) as span:
            quarantined_before = len(self.failures)
            for session in list(self.sessions.values()):
                if session.is_active:
                    fed += self._pump_session(session, max_frames_per_session)
            span.set("frames", fed)
            span.set("sessions", self._active)
            span.set(
                "quarantined", len(self.failures) - quarantined_before
            )
        return fed

    def _pump_session(
        self, session: ReceiverSession, budget: Optional[int]
    ) -> int:
        fed = 0
        streaming = session.streaming
        while session.queue and (budget is None or fed < budget):
            frame = session.dequeue()
            failures_before = streaming.failures_contained
            try:
                events = streaming.feed(frame)
            except ColorBarsError as exc:
                # feed() contains per-frame pipeline errors itself; one
                # escaping means the receiver cannot continue at all.
                self._quarantine(session, CAUSE_ERROR, type(exc).__name__, str(exc))
                break
            except Exception as exc:
                self._quarantine(session, CAUSE_ERROR, type(exc).__name__, str(exc))
                break
            fed += 1
            session.frames_processed += 1
            session.events.extend(events)
            session.last_activity = self.clock()
            if events and session.controller is not None:
                if not self._observe_window(session):
                    break
            if streaming.failures_contained > failures_before:
                session.consecutive_failures += 1
                if session.consecutive_failures >= self.policy.quarantine_after:
                    if self._avert_quarantine(session):
                        continue
                    self._quarantine(
                        session,
                        CAUSE_POISON,
                        *self._last_failure_detail(session),
                    )
                    break
            else:
                session.consecutive_failures = 0
        return fed

    def _observe_window(self, session: ReceiverSession) -> bool:
        """Close one adaptation window at a packet boundary.

        Feeds the controller the stats the session's report gained since
        the previous boundary and records the decision.  Returns False
        when the decision was quarantine (the session is retired with
        cause ``channel`` — the rung past the end of the ladder).
        """
        controller = session.controller
        stats = session.window_tracker.take(session.report)
        decision = controller.observe(stats)
        session.adapt_decisions.append(decision)
        with self.tracer.span(
            SPAN_ADAPT_DECISION, session=session.session_id
        ) as span:
            span.set("action", decision.action)
            span.set("rung", decision.rung)
            span.set("reason", decision.reason)
        if decision.action == ACTION_QUARANTINE:
            self._quarantine(
                session,
                CAUSE_CHANNEL,
                "AdaptationBreach",
                f"controller gave up at last rung: {decision.reason} "
                f"({stats.describe()})",
            )
            return False
        return True

    def _avert_quarantine(self, session: ReceiverSession) -> bool:
        """Downshift instead of quarantining, if the ladder allows it.

        The downshift-before-quarantine contract: a failure streak at the
        quarantine threshold first spends a ladder rung (recorded as a
        forced ``failure-streak`` downshift and an averted quarantine);
        only a session with no controller or no rung left is quarantined.
        """
        controller = session.controller
        if controller is None:
            return False
        decision = controller.force_downshift(
            "failure-streak",
            WindowStats(frame_failures=session.consecutive_failures),
        )
        if decision is None:
            return False
        session.adapt_decisions.append(decision)
        session.consecutive_failures = 0
        self.metrics.counter(M_ADAPT_QUARANTINES_AVERTED).inc()
        with self.tracer.span(
            SPAN_ADAPT_DECISION, session=session.session_id
        ) as span:
            span.set("action", decision.action)
            span.set("rung", decision.rung)
            span.set("reason", decision.reason)
        return True

    @staticmethod
    def _last_failure_detail(session: ReceiverSession) -> tuple:
        last = getattr(session.streaming, "last_contained_failure", None)
        if last is not None:
            return last.error_type, f"[{last.stage}] {last.message}"
        return (
            "FrameFailure",
            f"{session.consecutive_failures} consecutive contained "
            "frame failures",
        )

    # -- retirement ------------------------------------------------------

    def _quarantine(
        self,
        session: ReceiverSession,
        cause: str,
        error_type: str,
        message: str,
    ) -> SessionFailure:
        dropped = session.discard_queue()
        if dropped:
            self.metrics.counter(M_SESSION_FRAMES_DROPPED).inc(dropped)
        session.state = STATE_QUARANTINED
        failure = SessionFailure(
            session_id=session.session_id,
            cause=cause,
            frames_fed=session.streaming.frames_fed,
            consecutive_failures=session.consecutive_failures,
            error_type=error_type,
            message=message,
        )
        session.failure = failure
        self.failures.append(failure)
        self._active -= 1
        self.metrics.counter(M_SESSIONS_QUARANTINED).inc()
        self.metrics.gauge(M_SESSIONS_ACTIVE).set(self._active)
        return failure

    def _retire(self, session: ReceiverSession, state: str) -> None:
        """Drain, flush and finalize one active session into ``state``."""
        with self.tracer.span(
            SPAN_SERVE_CLOSE, session=session.session_id
        ) as span:
            self._pump_session(session, None)
            if not session.is_active:
                # The drain itself quarantined the session.
                span.set("state", session.state)
                return
            try:
                session.events.extend(session.streaming.finish())
            except ColorBarsError as exc:
                self._quarantine(session, CAUSE_ERROR, type(exc).__name__, str(exc))
                span.set("state", session.state)
                return
            except Exception as exc:
                self._quarantine(session, CAUSE_ERROR, type(exc).__name__, str(exc))
                span.set("state", session.state)
                return
            session.state = state
            self._active -= 1
            span.set("state", state)
            span.set("packets_decoded", session.report.packets_decoded)
        counter = (
            M_SESSIONS_EVICTED if state == STATE_EVICTED else M_SESSIONS_CLOSED
        )
        self.metrics.counter(counter).inc()
        self.metrics.gauge(M_SESSIONS_ACTIVE).set(self._active)

    def close_session(self, session_id: str) -> ReceiverSession:
        """Drain, flush and close one session; returns its final record."""
        session = self.get(session_id)
        if not session.is_active:
            raise SessionStateError(
                f"session {session_id!r} is already {session.state}"
            )
        self._retire(session, STATE_CLOSED)
        return session

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Retire every session idle past the timeout; returns their ids."""
        timeout = self.policy.idle_timeout_s
        if timeout is None:
            return []
        if now is None:
            now = self.clock()
        evicted: List[str] = []
        for session in list(self.sessions.values()):
            if session.is_active and now - session.last_activity > timeout:
                self._retire(session, STATE_EVICTED)
                if session.state == STATE_EVICTED:
                    evicted.append(session.session_id)
        return evicted

    def close_all(self) -> List[ReceiverSession]:
        """Shut down: drain and close every active session, in admission
        order; quarantines during the final drain are contained as usual."""
        closed: List[ReceiverSession] = []
        for session in list(self.sessions.values()):
            if session.is_active:
                self._retire(session, STATE_CLOSED)
                if session.state == STATE_CLOSED:
                    closed.append(session)
        return closed
