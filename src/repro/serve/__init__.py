"""Resilient session service over the streaming receiver core.

The :mod:`repro.rx.streaming` core turns one receiver into an incremental
``feed``/``finish`` session; this package turns *many* of them into a
service: :class:`SessionManager` admits sessions up to a cap, bounds each
one's frame queue (backpressure), evicts idlers, and quarantines sessions
that keep failing — all with structured refusals and
:class:`~repro.exceptions.SessionFailure` records instead of crashes.
:func:`run_soak` is the deterministic chaos harness that proves those
contracts at fleet scale (``colorbars serve``).
"""

from repro.serve.manager import (
    BACKPRESSURE_DROP_OLDEST,
    BACKPRESSURE_POLICIES,
    BACKPRESSURE_REJECT,
    CAUSE_CHANNEL,
    CAUSE_ERROR,
    CAUSE_POISON,
    REJECT_CAPACITY,
    REJECT_DUPLICATE,
    SUBMIT_ACCEPTED,
    SUBMIT_DROPPED_OLDEST,
    SUBMIT_DROPPED_QUARANTINED,
    SUBMIT_REJECTED_FULL,
    ServePolicy,
    SessionManager,
)
from repro.serve.session import (
    STATE_ACTIVE,
    STATE_CLOSED,
    STATE_EVICTED,
    STATE_QUARANTINED,
    ReceiverSession,
    frame_cost_bytes,
)
from repro.serve.soak import (
    ROLE_CHAOS,
    ROLE_HEALTHY,
    ROLE_POISON,
    ROLE_STALL,
    PoisonFrame,
    SessionOutcome,
    SoakReport,
    SoakSpec,
    VirtualClock,
    run_soak,
)

__all__ = [
    "BACKPRESSURE_DROP_OLDEST",
    "BACKPRESSURE_POLICIES",
    "BACKPRESSURE_REJECT",
    "CAUSE_CHANNEL",
    "CAUSE_ERROR",
    "CAUSE_POISON",
    "REJECT_CAPACITY",
    "REJECT_DUPLICATE",
    "SUBMIT_ACCEPTED",
    "SUBMIT_DROPPED_OLDEST",
    "SUBMIT_DROPPED_QUARANTINED",
    "SUBMIT_REJECTED_FULL",
    "ServePolicy",
    "SessionManager",
    "STATE_ACTIVE",
    "STATE_CLOSED",
    "STATE_EVICTED",
    "STATE_QUARANTINED",
    "ReceiverSession",
    "frame_cost_bytes",
    "ROLE_CHAOS",
    "ROLE_HEALTHY",
    "ROLE_POISON",
    "ROLE_STALL",
    "PoisonFrame",
    "SessionOutcome",
    "SoakReport",
    "SoakSpec",
    "VirtualClock",
    "run_soak",
]
