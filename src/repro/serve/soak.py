"""Deterministic chaos soak of the session service.

:func:`run_soak` stands up one :class:`~repro.serve.manager.SessionManager`
and drives hundreds of concurrent receiver sessions through it, round-robin,
the way a busy gateway would see them — most healthy, some **chaotic**
(their recordings pass through a seeded :mod:`repro.faults` injector), some
**poison** (every frame raises inside the receiver), some **stalled** (they
go silent mid-stream and must be idle-evicted).  The soak asserts the
service contracts end to end:

* queue depth and buffered bytes never exceed :class:`ServePolicy` caps;
* poison sessions land in quarantine as structured
  :class:`~repro.exceptions.SessionFailure` records — the manager survives;
* stalled sessions are evicted by the (virtual) idle clock;
* healthy sessions decode byte-identically to a no-chaos soak, because
  roles only ever *replace* a session's frames, never reorder its peers'.

Everything is seeded: recordings, role assignment, and fault injection all
derive from ``SoakSpec.seed`` via :mod:`repro.util.rng`, and time is a
:class:`VirtualClock`, so two soaks with the same spec are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.camera.devices import DeviceProfile, generic_device
from repro.core.config import SystemConfig
from repro.core.system import make_streaming_receiver
from repro.exceptions import (
    AdmissionError,
    CameraError,
    ConfigurationError,
    SessionFailure,
)
from repro.faults import FAULT_REGISTRY, FaultSchedule, make_injector
from repro.link.simulator import LinkSimulator
from repro.serve.manager import ServePolicy, SessionManager
from repro.util.rng import derive_rng, make_rng

#: Session roles drawn per session from the soak seed.
ROLE_HEALTHY = "healthy"
ROLE_CHAOS = "chaos"
ROLE_POISON = "poison"
ROLE_STALL = "stall"

#: Frames a stalled session submits before going silent forever.
_STALL_AFTER_FRAMES = 3
#: Frames each session submits per scheduler round (the interleave grain).
_FRAMES_PER_ROUND = 4
#: Virtual seconds the clock advances per scheduler round.
_ROUND_SECONDS = 0.05


class PoisonFrame:
    """A frame whose pixel buffer is unreadable (simulated sensor fault).

    Reading ``pixels`` raises :class:`~repro.exceptions.CameraError`, which
    the receiver contains into a per-frame
    :class:`~repro.exceptions.FrameFailure`; a session made of these rides
    its failure streak straight into quarantine.
    """

    def __init__(self, index: int) -> None:
        self.index = index

    @property
    def pixels(self):
        raise CameraError(
            f"poison frame {self.index}: sensor returned no image data"
        )

    def __repr__(self) -> str:
        return f"PoisonFrame(index={self.index})"


class VirtualClock:
    """Deterministic monotonic clock for idle-eviction accounting."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


@dataclass(frozen=True)
class SoakSpec:
    """Shape of one soak: population, link config, and role mix."""

    sessions: int = 200
    seed: int = 0
    duration_s: float = 0.5
    csk_order: int = 4
    symbol_rate: float = 1000.0
    simulated_columns: int = 32
    #: Recordings are shared ``session i -> recording i % distinct`` so a
    #: 200-session soak costs ~6 simulations, not 200.
    distinct_recordings: int = 6
    chaos_fraction: float = 0.0
    poison_fraction: float = 0.0
    stall_fraction: float = 0.0
    #: Intensity handed to each chaotic session's fault injector.
    fault_intensity: float = 0.3

    def validate(self) -> None:
        if self.sessions < 1:
            raise ConfigurationError(
                f"soak needs at least one session, got {self.sessions}"
            )
        if self.distinct_recordings < 1:
            raise ConfigurationError(
                "distinct_recordings must be >= 1, got "
                f"{self.distinct_recordings}"
            )
        total = self.chaos_fraction + self.poison_fraction + self.stall_fraction
        for name, value in (
            ("chaos_fraction", self.chaos_fraction),
            ("poison_fraction", self.poison_fraction),
            ("stall_fraction", self.stall_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if total > 1.0:
            raise ConfigurationError(
                f"role fractions sum to {total:g} > 1"
            )


@dataclass
class SessionOutcome:
    """Terminal record of one soak session."""

    session_id: str
    role: str
    state: str
    frames_submitted: int
    frames_dropped: int
    peak_queue_depth: int
    payloads: List[bytes]
    failure: Optional[SessionFailure] = None


@dataclass
class SoakReport:
    """Everything a caller (or the CI gate) needs to judge a soak."""

    spec: SoakSpec
    outcomes: List[SessionOutcome] = field(default_factory=list)
    failures: List[SessionFailure] = field(default_factory=list)
    rejected: List[Tuple[str, str]] = field(default_factory=list)
    evicted: List[str] = field(default_factory=list)
    peak_queue_depth: int = 0
    frames_dropped: int = 0

    @property
    def goodput_bytes(self) -> int:
        """Payload bytes decoded across all sessions that reached a flush."""
        return sum(
            len(payload)
            for outcome in self.outcomes
            for payload in outcome.payloads
        )

    @property
    def quarantined(self) -> List[SessionOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    def payloads_by_session(self) -> Dict[str, List[bytes]]:
        return {o.session_id: o.payloads for o in self.outcomes}

    def roles(self) -> Dict[str, str]:
        return {o.session_id: o.role for o in self.outcomes}

    def as_dict(self) -> dict:
        """JSON-safe summary (payload bytes reduced to counts)."""
        role_counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            role_counts[outcome.role] = role_counts.get(outcome.role, 0) + 1
        return {
            "sessions": self.spec.sessions,
            "seed": self.spec.seed,
            "roles": role_counts,
            "goodput_bytes": self.goodput_bytes,
            "packets_decoded": sum(
                len(o.payloads) for o in self.outcomes
            ),
            "frames_dropped": self.frames_dropped,
            "peak_queue_depth": self.peak_queue_depth,
            "rejected": [
                {"session": session_id, "reason": reason}
                for session_id, reason in self.rejected
            ],
            "evicted": list(self.evicted),
            "quarantined": [failure.describe() for failure in self.failures],
            "states": {
                outcome.session_id: outcome.state for outcome in self.outcomes
            },
        }


def _draw_role(spec: SoakSpec, index: int) -> str:
    """Seeded role for session ``index`` (independent of every other draw)."""
    rng = derive_rng(make_rng(spec.seed), f"soak:session:{index}")
    u = float(rng.random())
    if u < spec.chaos_fraction:
        return ROLE_CHAOS
    if u < spec.chaos_fraction + spec.poison_fraction:
        return ROLE_POISON
    if u < spec.chaos_fraction + spec.poison_fraction + spec.stall_fraction:
        return ROLE_STALL
    return ROLE_HEALTHY


def _base_recordings(
    spec: SoakSpec, config: SystemConfig, device: DeviceProfile
) -> List[list]:
    recordings = []
    for recording_index in range(spec.distinct_recordings):
        simulator = LinkSimulator(
            config,
            device,
            simulated_columns=spec.simulated_columns,
            seed=spec.seed + recording_index,
        )
        _, frames, _ = simulator.record_session(duration_s=spec.duration_s)
        recordings.append(frames)
    return recordings


def _session_frames(
    spec: SoakSpec, index: int, role: str, recordings: List[list]
) -> list:
    """This session's frame stream — its shared recording, warped by role."""
    frames = list(recordings[index % spec.distinct_recordings])
    if role == ROLE_POISON:
        return [PoisonFrame(frame.index) for frame in frames]
    if role == ROLE_CHAOS:
        names = sorted(FAULT_REGISTRY)
        injector = make_injector(
            names[index % len(names)], spec.fault_intensity
        )
        rng = derive_rng(make_rng(spec.seed), f"soak:chaos:{index}")
        return injector.inject(frames, rng, FaultSchedule())
    return frames


def run_soak(
    spec: SoakSpec,
    device: Optional[DeviceProfile] = None,
    policy: Optional[ServePolicy] = None,
    tracer=None,
    metrics=None,
) -> SoakReport:
    """Drive one full soak through a :class:`SessionManager`; see module doc."""
    spec.validate()
    if device is None:
        device = generic_device()
    config = SystemConfig(
        csk_order=spec.csk_order,
        symbol_rate=spec.symbol_rate,
        design_loss_ratio=device.timing.gap_fraction,
        frame_rate=device.timing.frame_rate,
    )
    if policy is None:
        policy = ServePolicy(
            max_sessions=max(spec.sessions, 1),
            max_queued_frames=_FRAMES_PER_ROUND * 2,
            idle_timeout_s=_ROUND_SECONDS * 4,
        )
    clock = VirtualClock()
    manager = SessionManager(
        lambda session_id: make_streaming_receiver(config, device.timing),
        policy=policy,
        tracer=tracer,
        metrics=metrics,
        clock=clock,
    )
    report = SoakReport(spec=spec)
    recordings = _base_recordings(spec, config, device)

    roles: Dict[str, str] = {}
    pending: Dict[str, list] = {}
    for index in range(spec.sessions):
        session_id = f"session-{index:04d}"
        role = _draw_role(spec, index)
        try:
            manager.open_session(session_id)
        except AdmissionError as exc:
            report.rejected.append((session_id, exc.reason))
            continue
        roles[session_id] = role
        frames = _session_frames(spec, index, role, recordings)
        if role == ROLE_STALL:
            frames = frames[:_STALL_AFTER_FRAMES]
        pending[session_id] = frames

    # Round-robin scheduler: every round each live session submits a small
    # batch, the manager pumps, the virtual clock ticks, idlers fall off.
    cursor: Dict[str, int] = {session_id: 0 for session_id in pending}
    while any(
        cursor[sid] < len(pending[sid])
        and manager.sessions[sid].is_active
        for sid in pending
    ):
        for session_id, frames in pending.items():
            session = manager.sessions[session_id]
            if not session.is_active:
                continue
            start = cursor[session_id]
            for frame in frames[start : start + _FRAMES_PER_ROUND]:
                manager.submit_frame(session_id, frame)
                if not session.is_active:
                    break
            cursor[session_id] = min(start + _FRAMES_PER_ROUND, len(frames))
        manager.pump()
        clock.advance(_ROUND_SECONDS)
        report.evicted.extend(manager.evict_idle())
    # Polite producers close their sessions; stalled ones just go silent,
    # so only the idle reaper can retire them.
    for session_id, role in roles.items():
        if role != ROLE_STALL and manager.sessions[session_id].is_active:
            manager.close_session(session_id)
    clock.advance((policy.idle_timeout_s or 0.0) + _ROUND_SECONDS)
    report.evicted.extend(manager.evict_idle())
    manager.close_all()

    for session_id, role in roles.items():
        session = manager.sessions[session_id]
        report.outcomes.append(
            SessionOutcome(
                session_id=session_id,
                role=role,
                state=session.state,
                frames_submitted=session.frames_submitted,
                frames_dropped=session.frames_dropped,
                peak_queue_depth=session.peak_queue_depth,
                payloads=session.payloads(),
                failure=session.failure,
            )
        )
        report.frames_dropped += session.frames_dropped
    report.failures = list(manager.failures)
    report.peak_queue_depth = manager.peak_queue_depth
    return report
