"""One admitted streaming session and its supervision state.

A :class:`ReceiverSession` is the session manager's bookkeeping around a
:class:`~repro.rx.streaming.StreamingReceiver`: the bounded frame queue,
activity timestamps, failure streaks, and the state machine::

    active --(idle timeout)------> evicted      (flushed, report final)
    active --(explicit close)----> closed       (flushed, report final)
    active --(failure threshold)-> quarantined  (contained, report partial)

``evicted`` and ``closed`` both ran the streaming ``finish()`` flush, so
their reports are exactly what a batch decode of the frames they consumed
would have produced; a ``quarantined`` session was abandoned mid-stream and
carries its :class:`~repro.exceptions.SessionFailure` instead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.exceptions import SessionFailure
from repro.link.adapt import (
    AdaptationDecision,
    LinkAdaptationController,
    ReportWindowTracker,
)
from repro.rx.streaming import PacketEvent, StreamingReceiver

#: Session lifecycle states (see module docstring for the transitions).
STATE_ACTIVE = "active"
STATE_QUARANTINED = "quarantined"
STATE_EVICTED = "evicted"
STATE_CLOSED = "closed"


def frame_cost_bytes(frame) -> int:
    """Approximate buffered cost of one frame, for the memory cap.

    The pixel buffer dominates a frame's footprint.  A frame that cannot
    even report its pixels (a poison object headed for quarantine) is
    costed at 1 byte — the probe must never be the thing that kills the
    service.
    """
    try:
        return int(frame.pixels.nbytes)
    except Exception:
        return 1


class ReceiverSession:
    """Supervision wrapper: queue, timestamps, streaks, terminal records."""

    def __init__(
        self,
        session_id: str,
        streaming: StreamingReceiver,
        opened_at: float,
        controller: Optional[LinkAdaptationController] = None,
    ) -> None:
        self.session_id = session_id
        self.streaming = streaming
        self.state = STATE_ACTIVE
        #: Per-session link-adaptation controller; ``None`` = fixed rate.
        self.controller = controller
        #: Window-boundary snapshotter feeding the controller (see
        #: :class:`repro.link.adapt.ReportWindowTracker`); the manager
        #: closes one window per packet boundary.
        self.window_tracker = ReportWindowTracker() if controller else None
        #: Controller decisions taken for this session, in order.
        self.adapt_decisions: List[AdaptationDecision] = []
        #: Pending ``(frame, cost_bytes)`` pairs, oldest first.
        self.queue: Deque[Tuple[object, int]] = deque()
        self.queued_bytes = 0
        self.opened_at = opened_at
        self.last_activity = opened_at
        self.frames_submitted = 0
        self.frames_processed = 0
        #: Frames shed: backpressure drops plus quarantine discards.
        self.frames_dropped = 0
        #: Contained per-frame failures in a row (resets on a clean frame).
        self.consecutive_failures = 0
        self.peak_queue_depth = 0
        #: Every packet event the session emitted, in stream order.
        self.events: List[PacketEvent] = []
        #: Set when (and only when) the session was quarantined.
        self.failure: Optional[SessionFailure] = None

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def recommended_rung(self) -> Optional[int]:
        """The controller's current ladder rung, or ``None`` if unmanaged.

        The service cannot re-plan a remote transmitter itself; this is
        the rung a feedback channel would carry back to it.
        """
        return self.controller.rung if self.controller is not None else None

    @property
    def is_active(self) -> bool:
        return self.state == STATE_ACTIVE

    @property
    def report(self):
        """The session's :class:`~repro.rx.receiver.ReceiverReport`.

        Final for ``closed``/``evicted`` sessions (the flush ran); partial
        for ``quarantined`` ones.
        """
        return self.streaming.report

    def payloads(self) -> List[bytes]:
        return list(self.streaming.report.payloads)

    def enqueue(self, frame, cost: int) -> None:
        self.queue.append((frame, cost))
        self.queued_bytes += cost
        self.peak_queue_depth = max(self.peak_queue_depth, len(self.queue))
        self.frames_submitted += 1

    def dequeue(self):
        frame, cost = self.queue.popleft()
        self.queued_bytes -= cost
        return frame

    def drop_oldest(self) -> None:
        self.dequeue()
        self.frames_dropped += 1

    def discard_queue(self) -> int:
        """Drop every pending frame (quarantine path); returns the count."""
        dropped = len(self.queue)
        self.queue.clear()
        self.queued_bytes = 0
        self.frames_dropped += dropped
        return dropped
