"""ColorBars: LED-to-camera communication with Color Shift Keying.

A full reproduction of "ColorBars: Increasing Data Rate of LED-to-Camera
Communication using Color Shift Keying" (CoNEXT 2015): the CSK modulation
stack, flicker-free illumination, Reed-Solomon protection against
inter-frame loss, transmitter-assisted calibration, and a physically
grounded rolling-shutter camera simulator standing in for the paper's phone
receivers.

Quickstart::

    from repro import SystemConfig, LinkSimulator, nexus_5

    config = SystemConfig(csk_order=8, symbol_rate=2000)
    result = LinkSimulator(config, nexus_5()).run(b"hello colorbars" * 8)
    print(result.metrics.summary())
"""

from repro.camera.devices import DeviceProfile, generic_device, iphone_5s, nexus_5
from repro.core.config import SystemConfig
from repro.core.metrics import LinkMetrics
from repro.core.system import (
    ColorBarsTransmitter,
    make_receiver,
    make_streaming_receiver,
)
from repro.csk.constellation import Constellation, design_constellation
from repro.exceptions import ColorBarsError, FrameFailure, SessionFailure
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FrameDropInjector,
    OcclusionInjector,
    SaturationInjector,
    ScanlineCorruptionInjector,
    TimingJitterInjector,
    make_injector,
)
from repro.fec.reed_solomon import ReedSolomonCodec, rs_params_for_loss
from repro.flicker.threshold import FlickerModel
from repro.link.channel import ChannelConditions
from repro.link.simulator import LinkResult, LinkSimulator, sweep
from repro.phy.led import TriLedEmitter, typical_tri_led
from repro.rx.receiver import ColorBarsReceiver, ReceiverReport
from repro.rx.streaming import PacketEvent, StreamingReceiver
from repro.serve import ServePolicy, SessionManager, run_soak

__version__ = "1.0.0"

__all__ = [
    "DeviceProfile",
    "generic_device",
    "iphone_5s",
    "nexus_5",
    "SystemConfig",
    "LinkMetrics",
    "ColorBarsTransmitter",
    "make_receiver",
    "make_streaming_receiver",
    "Constellation",
    "design_constellation",
    "ColorBarsError",
    "FrameFailure",
    "SessionFailure",
    "FaultInjector",
    "FaultSchedule",
    "FrameDropInjector",
    "OcclusionInjector",
    "SaturationInjector",
    "ScanlineCorruptionInjector",
    "TimingJitterInjector",
    "make_injector",
    "ReedSolomonCodec",
    "rs_params_for_loss",
    "FlickerModel",
    "ChannelConditions",
    "LinkResult",
    "LinkSimulator",
    "sweep",
    "TriLedEmitter",
    "typical_tri_led",
    "ColorBarsReceiver",
    "ReceiverReport",
    "PacketEvent",
    "StreamingReceiver",
    "ServePolicy",
    "SessionManager",
    "run_soak",
    "__version__",
]
