"""Experiment aggregation: multi-seed runs and summary statistics.

A single simulated recording is one random draw (noise, AE drift, frame
jitter, gap phases); the paper's measurements average over much longer
captures.  This package provides the repeat-and-aggregate layer: run a
configuration across independent seeds and report mean, spread and a normal
confidence interval for each metric — the numbers a serious evaluation
should quote.
"""

from repro.analysis.aggregate import (
    MetricSummary,
    RepeatedRunResult,
    repeat_link_runs,
    summarize,
)

__all__ = [
    "MetricSummary",
    "RepeatedRunResult",
    "repeat_link_runs",
    "summarize",
]
