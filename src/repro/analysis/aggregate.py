"""Repeat-and-aggregate helpers for link experiments.

One simulated recording is one random draw; comparing configurations on
single runs confuses noise with effects.  :func:`repeat_link_runs` executes
the same configuration across independent seeds; :func:`summarize` reduces
any per-run metric vector to mean, standard deviation and a normal-theory
confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.camera.devices import DeviceProfile
from repro.core.config import SystemConfig
from repro.core.metrics import LinkMetrics
from repro.exceptions import ConfigurationError
from repro.link.channel import ChannelConditions
from repro.link.simulator import LinkSimulator

#: z-scores for the confidence levels the summaries support.
_Z_SCORES = {0.68: 1.0, 0.90: 1.645, 0.95: 1.96, 0.99: 2.576}


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread / confidence interval of one metric across runs."""

    name: str
    mean: float
    std: float
    low: float
    high: float
    samples: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] "
            f"(n={self.samples}, {self.confidence:.0%} CI)"
        )


def summarize(
    name: str, values: Sequence[float], confidence: float = 0.95
) -> MetricSummary:
    """Normal-theory summary of per-run metric values.

    Uses the standard error of the mean; with the small run counts typical
    here the interval is approximate — quote n alongside it, as the
    rendering does.
    """
    if confidence not in _Z_SCORES:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ConfigurationError(f"no samples to summarize for {name!r}")
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    half_width = _Z_SCORES[confidence] * std / np.sqrt(data.size)
    return MetricSummary(
        name=name,
        mean=mean,
        std=std,
        low=mean - half_width,
        high=mean + half_width,
        samples=int(data.size),
        confidence=confidence,
    )


@dataclass
class RepeatedRunResult:
    """All runs of one configuration plus ready-made metric summaries."""

    config_description: str
    device_name: str
    runs: List[LinkMetrics] = field(default_factory=list)

    def metric_values(self, extractor: Callable[[LinkMetrics], float]) -> List[float]:
        return [extractor(metrics) for metrics in self.runs]

    def summaries(self, confidence: float = 0.95) -> Dict[str, MetricSummary]:
        """Summaries for the §8 metric triple plus the loss ratio."""
        extractors: Dict[str, Callable[[LinkMetrics], float]] = {
            "ser": lambda m: m.data_symbol_error_rate,
            "throughput_bps": lambda m: m.throughput_bps,
            "goodput_bps": lambda m: m.goodput_bps,
            "loss_ratio": lambda m: m.inter_frame_loss_ratio,
        }
        return {
            name: summarize(name, self.metric_values(fn), confidence)
            for name, fn in extractors.items()
        }

    def report_lines(self, confidence: float = 0.95) -> List[str]:
        lines = [f"{self.config_description} on {self.device_name}:"]
        lines.extend(
            f"  {summary}" for summary in self.summaries(confidence).values()
        )
        return lines


def repeat_link_runs(
    config: SystemConfig,
    device: DeviceProfile,
    repeats: int = 5,
    duration_s: float = 2.0,
    payload: Optional[bytes] = None,
    channel: Optional[ChannelConditions] = None,
    simulated_columns: int = 32,
    base_seed: int = 1000,
) -> RepeatedRunResult:
    """Run one configuration across ``repeats`` independent seeds.

    Seeds are ``base_seed + i``, so results are reproducible and two
    configurations compared with the same ``base_seed`` share their random
    draws pairwise (a variance-reduction trick for A/B comparisons).
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    result = RepeatedRunResult(
        config_description=config.describe(), device_name=device.name
    )
    for i in range(repeats):
        simulator = LinkSimulator(
            config,
            device,
            channel=channel,
            simulated_columns=simulated_columns,
            seed=base_seed + i,
        )
        run = simulator.run(payload=payload, duration_s=duration_s)
        result.runs.append(run.metrics)
    return result
