"""Exception hierarchy for the ColorBars reproduction.

Every error raised by this library derives from :class:`ColorBarsError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass that applies; the message always states which invariant was
violated and with which values.
"""

from __future__ import annotations

from dataclasses import dataclass


class ColorBarsError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ColorBarsError):
    """A configuration value is invalid or inconsistent with another value."""


class ColorSpaceError(ColorBarsError):
    """A color lies outside the representable range of a target color space."""


class GamutError(ColorSpaceError):
    """A chromaticity point lies outside the emitter's constellation triangle."""


class ConstellationError(ColorBarsError):
    """A CSK constellation is malformed (wrong size, duplicate symbols, ...)."""


class ModulationError(ColorBarsError):
    """The modulator was asked to encode data it cannot represent."""


class DemodulationError(ColorBarsError):
    """The demodulator could not map received samples onto symbols."""


class FECError(ColorBarsError):
    """Base class for forward-error-correction failures."""


class GaloisFieldError(FECError):
    """An operation on GF(2^8) elements was given out-of-range values."""


class ReedSolomonError(FECError):
    """Reed-Solomon encode/decode parameter or arithmetic failure."""


class UncorrectableBlockError(ReedSolomonError):
    """A codeword contained more errors/erasures than the code can correct."""


class PacketError(ColorBarsError):
    """Packet framing violated the ColorBars packet structure."""


class PacketTooLargeError(PacketError):
    """Payload exceeds what the 3-symbol size field can express."""


class FramingError(PacketError):
    """A received symbol stream could not be split into packets."""


class CameraError(ColorBarsError):
    """Camera simulator misconfiguration or capture failure."""


class SensorTimingError(CameraError):
    """Rolling-shutter timing parameters are inconsistent."""


class CalibrationError(ColorBarsError):
    """Receiver calibration state is missing or unusable."""


class LinkError(ColorBarsError):
    """End-to-end link simulation failed to produce a usable result."""


class FaultInjectionError(ColorBarsError):
    """A fault injector was misconfigured (bad spec, intensity out of range)."""


class AdaptationError(ColorBarsError):
    """The link-adaptation subsystem was misconfigured (empty ladder, a rung
    violating the flicker budget, an out-of-range hysteresis constant)."""


@dataclass(frozen=True)
class FrameFailure:
    """One contained per-frame receive failure (the graceful-degradation record).

    The receiver never lets a :class:`ColorBarsError` from one frame abort a
    session; instead the frame becomes a full-gap erasure and this record —
    which frame, which pipeline stage, which exception — lands on the
    :class:`~repro.rx.receiver.ReceiverReport`.
    """

    frame_index: int
    stage: str
    error_type: str
    message: str


@dataclass(frozen=True)
class CellFailure:
    """One contained sweep-cell failure (the resilient-runtime record).

    The resilient executor (:mod:`repro.perf.runtime`) never lets one cell
    kill a sweep; instead the cell's outcome becomes this record — which
    spec (by fingerprint), which position, why (cause taxonomy below), and
    after how many attempts — surfaced on sweep reports and the CLI.

    ``cause`` is one of:

    * ``"crash"`` — the worker process died (e.g. ``BrokenProcessPool``);
    * ``"timeout"`` — the cell exceeded its watchdog deadline and was killed;
    * ``"error"`` — the cell raised an exception in-process.
    """

    fingerprint: str
    index: int
    cause: str
    attempts: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"cell {self.index} [{self.fingerprint[:12]}] {self.cause} "
            f"after {self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


class StreamingStateError(ColorBarsError):
    """A streaming receiver was driven out of order (feed after finish, ...)."""


class ServeError(ColorBarsError):
    """Base class for session-service (``repro.serve``) errors."""


class AdmissionError(ServeError):
    """The session manager refused to admit a new session.

    ``reason`` is a stable machine-readable token (``"capacity"``,
    ``"duplicate"``, ...) surfaced alongside the human-readable message so
    callers can branch on the rejection cause without parsing text.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class SessionStateError(ServeError):
    """A session was addressed in a state that cannot serve the request
    (unknown id, already closed, ...)."""


@dataclass(frozen=True)
class SessionFailure:
    """One contained session failure (the session-service record).

    The :class:`~repro.serve.manager.SessionManager` never lets one poison
    session kill the service; instead the session is quarantined and its
    outcome becomes this record — which session, why (cause taxonomy below),
    and how far it got — mirroring :class:`CellFailure` one level up.

    ``cause`` is one of:

    * ``"poison"`` — repeated contained per-frame failures crossed the
      quarantine threshold (every frame fails inside the receiver);
    * ``"error"`` — an exception escaped the receiver itself (a bug or a
      frame object the pipeline cannot even start on).
    """

    session_id: str
    cause: str
    frames_fed: int
    consecutive_failures: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"session {self.session_id!r} {self.cause} after "
            f"{self.frames_fed} frame(s) "
            f"({self.consecutive_failures} consecutive failure(s)): "
            f"{self.error_type}: {self.message}"
        )


class JournalError(ColorBarsError):
    """A sweep run journal is unreadable or violates its schema."""


class BackendError(ColorBarsError):
    """A distributed sweep backend violated its contract or was misused
    (submit after close, a worker protocol frame the parent cannot parse,
    a drain with nothing submitted that the backend cannot represent)."""


class ObservabilityError(ColorBarsError):
    """The observability layer was misused (undeclared metric, bad export)."""


class TraceError(ObservabilityError):
    """A trace is malformed: unreadable file, bad record, dangling parent."""


class ToolingError(ColorBarsError):
    """A development tool (e.g. ``reprolint``) was misconfigured or misused."""


class BenchError(ToolingError):
    """A benchmark report is malformed or violates the recorded schema."""


class LayeringError(ToolingError):
    """The declared import-layering graph is malformed (cycle, unknown layer)."""


class BaselineError(ToolingError):
    """A reprolint baseline file is malformed (bad JSON, wrong shape/version)."""
