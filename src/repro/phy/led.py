"""Tri-LED emitter model.

A tri-LED luminaire combines a red, a green and a blue LED die; driving them
with different PWM duty cycles mixes any chromaticity inside the triangle
spanned by the three primaries (paper §2.2).

Chromaticity mixing is linear in each source's *tristimulus sum*
``S = X + Y + Z``: the barycentric coordinates of a target point in the xy
gamut triangle are exactly the per-primary shares of total S.  CSK therefore
holds total S constant across symbols (the 802.15.7 constant-power
constraint) — a pure-blue symbol is then photometrically dimmer than white,
as a real RGB LED is, instead of radiometrically explosive.  The emitter
converts between target chromaticity and per-primary duty cycles in these
units and reports the emitted CIE XYZ light for any duty triple — the
quantity the camera simulator integrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.color.chromaticity import ChromaticityPoint, GamutTriangle
from repro.color.ciexyz import xy_to_XYZ
from repro.exceptions import GamutError
from repro.phy.pwm import PwmController
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class LedPrimary:
    """One LED die: its chromaticity and full-duty luminance (arbitrary units)."""

    name: str
    chromaticity: ChromaticityPoint
    max_luminance: float

    def __post_init__(self) -> None:
        require_positive(self.max_luminance, f"{self.name} max_luminance")
        if self.chromaticity.y <= 0:
            raise GamutError(
                f"{self.name} primary has y <= 0; it emits no luminance"
            )

    @property
    def max_power_sum(self) -> float:
        """Tristimulus sum X+Y+Z at full duty (the CSK mixing unit)."""
        return self.max_luminance / self.chromaticity.y

    @property
    def xyz_at_full_duty(self) -> np.ndarray:
        """Emitted XYZ when driven at duty 1.0."""
        return xy_to_XYZ(self.chromaticity.as_array(), Y=self.max_luminance)


class TriLedEmitter:
    """The full tri-LED: three primaries plus an optional PWM controller.

    The emitter's gamut triangle doubles as the CSK constellation canvas;
    its centroid is the "white" used for illumination symbols.
    """

    def __init__(
        self,
        red: LedPrimary,
        green: LedPrimary,
        blue: LedPrimary,
        pwm: Optional[PwmController] = None,
    ) -> None:
        self.red = red
        self.green = green
        self.blue = blue
        self.pwm = pwm if pwm is not None else PwmController()
        self.gamut = GamutTriangle(
            red.chromaticity, green.chromaticity, blue.chromaticity
        )
        self._full_duty_xyz = np.stack(
            [red.xyz_at_full_duty, green.xyz_at_full_duty, blue.xyz_at_full_duty]
        )

    @property
    def primaries(self) -> Tuple[LedPrimary, LedPrimary, LedPrimary]:
        return (self.red, self.green, self.blue)

    @property
    def white_point(self) -> ChromaticityPoint:
        """Chromaticity of the illumination 'white' (equal power shares)."""
        return self.gamut.centroid()

    def max_power_at(self, chromaticity: ChromaticityPoint) -> float:
        """Largest total tristimulus sum reproducible at ``chromaticity``."""
        weights = self.gamut.mixing_weights(chromaticity)
        limits = []
        for weight, primary in zip(weights, self.primaries):
            if weight > 1e-12:
                limits.append(primary.max_power_sum / weight)
        require(bool(limits), "mixing weights are all zero")
        return min(limits)

    def duties_for(
        self, chromaticity: ChromaticityPoint, power_sum: float
    ) -> np.ndarray:
        """Duty cycles reproducing ``chromaticity`` at total power ``power_sum``.

        ``power_sum`` is the target tristimulus sum X+Y+Z of the mixture.
        Raises :class:`GamutError` if the point is outside the triangle or
        the power exceeds :meth:`max_power_at`.
        """
        require_positive(power_sum, "power_sum")
        ceiling = self.max_power_at(chromaticity)
        if power_sum > ceiling * (1 + 1e-9):
            raise GamutError(
                f"power {power_sum:.3f} exceeds the emitter's maximum "
                f"{ceiling:.3f} at ({chromaticity.x:.3f}, {chromaticity.y:.3f})"
            )
        weights = self.gamut.mixing_weights(chromaticity)
        per_primary_power = weights * power_sum
        duties = np.array(
            [
                power / primary.max_power_sum
                for power, primary in zip(per_primary_power, self.primaries)
            ]
        )
        return np.clip(duties, 0.0, 1.0)

    def emitted_xyz(self, duties: Sequence[float]) -> np.ndarray:
        """CIE XYZ of the combined light for a duty triple (additive mixing)."""
        duties_arr = np.asarray(duties, dtype=float)
        require(duties_arr.shape == (3,), f"need 3 duties, got {duties_arr.shape}")
        require(
            bool(np.all((duties_arr >= 0) & (duties_arr <= 1))),
            f"duties must lie in [0, 1], got {duties_arr}",
        )
        return duties_arr @ self._full_duty_xyz

    def emit_chromaticity(
        self,
        chromaticity: ChromaticityPoint,
        power_sum: Optional[float] = None,
        quantize: bool = True,
    ) -> np.ndarray:
        """Emitted XYZ for a target chromaticity.

        ``power_sum`` defaults to the constellation operating level
        (:meth:`default_symbol_power`).  ``quantize`` routes the duty triple
        through the PWM resolution model.
        """
        if power_sum is None:
            power_sum = self.default_symbol_power()
        duties = self.duties_for(chromaticity, power_sum)
        if quantize:
            duties = np.asarray(self.pwm.quantize_duties(duties.tolist()))
        return self.emitted_xyz(duties)

    def default_symbol_power(self) -> float:
        """The shared tristimulus sum at which all symbols are emitted.

        Constant total power across symbols is the 802.15.7 CSK operating
        constraint; only chromaticity carries information.  The ceiling is
        set by the gamut's vertices — each reproducible by a single die — so
        the default is 60% of the weakest primary's full-duty power, which is
        reachable everywhere in the triangle.
        """
        return 0.6 * min(p.max_power_sum for p in self.primaries)

    def off_xyz(self) -> np.ndarray:
        """Emission during an OFF symbol: darkness."""
        return np.zeros(3)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TriLedEmitter(white={self.white_point!r}, "
            f"Y_max={[p.max_luminance for p in self.primaries]})"
        )


def typical_tri_led(
    max_luminance: float = 100.0, pwm: Optional[PwmController] = None
) -> TriLedEmitter:
    """A representative RGB tri-LED.

    Primary chromaticities sit near the 802.15.7 color-band centers used for
    CSK gamuts: deep red (0.700, 0.300), green (0.170, 0.700) and royal blue
    (0.135, 0.040).  ``max_luminance`` is each die's full-duty luminance.
    """
    require_positive(max_luminance, "max_luminance")
    return TriLedEmitter(
        red=LedPrimary("red", ChromaticityPoint(0.700, 0.300), max_luminance),
        green=LedPrimary("green", ChromaticityPoint(0.170, 0.700), max_luminance),
        blue=LedPrimary("blue", ChromaticityPoint(0.135, 0.040), max_luminance),
        pwm=pwm,
    )
