"""Logical transmission symbols.

ColorBars transmits three kinds of symbols (paper §4-§5):

* **DATA** — a constellation point carrying ``log2(M)`` bits,
* **WHITE** ("w") — an illumination symbol at the white point; also used in
  the packet flag and delimiter sequences,
* **OFF** ("o") — the LED dark symbol used in delimiters and flags, trivially
  distinguishable from every data color.

The packet layer works entirely in these logical symbols; the constellation
and LED model translate them into light.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence

from repro.exceptions import ModulationError


class SymbolKind(Enum):
    """The three on-air symbol classes."""

    DATA = "data"
    WHITE = "white"
    OFF = "off"

    def __repr__(self) -> str:
        return f"SymbolKind.{self.name}"


@dataclass(frozen=True)
class LogicalSymbol:
    """One on-air symbol: a kind plus, for DATA, its constellation index."""

    kind: SymbolKind
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is SymbolKind.DATA:
            if self.index is None or self.index < 0:
                raise ModulationError(
                    f"DATA symbols need a non-negative index, got {self.index!r}"
                )
        elif self.index is not None:
            raise ModulationError(
                f"{self.kind.name} symbols must not carry an index"
            )

    @property
    def is_data(self) -> bool:
        return self.kind is SymbolKind.DATA

    @property
    def is_white(self) -> bool:
        return self.kind is SymbolKind.WHITE

    @property
    def is_off(self) -> bool:
        return self.kind is SymbolKind.OFF

    def to_char(self) -> str:
        """Compact notation: 'o', 'w', or the decimal index for data."""
        if self.is_off:
            return "o"
        if self.is_white:
            return "w"
        return str(self.index)

    def __repr__(self) -> str:
        return f"LogicalSymbol({self.to_char()!r})"


def data_symbol(index: int) -> LogicalSymbol:
    """A DATA symbol pointing at constellation entry ``index``."""
    return LogicalSymbol(SymbolKind.DATA, index)


def white_symbol() -> LogicalSymbol:
    """The illumination / flag symbol 'w'."""
    return LogicalSymbol(SymbolKind.WHITE)


def off_symbol() -> LogicalSymbol:
    """The dark delimiter symbol 'o'."""
    return LogicalSymbol(SymbolKind.OFF)


def symbols_from_string(spec: str) -> List[LogicalSymbol]:
    """Parse compact notation: 'o' / 'w' characters only (flags, delimiters).

    >>> [s.to_char() for s in symbols_from_string("owo")]
    ['o', 'w', 'o']
    """
    out: List[LogicalSymbol] = []
    for char in spec:
        if char == "o":
            out.append(off_symbol())
        elif char == "w":
            out.append(white_symbol())
        else:
            raise ModulationError(
                f"symbol string may contain only 'o' and 'w', got {char!r}"
            )
    return out


def count_data_symbols(symbols: Iterable[LogicalSymbol]) -> int:
    """Number of DATA symbols in a stream (throughput accounting)."""
    return sum(1 for s in symbols if s.is_data)


def validate_indices(symbols: Sequence[LogicalSymbol], order: int) -> None:
    """Check every DATA index fits the given constellation order."""
    for position, symbol in enumerate(symbols):
        if symbol.is_data and symbol.index >= order:
            raise ModulationError(
                f"symbol at position {position} has index {symbol.index}, "
                f"outside {order}-CSK constellation"
            )
