"""Pulse-width-modulation model of the transmitter's LED driver.

The paper drives each LED of the tri-LED with a BeagleBone PWM channel; the
average optical power of a primary is proportional to its duty cycle (§2.2).
This module models the two artifacts that matter at symbol rates:

* **duty-cycle quantization** — the PWM compare register has finite
  resolution, so the commanded duty is rounded to 1/2^bits steps,
* **a maximum color-update rate** — the paper measured the BeagleBone able to
  change colors at < 4500 Hz; pushing symbols faster than the controller can
  reprogram the channels is a configuration error, not a channel impairment.

The PWM carrier itself (tens of kHz) is far above any camera exposure window,
so its average — not its switching waveform — is what the optics integrate;
``PwmChannel.effective_level`` returns exactly that average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.util.validation import require, require_in_range, require_positive

#: The color-change rate limit the paper measured on the BeagleBone Black.
BEAGLEBONE_MAX_UPDATE_HZ = 4500.0


@dataclass
class PwmChannel:
    """One PWM output driving a single LED primary.

    ``resolution_bits`` controls quantization; the BeagleBone's eHRPWM
    modules offer 16-bit compare registers, but 12 bits is a realistic
    effective resolution once period granularity is accounted for.
    """

    resolution_bits: int = 12
    carrier_hz: float = 25000.0

    def __post_init__(self) -> None:
        require(
            1 <= self.resolution_bits <= 24,
            f"resolution_bits must be in [1, 24], got {self.resolution_bits}",
        )
        require_positive(self.carrier_hz, "carrier_hz")
        self._levels = 1 << self.resolution_bits
        self._duty = 0.0

    @property
    def duty(self) -> float:
        """The quantized duty cycle currently programmed."""
        return self._duty

    def set_duty(self, duty: float) -> float:
        """Program a duty cycle; returns the quantized value actually applied."""
        require_in_range(duty, "duty", 0.0, 1.0)
        steps = round(duty * (self._levels - 1))
        self._duty = steps / (self._levels - 1)
        return self._duty

    def quantize(self, duty: float) -> float:
        """Quantization without state change (for planning/analysis)."""
        require_in_range(duty, "duty", 0.0, 1.0)
        steps = round(duty * (self._levels - 1))
        return steps / (self._levels - 1)

    def effective_level(self) -> float:
        """Average optical drive over any window >> 1/carrier_hz."""
        return self._duty


class PwmController:
    """Three PWM channels plus the update-rate constraint of the controller.

    Mirrors the transmitter's PWM module in Fig. 2(b): one channel per LED
    primary, reprogrammed once per symbol.
    """

    def __init__(
        self,
        resolution_bits: int = 12,
        carrier_hz: float = 25000.0,
        max_update_hz: float = BEAGLEBONE_MAX_UPDATE_HZ,
    ) -> None:
        require_positive(max_update_hz, "max_update_hz")
        self.max_update_hz = max_update_hz
        self.channels: Tuple[PwmChannel, PwmChannel, PwmChannel] = (
            PwmChannel(resolution_bits, carrier_hz),
            PwmChannel(resolution_bits, carrier_hz),
            PwmChannel(resolution_bits, carrier_hz),
        )

    def check_symbol_rate(self, symbol_rate: float) -> None:
        """Reject symbol rates the controller cannot reprogram in time."""
        require_positive(symbol_rate, "symbol_rate")
        if symbol_rate > self.max_update_hz:
            raise ConfigurationError(
                f"symbol rate {symbol_rate} Hz exceeds the controller's "
                f"maximum color-update rate {self.max_update_hz} Hz"
            )

    def set_duties(self, duties: Sequence[float]) -> List[float]:
        """Program all three channels; returns the quantized duties."""
        require(len(duties) == 3, f"need 3 duty cycles, got {len(duties)}")
        return [ch.set_duty(d) for ch, d in zip(self.channels, duties)]

    def quantize_duties(self, duties: Sequence[float]) -> List[float]:
        """Quantize a duty triple without programming the channels."""
        require(len(duties) == 3, f"need 3 duty cycles, got {len(duties)}")
        return [ch.quantize(d) for ch, d in zip(self.channels, duties)]

    def effective_levels(self) -> List[float]:
        """Current average drive levels of the three primaries."""
        return [ch.effective_level() for ch in self.channels]
