"""Transmitter physical layer: logical symbols, PWM, tri-LED, optical waveform.

This is the simulation substitute for the paper's BeagleBone Black + RGB
tri-LED transmitter.  The modulation stack produces a stream of
:class:`~repro.phy.symbols.LogicalSymbol`; the tri-LED model turns each into
emitted CIE XYZ light via PWM duty cycles; the resulting piecewise-constant
:class:`~repro.phy.waveform.OpticalWaveform` is what the camera simulator
integrates per scanline.
"""

from repro.phy.led import LedPrimary, TriLedEmitter, typical_tri_led
from repro.phy.pwm import PwmChannel, PwmController
from repro.phy.symbols import (
    LogicalSymbol,
    SymbolKind,
    count_data_symbols,
    data_symbol,
    off_symbol,
    white_symbol,
)
from repro.phy.waveform import OpticalWaveform

__all__ = [
    "LedPrimary",
    "TriLedEmitter",
    "typical_tri_led",
    "PwmChannel",
    "PwmController",
    "LogicalSymbol",
    "SymbolKind",
    "count_data_symbols",
    "data_symbol",
    "off_symbol",
    "white_symbol",
    "OpticalWaveform",
]
