"""The piecewise-constant optical waveform emitted by the transmitter.

Each symbol holds the LED at one color for one symbol period, so the emitted
light is a step function of time in XYZ space.  The camera simulator needs
the *integral* of that function over each scanline's exposure window; with a
cumulative-sum representation those integrals are O(1) per window and fully
vectorized, which is what makes frame-rate simulation of megapixel sensors
tractable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.validation import require, require_positive

#: How the waveform continues past its last symbol.
EXTEND_OFF = "off"      #: darkness after the stream ends
EXTEND_CYCLE = "cycle"  #: the stream repeats (continuous broadcast)


class OpticalWaveform:
    """A symbol-clocked XYZ step function with fast window integration.

    Parameters
    ----------
    symbol_xyz:
        ``(N, 3)`` array — the CIE XYZ emitted during each symbol period.
    symbol_rate:
        Symbols per second; each symbol lasts ``1 / symbol_rate``.
    extend:
        :data:`EXTEND_OFF` (default) or :data:`EXTEND_CYCLE` — behaviour for
        times beyond the stream.  ColorBars broadcasts continuously, so link
        simulations use the cyclic mode; single-burst analyses use OFF.
    """

    def __init__(
        self,
        symbol_xyz: np.ndarray,
        symbol_rate: float,
        extend: str = EXTEND_OFF,
    ) -> None:
        symbol_xyz = np.asarray(symbol_xyz, dtype=float)
        require(
            symbol_xyz.ndim == 2 and symbol_xyz.shape[1] == 3,
            f"symbol_xyz must be (N, 3), got {symbol_xyz.shape}",
        )
        require(symbol_xyz.shape[0] >= 1, "waveform needs at least one symbol")
        require_positive(symbol_rate, "symbol_rate")
        if extend not in (EXTEND_OFF, EXTEND_CYCLE):
            raise ConfigurationError(
                f"extend must be '{EXTEND_OFF}' or '{EXTEND_CYCLE}', got {extend!r}"
            )
        self._xyz = symbol_xyz
        self.symbol_rate = float(symbol_rate)
        self.symbol_period = 1.0 / self.symbol_rate
        self.extend = extend
        # Cumulative integral at symbol boundaries: C[j] = integral 0..j*T.
        self._cumulative = np.vstack(
            [np.zeros(3), np.cumsum(symbol_xyz * self.symbol_period, axis=0)]
        )

    @property
    def num_symbols(self) -> int:
        return self._xyz.shape[0]

    @property
    def duration(self) -> float:
        """Length of one pass of the stream, in seconds."""
        return self.num_symbols * self.symbol_period

    @property
    def symbol_xyz(self) -> np.ndarray:
        """Per-symbol emission, ``(N, 3)`` (read-only copy)."""
        return self._xyz.copy()

    def freeze(self) -> "OpticalWaveform":
        """Mark the internal arrays read-only and return ``self``.

        A frozen waveform can be shared safely across simulator runs (the
        memoizing planner in :mod:`repro.perf.cache` does this): any
        accidental in-place mutation raises instead of corrupting the other
        consumers.  All sampling/integration methods only read.
        """
        self._xyz.flags.writeable = False
        self._cumulative.flags.writeable = False
        return self

    # -- sampling ------------------------------------------------------------

    def symbol_index_at(self, times: np.ndarray) -> np.ndarray:
        """Index of the symbol on air at each time (cyclic or clamped to OFF=-1)."""
        times = np.asarray(times, dtype=float)
        if self.extend == EXTEND_CYCLE:
            wrapped = np.mod(times, self.duration)
            return np.minimum(
                (wrapped / self.symbol_period).astype(int), self.num_symbols - 1
            )
        indices = np.floor(times / self.symbol_period).astype(int)
        outside = (times < 0) | (indices >= self.num_symbols)
        return np.where(outside, -1, np.clip(indices, 0, self.num_symbols - 1))

    def xyz_at(self, times: np.ndarray) -> np.ndarray:
        """Instantaneous XYZ emission at each time; OFF outside the stream."""
        times = np.asarray(times, dtype=float)
        indices = self.symbol_index_at(times)
        out = np.zeros(times.shape + (3,))
        valid = indices >= 0
        out[valid] = self._xyz[indices[valid]]
        return out

    # -- integration ---------------------------------------------------------

    def _cumulative_at(self, times: np.ndarray) -> np.ndarray:
        """The running integral of XYZ from t=0 to each time (single pass)."""
        clamped = np.clip(times, 0.0, self.duration)
        indices = np.minimum(
            (clamped / self.symbol_period).astype(int), self.num_symbols - 1
        )
        base = self._cumulative[indices]
        partial = (clamped - indices * self.symbol_period)[..., np.newaxis]
        return base + self._xyz[indices] * partial

    def integrate(self, start: np.ndarray, stop: np.ndarray) -> np.ndarray:
        """Integral of emitted XYZ over each [start, stop) window.

        ``start`` and ``stop`` broadcast together; the result has their
        broadcast shape plus a trailing 3.  For cyclic waveforms the integral
        accounts for whole-stream wraps analytically.
        """
        start = np.asarray(start, dtype=float)
        stop = np.asarray(stop, dtype=float)
        start, stop = np.broadcast_arrays(start, stop)
        if np.any(stop < start):
            raise ConfigurationError("integration windows must have stop >= start")

        if self.extend == EXTEND_CYCLE:
            total = self._cumulative[-1]
            laps_start, rem_start = np.divmod(start, self.duration)
            laps_stop, rem_stop = np.divmod(stop, self.duration)
            integral = (
                (laps_stop - laps_start)[..., np.newaxis] * total
                + self._cumulative_at(rem_stop)
                - self._cumulative_at(rem_start)
            )
            return integral

        return self._cumulative_at(stop) - self._cumulative_at(start)

    def mean_xyz(self, start: np.ndarray, stop: np.ndarray) -> np.ndarray:
        """Time-averaged XYZ over each window — the camera's exposure view."""
        start = np.asarray(start, dtype=float)
        stop = np.asarray(stop, dtype=float)
        start, stop = np.broadcast_arrays(start, stop)
        width = stop - start
        if np.any(width <= 0):
            raise ConfigurationError("mean_xyz windows must have positive width")
        return self.integrate(start, stop) / width[..., np.newaxis]

    # -- composition ---------------------------------------------------------

    @classmethod
    def concatenate(
        cls, waveforms: Sequence["OpticalWaveform"], extend: str = EXTEND_OFF
    ) -> "OpticalWaveform":
        """Join waveforms that share a symbol rate into one stream."""
        require(len(waveforms) >= 1, "need at least one waveform")
        rate = waveforms[0].symbol_rate
        for wf in waveforms[1:]:
            if abs(wf.symbol_rate - rate) > 1e-9:
                raise ConfigurationError(
                    "cannot concatenate waveforms with different symbol rates"
                )
        stacked = np.vstack([wf.symbol_xyz for wf in waveforms])
        return cls(stacked, rate, extend=extend)
