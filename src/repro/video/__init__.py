"""Recording containers and video-pipeline degradations.

The paper's iPhone 5S path records video and decodes *offline* (§8).  This
package provides that workflow for the simulator:

* :mod:`repro.video.recording` — a persistent container for captured frame
  sequences (pixels + the rolling-shutter timing metadata the receiver
  needs), saved as a single ``.npz`` file;
* :mod:`repro.video.compression` — the chroma degradations a phone's video
  pipeline applies before the decoder ever sees a frame (4:2:0 chroma
  subsampling and block quantization), applicable to recordings to study
  their effect on demodulation.
"""

from repro.video.compression import (
    chroma_subsample_420,
    quantize_blocks,
    simulate_video_pipeline,
)
from repro.video.recording import Recording, load_recording, save_recording

__all__ = [
    "Recording",
    "load_recording",
    "save_recording",
    "chroma_subsample_420",
    "quantize_blocks",
    "simulate_video_pipeline",
]
