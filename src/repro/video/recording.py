"""Persistent recording container for captured frame sequences.

The receiver needs more than pixels: each frame's start time, row period,
and exposure settings drive the gap accounting and band timing (paper §5).
:class:`Recording` bundles a frame sequence with that metadata and
round-trips through a single ``.npz`` file, enabling the paper's offline
workflow — record on one machine or session, decode on another.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.camera.auto_exposure import ExposureSettings
from repro.camera.frame import CapturedFrame
from repro.exceptions import ConfigurationError

#: Container format version, stored in the file for forward compatibility.
FORMAT_VERSION = 1


@dataclass
class Recording:
    """A captured video clip: frames plus their rolling-shutter metadata."""

    frames: List[CapturedFrame]
    device_name: str = "unknown"
    symbol_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.frames:
            raise ConfigurationError("a recording needs at least one frame")
        shapes = {frame.pixels.shape for frame in self.frames}
        if len(shapes) != 1:
            raise ConfigurationError(
                f"all frames must share one shape, got {sorted(shapes)}"
            )

    @property
    def duration_s(self) -> float:
        """Wall time from first frame start to the end of the last period."""
        first = self.frames[0].start_time
        last = self.frames[-1].start_time
        if len(self.frames) > 1:
            period = (last - first) / (len(self.frames) - 1)
        else:
            period = self.frames[0].readout_duration
        return last - first + period

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    def map_pixels(self, transform) -> "Recording":
        """A new recording with ``transform`` applied to every frame's pixels.

        ``transform`` receives and returns a ``(rows, cols, 3)`` uint8 array;
        timing metadata is preserved.  Used to apply video-pipeline
        degradations to a clean capture.
        """
        frames = [
            CapturedFrame(
                index=frame.index,
                pixels=transform(frame.pixels),
                start_time=frame.start_time,
                row_period=frame.row_period,
                exposure=frame.exposure,
            )
            for frame in self.frames
        ]
        return Recording(
            frames=frames,
            device_name=self.device_name,
            symbol_rate=self.symbol_rate,
        )


def save_recording(recording: Recording, path: Union[str, Path]) -> Path:
    """Serialize a recording to one compressed ``.npz`` file."""
    path = Path(path)
    pixels = np.stack([frame.pixels for frame in recording.frames])
    np.savez_compressed(
        path,
        version=np.array([FORMAT_VERSION]),
        pixels=pixels,
        indices=np.array([f.index for f in recording.frames]),
        start_times=np.array([f.start_time for f in recording.frames]),
        row_periods=np.array([f.row_period for f in recording.frames]),
        exposures=np.array([f.exposure.exposure_s for f in recording.frames]),
        isos=np.array([f.exposure.iso for f in recording.frames]),
        device_name=np.array([recording.device_name]),
        symbol_rate=np.array([recording.symbol_rate]),
    )
    # np.savez appends .npz when missing; normalize the reported path.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_recording(path: Union[str, Path]) -> Recording:
    """Load a recording saved by :func:`save_recording`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"recording file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"recording format version {version} not supported "
                f"(expected {FORMAT_VERSION})"
            )
        pixels = data["pixels"]
        frames = [
            CapturedFrame(
                index=int(data["indices"][i]),
                pixels=pixels[i],
                start_time=float(data["start_times"][i]),
                row_period=float(data["row_periods"][i]),
                exposure=ExposureSettings(
                    exposure_s=float(data["exposures"][i]),
                    iso=float(data["isos"][i]),
                ),
            )
            for i in range(pixels.shape[0])
        ]
        return Recording(
            frames=frames,
            device_name=str(data["device_name"][0]),
            symbol_rate=float(data["symbol_rate"][0]),
        )
