"""Video-pipeline chroma degradations.

The paper's offline (iPhone) path decodes from *recorded video*, which has
been through the phone's encoder: chroma is stored at quarter resolution
(4:2:0 subsampling) and quantized per block.  Both operations blur and
perturb exactly the quantity ColorBars modulates — per-scanline chroma —
so their strength directly trades against the usable symbol rate.

These functions apply the degradations to captured frames (via
:meth:`repro.video.recording.Recording.map_pixels`), letting experiments
separate sensor effects from encoder effects.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

#: BT.601-ish RGB <-> YCbCr matrices (full-range).
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def _to_ycbcr(pixels: np.ndarray) -> np.ndarray:
    rgb = pixels.astype(float)
    ycbcr = rgb @ _RGB_TO_YCBCR.T
    ycbcr[..., 1:] += 128.0
    return ycbcr


def _to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    shifted = ycbcr.copy()
    shifted[..., 1:] -= 128.0
    rgb = shifted @ _YCBCR_TO_RGB.T
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def chroma_subsample_420(pixels: np.ndarray) -> np.ndarray:
    """Apply 4:2:0 chroma subsampling to an RGB uint8 frame.

    Chroma (Cb, Cr) is averaged over 2x2 blocks and replicated back —
    halving the *vertical* chroma resolution that rolling-shutter bands
    live in.  Luma is untouched.
    """
    _check_frame(pixels)
    ycbcr = _to_ycbcr(pixels)
    rows, cols = pixels.shape[:2]
    even_rows, even_cols = rows - rows % 2, cols - cols % 2
    chroma = ycbcr[:even_rows, :even_cols, 1:]
    blocks = chroma.reshape(even_rows // 2, 2, even_cols // 2, 2, 2)
    means = blocks.mean(axis=(1, 3), keepdims=True)
    ycbcr[:even_rows, :even_cols, 1:] = np.broadcast_to(
        means, blocks.shape
    ).reshape(even_rows, even_cols, 2)
    return _to_rgb(ycbcr)


def quantize_blocks(
    pixels: np.ndarray, block_rows: int = 8, chroma_step: float = 8.0
) -> np.ndarray:
    """Quantize chroma per horizontal block stripe.

    A cheap stand-in for the encoder's per-macroblock quantization: within
    each ``block_rows``-scanline stripe, chroma means are snapped to a
    ``chroma_step`` grid.  Larger steps model lower bitrates.
    """
    _check_frame(pixels)
    if block_rows <= 0:
        raise ConfigurationError(f"block_rows must be positive, got {block_rows}")
    if chroma_step <= 0:
        raise ConfigurationError(f"chroma_step must be positive, got {chroma_step}")
    ycbcr = _to_ycbcr(pixels)
    rows = pixels.shape[0]
    for start in range(0, rows, block_rows):
        stripe = ycbcr[start : start + block_rows, :, 1:]
        mean = stripe.mean(axis=(0, 1), keepdims=True)
        snapped = np.round(mean / chroma_step) * chroma_step
        ycbcr[start : start + block_rows, :, 1:] = stripe + (snapped - mean)
    return _to_rgb(ycbcr)


def simulate_video_pipeline(
    pixels: np.ndarray,
    subsample: bool = True,
    block_rows: int = 8,
    chroma_step: float = 6.0,
) -> np.ndarray:
    """The combined encoder path: 4:2:0 subsampling then block quantization.

    Apply to a recording with ``recording.map_pixels(simulate_video_pipeline)``
    (or a ``functools.partial`` for non-default strengths) to study how the
    offline-decoding path degrades versus live sensor frames.
    """
    out = pixels
    if subsample:
        out = chroma_subsample_420(out)
    out = quantize_blocks(out, block_rows=block_rows, chroma_step=chroma_step)
    return out


def _check_frame(pixels: np.ndarray) -> None:
    if (
        not isinstance(pixels, np.ndarray)
        or pixels.ndim != 3
        or pixels.shape[2] != 3
        or pixels.dtype != np.uint8
    ):
        raise ConfigurationError(
            "expected a (rows, cols, 3) uint8 frame, got "
            f"{getattr(pixels, 'shape', None)} {getattr(pixels, 'dtype', None)}"
        )
