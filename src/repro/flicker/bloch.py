"""Bloch's-law temporal summation of an optical waveform.

Within the eye's critical duration the perceived stimulus is the time
integral of intensity (paper Eq. 1); the perceived *color* is the
chromaticity of the time-averaged tristimulus over that window (paper
Eq. 2).  These functions evaluate that average over sliding windows of a
transmitted waveform so flicker analyses can find the worst-case excursion
from white.
"""

from __future__ import annotations

import numpy as np

from repro.color.ciexyz import XYZ_to_xy
from repro.exceptions import ConfigurationError
from repro.phy.waveform import OpticalWaveform
from repro.util.validation import require_positive

#: Critical duration of human temporal summation for photopic color vision.
#: The literature places it at roughly 40-100 ms; 50 ms also matches the
#: ~20 Hz flicker-fusion regime the paper's §4 operates in.
BLOCH_CRITICAL_DURATION_S = 0.05


def perceived_chromaticity(
    waveform: OpticalWaveform,
    start: float,
    critical_duration: float = BLOCH_CRITICAL_DURATION_S,
) -> np.ndarray:
    """Chromaticity perceived for a window starting at ``start``.

    The eye integrates XYZ over ``[start, start + critical_duration]``; the
    perceived color is the chromaticity of that integral.
    """
    require_positive(critical_duration, "critical_duration")
    mean_xyz = waveform.mean_xyz(start, start + critical_duration)
    return XYZ_to_xy(mean_xyz)


def perceived_chromaticity_series(
    waveform: OpticalWaveform,
    critical_duration: float = BLOCH_CRITICAL_DURATION_S,
    step: float | None = None,
) -> np.ndarray:
    """Perceived chromaticity for every sliding window across a waveform.

    Windows advance by ``step`` (default: one symbol period) and must fit
    inside the waveform for non-cyclic streams.  Returns ``(W, 2)`` xy
    points — the stimulus trajectory the eye actually sees.
    """
    require_positive(critical_duration, "critical_duration")
    if step is None:
        step = waveform.symbol_period
    require_positive(step, "step")
    last_start = waveform.duration - critical_duration
    if last_start < 0:
        raise ConfigurationError(
            f"waveform of {waveform.duration:.4f}s is shorter than the "
            f"critical duration {critical_duration:.4f}s"
        )
    starts = np.arange(0.0, last_start + step / 2, step)
    stops = starts + critical_duration
    mean_xyz = waveform.mean_xyz(starts, stops)
    return XYZ_to_xy(mean_xyz)


def worst_case_excursion(
    waveform: OpticalWaveform,
    white_xy: np.ndarray,
    critical_duration: float = BLOCH_CRITICAL_DURATION_S,
    step: float | None = None,
) -> float:
    """Largest chromaticity distance from white over all perception windows."""
    series = perceived_chromaticity_series(waveform, critical_duration, step)
    white_xy = np.asarray(white_xy, dtype=float)
    distances = np.hypot(series[:, 0] - white_xy[0], series[:, 1] - white_xy[1])
    return float(distances.max())
