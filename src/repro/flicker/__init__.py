"""Color-flicker modelling (paper §4).

The human visual system averages incoming light over a *critical duration*
(Bloch's law of temporal summation); below the flicker-fusion threshold,
chromaticity excursions of the averaged stimulus are perceived as color
flicker.  This package models the perceived color of a symbol stream and
derives the minimum white-symbol percentage that keeps perception at white —
the simulation substitute for the paper's 10-volunteer study behind Fig 3(b).
"""

from repro.flicker.bloch import (
    BLOCH_CRITICAL_DURATION_S,
    perceived_chromaticity,
    perceived_chromaticity_series,
)
from repro.flicker.threshold import (
    FlickerModel,
    required_white_fraction,
    white_fraction_table,
)

__all__ = [
    "BLOCH_CRITICAL_DURATION_S",
    "perceived_chromaticity",
    "perceived_chromaticity_series",
    "FlickerModel",
    "required_white_fraction",
    "white_fraction_table",
]
