"""The white-symbol requirement model behind Fig 3(b).

Random data symbols averaged over a critical duration drift away from white;
the drift shrinks as more symbols fit into the window (central-limit
averaging), so higher symbol frequencies need fewer dedicated white symbols.
The paper measured the minimum white percentage with 10 volunteers; here the
same curve is *derived* from the Bloch model:

with ``n = f * t_c`` random symbols per critical window, the chromaticity of
the window mean deviates from white with standard deviation
``sigma_c / sqrt(n)`` where ``sigma_c`` is the constellation's own xy spread.
A fraction ``w`` of dedicated whites scales the deviation by ``(1 - w)``.
The perception limit requires the high-quantile excursion to stay below the
chromaticity JND, giving::

    w(f) = max(0, 1 - threshold * sqrt(f * t_c) / (z * sigma_c))

— a monotone-decreasing curve matching the shape and operating points of the
paper's empirical Fig 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.csk.constellation import Constellation
from repro.flicker.bloch import BLOCH_CRITICAL_DURATION_S
from repro.util.validation import require_positive

#: Chromaticity-plane distance (CIE xy) at which a color cast on a white
#: luminaire becomes noticeable.  Comparable to a several-step MacAdam
#: ellipse; calibrated so the model lands on the paper's operating points:
#: ~20% white symbols suffice at 4 kHz (the §5 example's illumination ratio
#: of 4/5) while ~70-80% are needed at 500 Hz, matching Fig 3(b)'s shape.
XY_FLICKER_THRESHOLD = 0.0294

#: High quantile of the excursion distribution that must stay sub-threshold
#: (the paper's "minimum percentage observed by 10 volunteers" is a
#: worst-observer criterion, i.e. a high quantile, not the mean).
EXCURSION_QUANTILE_Z = 2.6

#: RMS xy spread of "a randomly chosen color from the constellation
#: triangle" — the stimulus of the paper's Fig 3(b) experiment.  The paper
#: derives ONE white-ratio curve from that experiment and applies it to
#: every modulation, so the system default uses this reference spread
#: rather than a per-constellation value.
REFERENCE_CHROMA_SPREAD = 0.22


def constellation_chroma_spread(constellation: Constellation) -> float:
    """RMS xy distance of constellation symbols from their white mean."""
    points = constellation.as_array()
    mean = points.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum((points - mean) ** 2, axis=1))))


def required_white_fraction(
    symbol_rate: float,
    chroma_spread: float,
    critical_duration: float = BLOCH_CRITICAL_DURATION_S,
    threshold: float = XY_FLICKER_THRESHOLD,
    quantile_z: float = EXCURSION_QUANTILE_Z,
) -> float:
    """Minimum white-symbol fraction for flicker-free operation at a rate."""
    require_positive(symbol_rate, "symbol_rate")
    require_positive(chroma_spread, "chroma_spread")
    require_positive(critical_duration, "critical_duration")
    symbols_per_window = symbol_rate * critical_duration
    if symbols_per_window < 1:
        # Individual symbols are directly visible: communication at this rate
        # cannot be made flicker-free with white insertion alone.
        return 1.0
    deviation = quantile_z * chroma_spread / np.sqrt(symbols_per_window)
    if deviation <= threshold:
        return 0.0
    return float(min(1.0, 1.0 - threshold / deviation))


def white_fraction_table(
    symbol_rates: Sequence[float],
    chroma_spread: float,
    **kwargs,
) -> Dict[float, float]:
    """Fig 3(b) as a table: rate -> minimum white fraction."""
    return {
        rate: required_white_fraction(rate, chroma_spread, **kwargs)
        for rate in symbol_rates
    }


@dataclass
class FlickerModel:
    """Bundles the perceptual constants with a constellation's spread.

    The transmitter asks this model how many illumination symbols it must
    mix in at its operating symbol rate; the benches sweep it across rates to
    regenerate Fig 3(b).
    """

    chroma_spread: float
    critical_duration: float = BLOCH_CRITICAL_DURATION_S
    threshold: float = XY_FLICKER_THRESHOLD
    quantile_z: float = EXCURSION_QUANTILE_Z

    @classmethod
    def for_constellation(cls, constellation: Constellation) -> "FlickerModel":
        """Model tailored to one constellation's own chroma spread."""
        return cls(chroma_spread=constellation_chroma_spread(constellation))

    @classmethod
    def reference(cls) -> "FlickerModel":
        """The paper's single Fig 3(b) curve: random colors in the triangle.

        Used for the system's illumination-ratio choice so every modulation
        shares one eta(rate), as the paper's evaluation does.
        """
        return cls(chroma_spread=REFERENCE_CHROMA_SPREAD)

    def required_white_fraction(self, symbol_rate: float) -> float:
        return required_white_fraction(
            symbol_rate,
            self.chroma_spread,
            self.critical_duration,
            self.threshold,
            self.quantile_z,
        )

    def illumination_ratio(self, symbol_rate: float, margin: float = 0.0) -> float:
        """The packetizer's eta: the data share after reserving whites.

        ``margin`` adds extra whites beyond the perceptual minimum.  The
        result is clamped to [0.05, 1] so a pathological configuration still
        yields a usable (if slow) link rather than a zero-data packet.
        """
        white = min(1.0, self.required_white_fraction(symbol_rate) + margin)
        return float(np.clip(1.0 - white, 0.05, 1.0))
