"""ColorBars core: the public system-level API.

:class:`~repro.core.config.SystemConfig` captures everything transmitter and
receiver share; :class:`~repro.core.system.ColorBarsTransmitter` turns
payload bytes into the on-air optical waveform;
:func:`~repro.core.system.make_receiver` builds the matching receiver; and
:mod:`~repro.core.metrics` computes the paper's three evaluation metrics
(symbol error rate, throughput, goodput).
"""

from repro.core.config import SystemConfig
from repro.core.metrics import (
    LinkMetrics,
    align_ground_truth,
    symbol_error_rate,
)
from repro.core.system import ColorBarsTransmitter, make_receiver

__all__ = [
    "SystemConfig",
    "LinkMetrics",
    "align_ground_truth",
    "symbol_error_rate",
    "ColorBarsTransmitter",
    "make_receiver",
]
