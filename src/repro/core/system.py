"""The ColorBars transmitter and the matching receiver factory.

:class:`ColorBarsTransmitter` implements the full TX chain of Fig 2(b):
payload bytes -> Reed-Solomon blocks -> packets (header + delimiter) -> CSK
symbols with illumination whites -> PWM-driven tri-LED waveform, with
calibration packets injected at the configured cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.camera.sensor import SensorTiming
from repro.core.config import SystemConfig
from repro.csk.modulator import CskModulator
from repro.exceptions import ConfigurationError
from repro.phy.symbols import LogicalSymbol
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.rx.receiver import ColorBarsReceiver
from repro.rx.streaming import StreamingReceiver


@dataclass
class TransmissionPlan:
    """The complete on-air schedule for one broadcast cycle.

    ``symbols`` is the cyclic symbol stream; ``codewords`` the RS codewords
    it carries (ground truth for evaluation); ``payload`` the original bytes.
    """

    symbols: List[LogicalSymbol]
    codewords: List[bytes]
    payload: bytes
    calibration_packets: int
    data_packets: int

    @property
    def num_symbols(self) -> int:
        return len(self.symbols)


class ColorBarsTransmitter:
    """Builds symbol schedules and optical waveforms from payload bytes."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.packetizer = config.make_packetizer()
        self.codec = config.make_codec()
        self.modulator = CskModulator(
            config.constellation, config.emitter, config.symbol_rate
        )

    # -- schedule construction ---------------------------------------------

    def plan(self, payload: bytes) -> TransmissionPlan:
        """Lay out one broadcast cycle for ``payload``.

        The payload is RS-encoded into codewords, each carried by one data
        packet; calibration packets are interleaved so that, at the symbol
        rate, they recur at the configured calibration rate (default 5 Hz).
        The cycle repeats for continuous broadcast.
        """
        if not payload:
            raise ConfigurationError("payload must not be empty")
        codewords = self.codec.encode_blocks(payload)
        symbols_between_calibrations = int(
            self.config.symbol_rate / self.config.calibration_rate_hz
        )

        symbols: List[LogicalSymbol] = []
        data_packets = 0
        calibration_packets = 0
        since_calibration = symbols_between_calibrations  # calibrate first

        for codeword in codewords:
            if since_calibration >= symbols_between_calibrations:
                calibration = self.packetizer.build_calibration_packet()
                symbols.extend(calibration)
                calibration_packets += 1
                since_calibration = len(calibration)
            packet = self.packetizer.build_data_packet(codeword)
            symbols.extend(packet)
            data_packets += 1
            since_calibration += len(packet)

        return TransmissionPlan(
            symbols=symbols,
            codewords=codewords,
            payload=payload,
            calibration_packets=calibration_packets,
            data_packets=data_packets,
        )

    def waveform(
        self, plan_or_payload, extend: str = EXTEND_CYCLE
    ) -> OpticalWaveform:
        """The on-air optical waveform for a plan (or payload bytes)."""
        if isinstance(plan_or_payload, TransmissionPlan):
            plan = plan_or_payload
        else:
            plan = self.plan(bytes(plan_or_payload))
        return self.modulator.waveform(plan.symbols, extend=extend)

    # -- capacity helpers ------------------------------------------------

    def payload_bytes_per_packet(self) -> int:
        """k: payload bytes carried per data packet."""
        return self.codec.k

    def airtime_per_packet(self) -> float:
        """Seconds one data packet occupies on air."""
        return (
            self.packetizer.packet_length(self.codec.n) / self.config.symbol_rate
        )


def make_receiver(
    config: SystemConfig,
    timing: SensorTiming,
    **receiver_kwargs,
) -> ColorBarsReceiver:
    """Build the receiver matching a system config and a camera's timing.

    ``timing`` supplies the rows-per-symbol band width; extra keyword
    arguments pass through to :class:`ColorBarsReceiver` (thresholds etc.).
    """
    return ColorBarsReceiver(
        packetizer=config.make_packetizer(),
        codec=config.make_codec(),
        symbol_rate=config.symbol_rate,
        rows_per_symbol=timing.rows_per_symbol(config.symbol_rate),
        **receiver_kwargs,
    )


def make_streaming_receiver(
    config: SystemConfig,
    timing: SensorTiming,
    **receiver_kwargs,
) -> StreamingReceiver:
    """Build a streaming session receiver for a config and camera timing.

    Same contract as :func:`make_receiver` wrapped in the incremental
    facade: feed frames as they arrive, read the byte-identical report
    after ``finish()``.
    """
    return StreamingReceiver(make_receiver(config, timing, **receiver_kwargs))
