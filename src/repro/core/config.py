"""System configuration shared by transmitter and receiver.

One :class:`SystemConfig` fixes every parameter both ends of a ColorBars
link must agree on: the CSK order, symbol rate, the receiver loss ratio the
Reed-Solomon code is dimensioned for (paper §5), the illumination ratio
(paper §4 / Fig 3b), and the calibration cadence (§6.2).  Factory methods
derive the concrete building blocks — constellation, mapper, packetizer,
codec — so the two ends are constructed from the same recipe and cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.csk.constellation import (
    Constellation,
    design_constellation,
    SUPPORTED_ORDERS,
)
from repro.csk.mapping import SymbolMapper
from repro.exceptions import ConfigurationError
from repro.fec.reed_solomon import ReedSolomonCodec, RSParams, rs_params_for_loss
from repro.flicker.threshold import FlickerModel
from repro.packet.packetizer import PacketConfig, Packetizer
from repro.phy.led import TriLedEmitter, typical_tri_led
from repro.util.validation import (
    require,
    require_positive,
    require_probability,
)

#: Calibration packets per second (paper §8: "5 calibration packets per second").
DEFAULT_CALIBRATION_RATE_HZ = 5.0


@dataclass
class SystemConfig:
    """The shared contract of a ColorBars link.

    Parameters
    ----------
    csk_order:
        4, 8, 16 or 32 (the paper's evaluation set).
    symbol_rate:
        Symbols per second (the paper sweeps 1000-4000 Hz).
    design_loss_ratio:
        Inter-frame loss ratio ``l`` the RS code is sized for; the paper
        notes a deployment must provision for the worst receiver it serves.
    frame_rate:
        Receiver frame rate (30 fps for both evaluated phones).
    illumination_ratio:
        Data share eta of body slots.  ``None`` derives it from the flicker
        model at the configured symbol rate (Fig 3b), which is how the paper
        chooses it.
    calibration_rate_hz:
        Calibration packets per second.
    gray_mapping:
        Neighbor-aware bit labeling (True) or identity labeling (ablation).
    custom_constellation:
        Replace the standard design with a caller-supplied constellation of
        the same order — e.g. one produced by
        :func:`repro.csk.optimizer.optimize_constellation` for a specific
        camera.  Both ends must use the same design.
    """

    csk_order: int = 8
    symbol_rate: float = 2000.0
    design_loss_ratio: float = 0.25
    frame_rate: float = 30.0
    illumination_ratio: Optional[float] = None
    calibration_rate_hz: float = DEFAULT_CALIBRATION_RATE_HZ
    gray_mapping: bool = True
    emitter: TriLedEmitter = field(default_factory=typical_tri_led)
    custom_constellation: Optional[Constellation] = None

    def __post_init__(self) -> None:
        if self.csk_order not in SUPPORTED_ORDERS:
            raise ConfigurationError(
                f"csk_order must be one of {SUPPORTED_ORDERS}, "
                f"got {self.csk_order}"
            )
        require_positive(self.symbol_rate, "symbol_rate")
        require_positive(self.frame_rate, "frame_rate")
        require(
            0 <= self.design_loss_ratio < 0.5,
            "design_loss_ratio must be in [0, 0.5) for a decodable RS sizing, "
            f"got {self.design_loss_ratio}",
        )
        require_positive(self.calibration_rate_hz, "calibration_rate_hz")
        if self.illumination_ratio is not None:
            require_probability(self.illumination_ratio, "illumination_ratio")
            require(
                self.illumination_ratio > 0,
                "illumination_ratio must be > 0",
            )
        if self.custom_constellation is not None:
            if self.custom_constellation.order != self.csk_order:
                raise ConfigurationError(
                    f"custom constellation has order "
                    f"{self.custom_constellation.order}, config says "
                    f"{self.csk_order}"
                )
            self._constellation = self.custom_constellation
        else:
            self._constellation = design_constellation(
                self.csk_order, self.emitter.gamut
            )
        self.emitter.pwm.check_symbol_rate(self.symbol_rate)

    # -- derived quantities --------------------------------------------------

    @property
    def constellation(self) -> Constellation:
        return self._constellation

    @property
    def bits_per_symbol(self) -> int:
        return self._constellation.bits_per_symbol

    def effective_illumination_ratio(self) -> float:
        """Configured eta, or the flicker model's choice for this rate.

        The automatic choice uses the *reference* flicker curve (random
        colors in the triangle), matching the paper's single Fig 3(b)
        experiment; every modulation then shares one eta(rate).
        """
        if self.illumination_ratio is not None:
            return self.illumination_ratio
        return FlickerModel.reference().illumination_ratio(self.symbol_rate)

    def rs_params(self) -> RSParams:
        """Reed-Solomon dimensioning per the paper's §5 rule."""
        return rs_params_for_loss(
            symbol_rate=self.symbol_rate,
            frame_rate=self.frame_rate,
            loss_ratio=self.design_loss_ratio,
            bits_per_symbol=self.bits_per_symbol,
            illumination_ratio=self.effective_illumination_ratio(),
        )

    # -- factories -------------------------------------------------------

    def make_mapper(self) -> SymbolMapper:
        return SymbolMapper(self._constellation, gray=self.gray_mapping)

    def make_packetizer(self) -> Packetizer:
        return Packetizer(
            self.make_mapper(),
            PacketConfig(illumination_ratio=self.effective_illumination_ratio()),
        )

    def make_codec(self) -> ReedSolomonCodec:
        params = self.rs_params()
        return ReedSolomonCodec(params.n, params.k)

    def describe(self) -> str:
        """One-line human-readable summary (logs and bench output)."""
        params = self.rs_params()
        return (
            f"{self.csk_order}-CSK @ {self.symbol_rate:.0f} sym/s, "
            f"eta={self.effective_illumination_ratio():.2f}, "
            f"RS({params.n},{params.k}), l_design={self.design_loss_ratio}"
        )
