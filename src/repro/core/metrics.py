"""Evaluation metrics: symbol error rate, throughput, goodput (paper §8).

* **SER** — fraction of received bands demodulated to the wrong symbol,
  judged against the transmitted ground truth aligned by on-air time.
* **Throughput** — raw received data bits per second: data-class symbols
  received per second times bits per symbol, illumination symbols excluded,
  no error correction applied (paper's Fig 10 definition).
* **Goodput** — successfully delivered payload bits per second after packet
  reassembly and Reed-Solomon decoding (Fig 11 definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.csk.demodulator import DecisionKind
from repro.phy.symbols import LogicalSymbol, SymbolKind
from repro.phy.waveform import OpticalWaveform
from repro.rx.detector import ReceivedBand
from repro.rx.receiver import ReceiverReport
from repro.util.validation import require_positive


@dataclass(frozen=True)
class GroundTruthMatch:
    """One received band paired with the symbol actually on air."""

    band: ReceivedBand
    truth: LogicalSymbol

    @property
    def correct(self) -> bool:
        decision = self.band.decision
        if self.truth.kind is SymbolKind.OFF:
            return decision.kind is DecisionKind.OFF
        if self.truth.kind is SymbolKind.WHITE:
            return decision.kind is DecisionKind.WHITE
        return (
            decision.kind is DecisionKind.DATA
            and decision.index == self.truth.index
        )


def align_ground_truth(
    bands: Sequence[ReceivedBand],
    symbols: Sequence[LogicalSymbol],
    waveform: OpticalWaveform,
) -> List[GroundTruthMatch]:
    """Pair each received band with the transmitted symbol at its mid-time.

    The link simulator knows the cyclic transmitted stream; a band's
    exposure midpoint indexes into it.  Bands whose midpoint falls outside a
    non-cyclic waveform are skipped.
    """
    if not bands:
        return []
    mid_times = np.array([band.mid_time for band in bands])
    indices = waveform.symbol_index_at(mid_times)
    return [
        GroundTruthMatch(band=band, truth=symbols[index])
        for band, index in zip(bands, indices.tolist())
        if index >= 0
    ]


def symbol_error_rate(matches: Sequence[GroundTruthMatch]) -> float:
    """Fraction of aligned bands demodulated incorrectly."""
    if not matches:
        return 0.0
    wrong = sum(1 for m in matches if not m.correct)
    return wrong / len(matches)


def data_symbol_error_rate(matches: Sequence[GroundTruthMatch]) -> float:
    """SER restricted to bands whose transmitted symbol carried data.

    This is the quantity Fig 9 reports: inter-symbol-interference errors on
    the color constellation, with the trivially-detectable OFF/white symbols
    excluded.
    """
    data_matches = [m for m in matches if m.truth.kind is SymbolKind.DATA]
    if not data_matches:
        return 0.0
    wrong = sum(1 for m in data_matches if not m.correct)
    return wrong / len(data_matches)


@dataclass(frozen=True)
class LinkMetrics:
    """The §8 metric triple plus the counters behind it."""

    symbol_error_rate: float
    data_symbol_error_rate: float
    throughput_bps: float
    goodput_bps: float
    duration_s: float
    symbols_compared: int
    data_symbols_received: int
    packets_decoded: int
    packets_seen: int
    inter_frame_loss_ratio: float

    def summary(self) -> str:
        return (
            f"SER={self.data_symbol_error_rate:.4f} "
            f"throughput={self.throughput_bps / 1000:.2f} kbps "
            f"goodput={self.goodput_bps / 1000:.2f} kbps "
            f"(packets {self.packets_decoded}/{self.packets_seen}, "
            f"loss={self.inter_frame_loss_ratio:.3f})"
        )


def compute_link_metrics(
    report: ReceiverReport,
    matches: Sequence[GroundTruthMatch],
    bits_per_symbol: int,
    payload_bytes_per_packet: int,
    duration_s: float,
) -> LinkMetrics:
    """Assemble the metric triple from a receive session.

    Throughput counts received *data-class* bands (the paper excludes
    illumination whites and, implicitly, the o/w framing symbols);
    goodput counts k payload bytes per successfully decoded packet.
    """
    require_positive(duration_s, "duration_s")
    require_positive(bits_per_symbol, "bits_per_symbol")
    require_positive(payload_bytes_per_packet, "payload_bytes_per_packet")

    data_received = sum(
        1
        for band in report.bands
        if band.decision.kind is DecisionKind.DATA
    )
    throughput = data_received * bits_per_symbol / duration_s
    goodput = report.packets_decoded * payload_bytes_per_packet * 8 / duration_s

    total_opportunities = report.symbols_detected + report.symbols_lost_in_gaps
    loss_ratio = (
        report.symbols_lost_in_gaps / total_opportunities
        if total_opportunities
        else 0.0
    )
    return LinkMetrics(
        symbol_error_rate=symbol_error_rate(matches),
        data_symbol_error_rate=data_symbol_error_rate(matches),
        throughput_bps=throughput,
        goodput_bps=goodput,
        duration_s=duration_s,
        symbols_compared=len(matches),
        data_symbols_received=data_received,
        packets_decoded=report.packets_decoded,
        packets_seen=report.packets_seen,
        inter_frame_loss_ratio=loss_ratio,
    )
