"""ColorBars packetization (paper §5-§6).

On-air packet layout::

    [delimiter "owo"] [flag] [size field] [body]

* data packets use the 5-symbol flag ``owowo``; the size field (3 data
  symbols) carries the Reed-Solomon codeword length in bytes; the body is the
  codeword's data symbols with illumination (white) symbols interleaved on a
  deterministic schedule,
* calibration packets use the 7-symbol flag ``owowowo`` followed by every
  constellation symbol in index order.

'o' is the LED-off dark symbol, 'w' the white illumination symbol — both
trivially separable from color data, which is what makes the preambles
detectable before any color calibration.
"""

from repro.packet.framing import (
    CALIBRATION_FLAG,
    DATA_FLAG,
    DELIMITER,
    PacketKind,
    find_preambles,
    preamble_symbols,
)
from repro.packet.packetizer import (
    PacketConfig,
    Packetizer,
    white_schedule,
)

__all__ = [
    "CALIBRATION_FLAG",
    "DATA_FLAG",
    "DELIMITER",
    "PacketKind",
    "find_preambles",
    "preamble_symbols",
    "PacketConfig",
    "Packetizer",
    "white_schedule",
]
