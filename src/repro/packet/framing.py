"""Preamble sequences and their detection in received symbol streams.

The delimiter and flags are built from OFF ('o') and WHITE ('w') symbols
only, so a receiver can spot packet boundaries before it has any color
calibration (paper §6.2: the calibration flag's o/w alternation lets a new
receiver latch onto the very first calibration packet).

Detection operates on the compact character stream produced by the
demodulator ('o' / 'w' / decimal index per band) and is tolerant of data
symbols that happen to decode near white: a preamble must match the full
delimiter + flag sequence, and the longest flag wins at any position.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

from repro.phy.symbols import LogicalSymbol, symbols_from_string

#: Inter-packet delimiter (paper §5: "owo" with OFF and WHITE symbols).
DELIMITER = "owo"

#: Data-packet flag (paper §5: five symbols "owowo").
DATA_FLAG = "owowo"

#: Calibration-packet flag (paper §6.2: "owowowo").
CALIBRATION_FLAG = "owowowo"


class PacketKind(Enum):
    """Kinds of on-air packets."""

    DATA = "data"
    CALIBRATION = "calibration"


_FLAG_OF_KIND = {
    PacketKind.DATA: DATA_FLAG,
    PacketKind.CALIBRATION: CALIBRATION_FLAG,
}


def flag_for(kind: PacketKind) -> str:
    """The o/w flag string for a packet kind."""
    return _FLAG_OF_KIND[kind]


def preamble_symbols(kind: PacketKind) -> List[LogicalSymbol]:
    """Delimiter + flag as logical symbols, ready for transmission."""
    return symbols_from_string(DELIMITER + flag_for(kind))


@dataclass(frozen=True)
class PreambleMatch:
    """One detected preamble: where it starts, its kind, and its length."""

    start: int
    kind: PacketKind

    @property
    def length(self) -> int:
        return len(DELIMITER) + len(flag_for(self.kind))

    @property
    def body_start(self) -> int:
        """Index of the first symbol after the preamble."""
        return self.start + self.length


def find_preambles(chars: Sequence[str]) -> List[PreambleMatch]:
    """Locate every preamble in a received symbol-character stream.

    ``chars`` is the per-band compact notation ('o', 'w', or a decimal data
    index).  At each position the *calibration* preamble is tried before the
    data preamble because its flag extends the data flag ("owowowo" begins
    with "owowo"); without longest-match-first every calibration packet would
    be mistaken for a data packet with a corrupt body.  Matches never overlap:
    scanning resumes after a match's preamble.
    """
    stream = "".join("o" if c == "o" else ("w" if c == "w" else "d") for c in chars)
    calibration = DELIMITER + CALIBRATION_FLAG
    data = DELIMITER + DATA_FLAG
    matches: List[PreambleMatch] = []
    position = 0
    end = len(stream)
    while position < end:
        if stream.startswith(calibration, position):
            matches.append(PreambleMatch(position, PacketKind.CALIBRATION))
            position += len(calibration)
        elif stream.startswith(data, position):
            matches.append(PreambleMatch(position, PacketKind.DATA))
            position += len(data)
        else:
            position += 1
    return matches


def strip_char_stream(symbols: Sequence[LogicalSymbol]) -> List[str]:
    """Compact character rendering of a logical symbol stream (TX-side tests)."""
    return [s.to_char() for s in symbols]
