"""Building on-air packets from Reed-Solomon codewords (paper §5).

The packetizer turns codeword bytes into the full logical symbol stream:
preamble, size field, and the body with illumination (white) symbols
interleaved on a deterministic schedule.  Because the schedule is a pure
function of ``(data_symbol_count, illumination_ratio)``, the receiver can
reconstruct which body slots were whites even when the tail of a packet was
lost in the inter-frame gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.csk.mapping import SymbolMapper
from repro.exceptions import PacketError, PacketTooLargeError
from repro.packet.framing import PacketKind, preamble_symbols
from repro.phy.symbols import LogicalSymbol, data_symbol, white_symbol
from repro.util.bitstream import bytes_to_bits
from repro.util.validation import require, require_probability


#: Size-field width from the paper: three data symbols.
SIZE_FIELD_SYMBOLS = 3


def white_schedule(num_data: int, illumination_ratio: float) -> List[bool]:
    """Slot layout for a body of ``num_data`` data symbols.

    Returns a boolean list over all body slots: ``True`` marks an
    illumination (white) slot.  With illumination ratio ``eta`` (the paper's
    useful-data share), the body holds ``round(num_data / eta)`` slots and
    whites are spread evenly by a Bresenham-style rule, so both ends compute
    the identical layout independently.
    """
    require(num_data >= 0, f"num_data must be >= 0, got {num_data}")
    require_probability(illumination_ratio, "illumination_ratio")
    require(illumination_ratio > 0, "illumination_ratio must be > 0")
    if num_data == 0:
        return []
    total = max(int(round(num_data / illumination_ratio)), num_data)
    whites = total - num_data
    layout: List[bool] = []
    accumulated = 0
    for slot in range(total):
        threshold_before = (slot * whites) // total
        threshold_after = ((slot + 1) * whites) // total
        is_white = threshold_after > threshold_before
        layout.append(is_white)
        accumulated += int(is_white)
    # The integer rule can drift by one at the end; patch deterministically.
    while accumulated < whites:
        layout.append(True)
        accumulated += 1
    return layout


@dataclass(frozen=True)
class PacketConfig:
    """Everything both ends must agree on to frame packets.

    ``illumination_ratio`` is eta from §5: the share of body slots carrying
    data (the remainder are white illumination symbols, per Fig. 3b).
    """

    illumination_ratio: float = 0.8
    size_field_symbols: int = SIZE_FIELD_SYMBOLS

    def __post_init__(self) -> None:
        require_probability(self.illumination_ratio, "illumination_ratio")
        require(self.illumination_ratio > 0, "illumination_ratio must be > 0")
        require(
            self.size_field_symbols >= 1,
            f"size_field_symbols must be >= 1, got {self.size_field_symbols}",
        )


class Packetizer:
    """Builds data and calibration packets for one constellation/mapper."""

    def __init__(self, mapper: SymbolMapper, config: PacketConfig) -> None:
        self.mapper = mapper
        self.config = config

    @property
    def bits_per_symbol(self) -> int:
        return self.mapper.bits_per_symbol

    @property
    def max_codeword_bytes(self) -> int:
        """Largest codeword length the size field can express."""
        return (1 << (self.bits_per_symbol * self.config.size_field_symbols)) - 1

    # -- TX ------------------------------------------------------------------

    def build_data_packet(self, codeword: bytes) -> List[LogicalSymbol]:
        """Assemble one data packet around a Reed-Solomon codeword."""
        if not codeword:
            raise PacketError("cannot packetize an empty codeword")
        if len(codeword) > self.max_codeword_bytes:
            raise PacketTooLargeError(
                f"codeword of {len(codeword)} bytes exceeds the "
                f"{self.config.size_field_symbols}-symbol size field limit "
                f"({self.max_codeword_bytes} bytes at "
                f"{self.bits_per_symbol} bits/symbol)"
            )
        symbols = preamble_symbols(PacketKind.DATA)
        symbols.extend(self._encode_size(len(codeword)))
        symbols.extend(self._build_body(codeword))
        return symbols

    def build_calibration_packet(self) -> List[LogicalSymbol]:
        """Preamble plus every constellation symbol in index order (§6.2)."""
        symbols = preamble_symbols(PacketKind.CALIBRATION)
        symbols.extend(
            data_symbol(i) for i in range(self.mapper.constellation.order)
        )
        return symbols

    def _encode_size(self, codeword_bytes: int) -> List[LogicalSymbol]:
        width = self.bits_per_symbol * self.config.size_field_symbols
        bits = [
            (codeword_bytes >> shift) & 1 for shift in range(width - 1, -1, -1)
        ]
        return self.mapper.bits_to_symbols(bits)

    def _build_body(self, codeword: bytes) -> List[LogicalSymbol]:
        data_symbols = self.mapper.bits_to_symbols(bytes_to_bits(codeword))
        layout = white_schedule(len(data_symbols), self.config.illumination_ratio)
        body: List[LogicalSymbol] = []
        iterator = iter(data_symbols)
        for is_white in layout:
            body.append(white_symbol() if is_white else next(iterator))
        return body

    # -- shared layout queries -------------------------------------------------

    def data_symbols_for_codeword(self, codeword_bytes: int) -> int:
        """DATA symbols a codeword of the given byte length occupies."""
        return self.mapper.symbols_for_payload(codeword_bytes * 8)

    def body_slots_for_codeword(self, codeword_bytes: int) -> int:
        """Total body slots (data + white) for a codeword length."""
        layout = white_schedule(
            self.data_symbols_for_codeword(codeword_bytes),
            self.config.illumination_ratio,
        )
        return len(layout)

    def body_layout(self, codeword_bytes: int) -> List[bool]:
        """The white/data slot layout of a data packet body."""
        return white_schedule(
            self.data_symbols_for_codeword(codeword_bytes),
            self.config.illumination_ratio,
        )

    def packet_length(self, codeword_bytes: int) -> int:
        """Total on-air symbols of a data packet, preamble included."""
        preamble = len(preamble_symbols(PacketKind.DATA))
        return (
            preamble
            + self.config.size_field_symbols
            + self.body_slots_for_codeword(codeword_bytes)
        )

    def calibration_packet_length(self) -> int:
        """Total on-air symbols of a calibration packet."""
        return (
            len(preamble_symbols(PacketKind.CALIBRATION))
            + self.mapper.constellation.order
        )

    # -- RX ------------------------------------------------------------------

    def decode_size(self, symbols: Sequence[LogicalSymbol]) -> int:
        """Recover the codeword byte length from the size-field symbols."""
        if len(symbols) != self.config.size_field_symbols:
            raise PacketError(
                f"size field needs {self.config.size_field_symbols} symbols, "
                f"got {len(symbols)}"
            )
        bits = self.mapper.symbols_to_bits(list(symbols))
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        return value
