"""Dense polynomials over GF(2^8).

Coefficients are stored highest-degree first (``coeffs[0]`` multiplies the
highest power), matching the conventional presentation of Reed-Solomon
generator polynomials.  The class is immutable: every operation returns a new
polynomial, which keeps the decoder logic easy to reason about.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import GaloisFieldError
from repro.fec.gf256 import GF256


class GFPolynomial:
    """An immutable polynomial with coefficients in GF(2^8)."""

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: Sequence[int]) -> None:
        normalized = list(coeffs)
        for c in normalized:
            GF256._check(c, "coefficient")
        # Strip leading zeros but keep at least one coefficient.
        index = 0
        while index < len(normalized) - 1 and normalized[index] == 0:
            index += 1
        self._coeffs: Tuple[int, ...] = tuple(normalized[index:]) or (0,)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "GFPolynomial":
        return cls([0])

    @classmethod
    def one(cls) -> "GFPolynomial":
        return cls([1])

    @classmethod
    def monomial(cls, coefficient: int, degree: int) -> "GFPolynomial":
        """``coefficient * x^degree``."""
        if degree < 0:
            raise GaloisFieldError(f"degree must be non-negative, got {degree}")
        return cls([coefficient] + [0] * degree)

    # -- inspection --------------------------------------------------------

    @property
    def coeffs(self) -> Tuple[int, ...]:
        """Coefficients, highest degree first."""
        return self._coeffs

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree 0."""
        return len(self._coeffs) - 1

    def is_zero(self) -> bool:
        return self._coeffs == (0,)

    def coefficient(self, degree: int) -> int:
        """Coefficient of ``x^degree`` (0 beyond the stored degree)."""
        if degree < 0:
            raise GaloisFieldError(f"degree must be non-negative, got {degree}")
        if degree > self.degree:
            return 0
        return self._coeffs[self.degree - degree]

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "GFPolynomial") -> "GFPolynomial":
        longer, shorter = self._coeffs, other._coeffs
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        result = list(longer)
        offset = len(longer) - len(shorter)
        for i, c in enumerate(shorter):
            result[offset + i] ^= c
        return GFPolynomial(result)

    #: Subtraction equals addition in characteristic 2.
    __sub__ = __add__

    def __mul__(self, other: "GFPolynomial") -> "GFPolynomial":
        if self.is_zero() or other.is_zero():
            return GFPolynomial.zero()
        result = [0] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other._coeffs):
                if b:
                    result[i + j] ^= GF256.mul(a, b)
        return GFPolynomial(result)

    def scale(self, scalar: int) -> "GFPolynomial":
        """Multiply every coefficient by a field scalar."""
        GF256._check(scalar, "scalar")
        return GFPolynomial([GF256.mul(c, scalar) for c in self._coeffs])

    def shift(self, degree: int) -> "GFPolynomial":
        """Multiply by ``x^degree``."""
        if degree < 0:
            raise GaloisFieldError(f"shift degree must be non-negative, got {degree}")
        if self.is_zero():
            return GFPolynomial.zero()
        return GFPolynomial(list(self._coeffs) + [0] * degree)

    def divmod(self, divisor: "GFPolynomial") -> Tuple["GFPolynomial", "GFPolynomial"]:
        """Quotient and remainder of polynomial long division."""
        if divisor.is_zero():
            raise GaloisFieldError("polynomial division by zero")
        if self.degree < divisor.degree:
            return GFPolynomial.zero(), self
        remainder = list(self._coeffs)
        quotient = [0] * (self.degree - divisor.degree + 1)
        lead_inverse = GF256.inverse(divisor._coeffs[0])
        for i in range(len(quotient)):
            coef = remainder[i]
            if coef == 0:
                continue
            factor = GF256.mul(coef, lead_inverse)
            quotient[i] = factor
            for j, d in enumerate(divisor._coeffs):
                remainder[i + j] ^= GF256.mul(factor, d)
        tail = remainder[len(quotient):]
        return GFPolynomial(quotient), GFPolynomial(tail or [0])

    def __mod__(self, divisor: "GFPolynomial") -> "GFPolynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "GFPolynomial") -> "GFPolynomial":
        return self.divmod(divisor)[0]

    # -- evaluation --------------------------------------------------------

    def evaluate(self, point: int) -> int:
        """Evaluate at a field element using Horner's rule."""
        GF256._check(point, "evaluation point")
        acc = 0
        for c in self._coeffs:
            acc = GF256.mul(acc, point) ^ c
        return acc

    def derivative(self) -> "GFPolynomial":
        """Formal derivative: odd-power terms survive in characteristic 2."""
        if self.degree == 0:
            return GFPolynomial.zero()
        out: List[int] = []
        for power in range(self.degree, 0, -1):
            c = self.coefficient(power)
            out.append(c if power % 2 == 1 else 0)
        return GFPolynomial(out or [0])

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GFPolynomial):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GFPolynomial({list(self._coeffs)})"
