"""Forward error correction: GF(2^8) arithmetic and Reed-Solomon codes.

ColorBars protects payloads against inter-frame loss with Reed-Solomon block
codes (paper §5).  This package is a from-scratch implementation:

* :mod:`repro.fec.gf256` — the Galois field GF(2^8) with the 0x11D primitive
  polynomial (the same field used by the 802.15.7 / CCSDS RS codes),
* :mod:`repro.fec.polynomial` — dense polynomials over that field,
* :mod:`repro.fec.reed_solomon` — systematic RS encoder and a
  Berlekamp-Massey + Forney decoder handling both errors and erasures,
* :mod:`repro.fec.interleave` — block interleaving to spread burst loss.
"""

from repro.fec.gf256 import GF256
from repro.fec.interleave import BlockInterleaver
from repro.fec.polynomial import GFPolynomial
from repro.fec.reed_solomon import ReedSolomonCodec, rs_params_for_loss

__all__ = [
    "GF256",
    "GFPolynomial",
    "ReedSolomonCodec",
    "rs_params_for_loss",
    "BlockInterleaver",
]
