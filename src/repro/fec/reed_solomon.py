"""Systematic Reed-Solomon codec over GF(2^8) with errors-and-erasures decoding.

The codec operates on byte symbols.  ``ReedSolomonCodec(n, k)`` produces
codewords of ``n`` bytes carrying ``k`` data bytes and ``2t = n - k`` parity
bytes; it corrects up to ``t`` symbol errors, or any mix of ``e`` errors and
``f`` erasures with ``2e + f <= n - k``.  Shortened codes (n < 255) are
supported by the standard zero-prefix construction.

The decode path is the classical chain: syndromes -> erasure locator ->
Berlekamp-Massey (errata-aware) -> Chien search -> Forney magnitudes.

ColorBars dimensions the code from the inter-frame loss ratio (paper §5);
:func:`rs_params_for_loss` implements that sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ReedSolomonError, UncorrectableBlockError
from repro.fec.gf256 import GF256
from repro.fec.polynomial import GFPolynomial

#: Log/antilog tables as numpy arrays for the vectorized syndrome pass.
_EXP_TABLE = np.array([GF256.exp(p) for p in range(GF256.order)], dtype=np.uint8)
_EXP_TABLE.flags.writeable = False
_LOG_TABLE = np.array([0] + [GF256.log(v) for v in range(1, GF256.size)], dtype=np.int64)
_LOG_TABLE.flags.writeable = False


@dataclass(frozen=True)
class RSParams:
    """Reed-Solomon code dimensions and the channel assumptions behind them.

    Produced by :func:`rs_params_for_loss`; consumed by the transmitter to
    build a :class:`ReedSolomonCodec` matched to the receiver's inter-frame
    gap.
    """

    n: int
    k: int
    symbols_per_frame: int
    symbols_lost_per_gap: int

    @property
    def parity(self) -> int:
        return self.n - self.k

    @property
    def correctable_errors(self) -> int:
        return (self.n - self.k) // 2

    @property
    def code_rate(self) -> float:
        return self.k / self.n


def rs_params_for_loss(
    symbol_rate: float,
    frame_rate: float,
    loss_ratio: float,
    bits_per_symbol: int,
    illumination_ratio: float,
) -> RSParams:
    """Dimension an RS code per ColorBars §5.

    With symbol rate ``S``, frame rate ``F`` and inter-frame loss ratio ``l``:

    * symbols received per frame  ``FS = (1 - l) * S / F``
    * symbols lost per gap        ``LS = l * S / F``
    * codeword bits  ``n = eta * C * (FS + LS)``
    * data bits      ``k = eta * C * (FS - LS)``

    where ``eta`` is the illumination ratio (useful-data share of symbols) and
    ``C`` the bits per CSK symbol.  Bits are converted to whole bytes, with
    parity rounded up so the byte-level code still covers the gap.

    The paper's worked example (FS = 150, loss 1/6, 8-CSK, eta = 4/5) yields a
    36-byte message, which this function reproduces.
    """
    if symbol_rate <= 0 or frame_rate <= 0:
        raise ReedSolomonError("symbol_rate and frame_rate must be positive")
    if not 0 <= loss_ratio < 0.5:
        raise ReedSolomonError(
            f"loss_ratio must be in [0, 0.5) for a decodable RS sizing, "
            f"got {loss_ratio}"
        )
    if bits_per_symbol <= 0:
        raise ReedSolomonError("bits_per_symbol must be positive")
    if not 0 < illumination_ratio <= 1:
        raise ReedSolomonError("illumination_ratio must be in (0, 1]")

    symbols_per_period = symbol_rate / frame_rate
    fs = (1.0 - loss_ratio) * symbols_per_period
    ls = loss_ratio * symbols_per_period

    n_bits = illumination_ratio * bits_per_symbol * (fs + ls)
    k_bits = illumination_ratio * bits_per_symbol * (fs - ls)

    n_bytes = max(int(n_bits // 8), 3)
    k_bytes = max(int(k_bits // 8), 1)
    # Keep parity even (2t) and at least 2.
    parity = n_bytes - k_bytes
    if parity < 2:
        parity = 2
    if parity % 2:
        parity += 1
    n_bytes = k_bytes + parity
    if n_bytes > 255:
        # Shorten by scaling k down; the symbol alphabet caps n at 255.
        overshoot = n_bytes - 255
        k_bytes = max(k_bytes - overshoot, 1)
        n_bytes = k_bytes + parity
        if n_bytes > 255:
            raise ReedSolomonError(
                f"loss ratio {loss_ratio} at rate {symbol_rate} needs parity "
                f"{parity} > field limit"
            )
    return RSParams(
        n=n_bytes,
        k=k_bytes,
        symbols_per_frame=int(round(fs)),
        symbols_lost_per_gap=int(round(ls)),
    )


class ReedSolomonCodec:
    """Systematic RS(n, k) encoder/decoder over GF(2^8).

    >>> codec = ReedSolomonCodec(255, 223)
    >>> word = codec.encode(bytes(range(223)))
    >>> codec.decode(word) == bytes(range(223))
    True
    """

    #: First consecutive root exponent of the generator polynomial.
    FIRST_ROOT = 0

    def __init__(self, n: int, k: int) -> None:
        if not 0 < k < n <= 255:
            raise ReedSolomonError(
                f"invalid RS dimensions: need 0 < k < n <= 255, got n={n}, k={k}"
            )
        self.n = n
        self.k = k
        self.num_parity = n - k
        self.t = self.num_parity // 2
        self._generator = self._build_generator(self.num_parity)

    @staticmethod
    def _build_generator(num_parity: int) -> GFPolynomial:
        gen = GFPolynomial.one()
        for i in range(num_parity):
            root = GF256.exp(ReedSolomonCodec.FIRST_ROOT + i)
            gen = gen * GFPolynomial([1, root])
        return gen

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        """Append ``n - k`` parity bytes to exactly ``k`` data bytes."""
        if len(data) != self.k:
            raise ReedSolomonError(
                f"encode expects exactly k={self.k} bytes, got {len(data)}"
            )
        message = GFPolynomial(list(data) or [0])
        shifted = message.shift(self.num_parity)
        remainder = shifted % self._generator
        parity = list(remainder.coeffs)
        parity = [0] * (self.num_parity - len(parity)) + parity
        return bytes(data) + bytes(parity)

    def encode_blocks(self, data: bytes, pad: int = 0) -> List[bytes]:
        """Split arbitrary-length data into k-byte blocks and encode each.

        The final block is padded with ``pad`` bytes; callers carry the true
        length out of band (ColorBars puts it in the packet header).
        """
        blocks: List[bytes] = []
        for offset in range(0, max(len(data), 1), self.k):
            chunk = data[offset : offset + self.k]
            if len(chunk) < self.k:
                chunk = chunk + bytes([pad]) * (self.k - len(chunk))
            blocks.append(self.encode(chunk))
        return blocks

    # -- decoding ----------------------------------------------------------

    def decode(
        self,
        received: bytes,
        erasure_positions: Optional[Sequence[int]] = None,
    ) -> bytes:
        """Decode one codeword, correcting errors and the given erasures.

        ``erasure_positions`` are indices into ``received`` whose values are
        known to be unreliable (e.g. symbols lost in the inter-frame gap and
        filled with zeros).  Raises :class:`UncorrectableBlockError` when the
        errata exceed the code's capability.
        """
        if len(received) != self.n:
            raise ReedSolomonError(
                f"decode expects exactly n={self.n} bytes, got {len(received)}"
            )
        erasures = sorted(set(erasure_positions or ()))
        for pos in erasures:
            if not 0 <= pos < self.n:
                raise ReedSolomonError(
                    f"erasure position {pos} outside codeword of length {self.n}"
                )
        if len(erasures) > self.num_parity:
            raise UncorrectableBlockError(
                f"{len(erasures)} erasures exceed parity budget {self.num_parity}"
            )

        codeword = list(received)
        syndromes = self._syndromes(codeword)
        if all(s == 0 for s in syndromes):
            return bytes(codeword[: self.k])

        corrected = self._correct(codeword, syndromes, erasures)
        return bytes(corrected[: self.k])

    def decode_blocks(
        self,
        blocks: Sequence[bytes],
        erasure_map: Optional[Sequence[Sequence[int]]] = None,
    ) -> bytes:
        """Decode a sequence of codewords and concatenate the payloads."""
        if erasure_map is not None and len(erasure_map) != len(blocks):
            raise ReedSolomonError(
                "erasure_map must align one entry per block "
                f"({len(erasure_map)} != {len(blocks)})"
            )
        out = bytearray()
        for index, block in enumerate(blocks):
            erasures = erasure_map[index] if erasure_map is not None else None
            out.extend(self.decode(bytes(block), erasures))
        return bytes(out)

    # -- decoder internals ---------------------------------------------------

    def _syndromes(self, codeword: List[int]) -> List[int]:
        # S_i = C(alpha^(FIRST_ROOT+i)).  Expanding Horner's rule, the term
        # for coefficient c_j of degree d_j contributes
        # exp(log c_j + d_j * (FIRST_ROOT + i)), and field addition is XOR —
        # one (num_parity, nonzero-terms) table gather per codeword instead
        # of num_parity Python Horner loops.
        coeffs = np.asarray(codeword, dtype=np.int64)
        degrees = np.arange(len(codeword) - 1, -1, -1, dtype=np.int64)
        nonzero = coeffs != 0
        if not nonzero.any():
            return [0] * self.num_parity
        logs = _LOG_TABLE[coeffs[nonzero]]
        degrees = degrees[nonzero]
        roots = np.arange(
            self.FIRST_ROOT, self.FIRST_ROOT + self.num_parity, dtype=np.int64
        )
        exponents = (logs[np.newaxis, :] + degrees[np.newaxis, :] * roots[:, np.newaxis]) % GF256.order
        terms = _EXP_TABLE[exponents]
        return np.bitwise_xor.reduce(terms, axis=1).tolist()

    def _erasure_locator(self, erasures: Sequence[int]) -> GFPolynomial:
        # Positions are indexed from the start of the codeword; the location
        # exponent counts from the end (degree n-1 term is position 0).
        locator = GFPolynomial.one()
        for pos in erasures:
            exponent = self.n - 1 - pos
            locator = locator * GFPolynomial([GF256.exp(exponent), 1])
        return locator

    def _forney_syndromes(
        self, syndromes: List[int], erasure_locator: GFPolynomial, num_erasures: int
    ) -> List[int]:
        """Modified syndromes that see only the *errors*, not the erasures.

        With erasure locator Gamma and syndrome polynomial S, the product
        ``Xi = Gamma * S mod x^2t`` has coefficients ``Xi_f .. Xi_{2t-1}``
        forming a syndrome sequence for the unknown error positions alone.
        """
        syndrome_poly = GFPolynomial(list(reversed(syndromes)) or [0])
        xi = (erasure_locator * syndrome_poly) % GFPolynomial.monomial(
            1, self.num_parity
        )
        return [xi.coefficient(j) for j in range(num_erasures, self.num_parity)]

    @staticmethod
    def _berlekamp_massey(sequence: List[int]) -> Tuple[GFPolynomial, int]:
        """Textbook Berlekamp-Massey: shortest LFSR generating ``sequence``.

        Returns the connection polynomial C(x) = 1 + C_1 x + ... and its
        LFSR length L.
        """
        c = GFPolynomial.one()
        b_poly = GFPolynomial.one()
        length = 0
        m = 1
        b = 1
        for n, s_n in enumerate(sequence):
            discrepancy = s_n
            for i in range(1, length + 1):
                discrepancy ^= GF256.mul(c.coefficient(i), sequence[n - i])
            if discrepancy == 0:
                m += 1
            elif 2 * length <= n:
                previous_c = c
                c = c + b_poly.scale(GF256.div(discrepancy, b)).shift(m)
                length = n + 1 - length
                b_poly = previous_c
                b = discrepancy
                m = 1
            else:
                c = c + b_poly.scale(GF256.div(discrepancy, b)).shift(m)
                m += 1
        return c, length

    def _chien_search(self, locator: GFPolynomial) -> List[int]:
        """Return errata positions (indices into the codeword)."""
        positions: List[int] = []
        for position in range(self.n):
            exponent = self.n - 1 - position
            # X_i = alpha^exponent; roots of the locator are X_i^{-1}.
            value = locator.evaluate(GF256.inverse(GF256.exp(exponent)))
            if value == 0:
                positions.append(position)
        if len(positions) != locator.degree:
            raise UncorrectableBlockError(
                f"Chien search found {len(positions)} roots for a locator of "
                f"degree {locator.degree}; block is uncorrectable"
            )
        return positions

    def _correct(
        self,
        codeword: List[int],
        syndromes: List[int],
        erasures: Sequence[int],
    ) -> List[int]:
        erasure_locator = self._erasure_locator(erasures)
        error_syndromes = self._forney_syndromes(
            syndromes, erasure_locator, len(erasures)
        )
        error_locator, lfsr_length = self._berlekamp_massey(error_syndromes)
        if lfsr_length > (self.num_parity - len(erasures)) // 2:
            raise UncorrectableBlockError(
                f"{lfsr_length} errors plus {len(erasures)} erasures exceed the "
                f"capability of parity {self.num_parity}"
            )
        locator = error_locator * erasure_locator
        positions = self._chien_search(locator)

        # Forney with first root b = 0: the error magnitude at location X_i is
        # X_i^(1-b) * Omega(X_i^-1) / Lambda'(X_i^-1) = X_i * Omega / Lambda'.
        syndrome_poly = GFPolynomial(list(reversed(syndromes)) or [0])
        omega = (syndrome_poly * locator) % GFPolynomial.monomial(1, self.num_parity)
        derivative = locator.derivative()

        for position in positions:
            exponent = self.n - 1 - position
            x_i = GF256.exp(exponent)
            x_inverse = GF256.inverse(x_i)
            denominator = derivative.evaluate(x_inverse)
            if denominator == 0:
                raise UncorrectableBlockError(
                    "Forney denominator vanished; block is uncorrectable"
                )
            magnitude = GF256.mul(
                x_i, GF256.div(omega.evaluate(x_inverse), denominator)
            )
            codeword[position] ^= magnitude

        if any(s != 0 for s in self._syndromes(codeword)):
            raise UncorrectableBlockError(
                "residual syndromes after correction; block is uncorrectable"
            )
        return codeword
