"""Block interleaving over byte streams.

Inter-frame loss is bursty: a contiguous run of symbols disappears in each
readout gap.  Interleaving codewords column-wise spreads one burst across many
RS blocks, turning a long erasure run into a few erasures per block.  The
paper sizes its code to absorb the burst directly; the interleaver is provided
for the FEC ablation benches and for users with longer gaps.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import FECError


class BlockInterleaver:
    """A ``rows x cols`` block interleaver.

    Write row-wise, read column-wise.  ``rows`` is typically the RS codeword
    length and ``cols`` the interleaving depth (number of codewords mixed).
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise FECError(f"rows and cols must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    @property
    def block_size(self) -> int:
        """Bytes consumed/produced per interleaving block."""
        return self.rows * self.cols

    def interleave(self, data: bytes) -> bytes:
        """Permute one block of ``rows * cols`` bytes, row-write column-read."""
        if len(data) != self.block_size:
            raise FECError(
                f"interleave expects exactly {self.block_size} bytes, "
                f"got {len(data)}"
            )
        out = bytearray(self.block_size)
        index = 0
        for col in range(self.cols):
            for row in range(self.rows):
                out[index] = data[row * self.cols + col]
                index += 1
        return bytes(out)

    def deinterleave(self, data: bytes) -> bytes:
        """Invert :meth:`interleave`."""
        if len(data) != self.block_size:
            raise FECError(
                f"deinterleave expects exactly {self.block_size} bytes, "
                f"got {len(data)}"
            )
        out = bytearray(self.block_size)
        index = 0
        for col in range(self.cols):
            for row in range(self.rows):
                out[row * self.cols + col] = data[index]
                index += 1
        return bytes(out)

    def interleave_stream(self, data: bytes, pad: int = 0) -> bytes:
        """Interleave arbitrary-length data, zero-padding the final block."""
        padded = bytearray(data)
        remainder = len(padded) % self.block_size
        if remainder:
            padded.extend([pad] * (self.block_size - remainder))
        out = bytearray()
        for offset in range(0, len(padded), self.block_size):
            out.extend(self.interleave(bytes(padded[offset : offset + self.block_size])))
        return bytes(out)

    def deinterleave_stream(self, data: bytes) -> bytes:
        """Invert :meth:`interleave_stream` (padding is preserved)."""
        if len(data) % self.block_size:
            raise FECError(
                f"stream length {len(data)} is not a multiple of block size "
                f"{self.block_size}"
            )
        out = bytearray()
        for offset in range(0, len(data), self.block_size):
            out.extend(self.deinterleave(data[offset : offset + self.block_size]))
        return bytes(out)

    def spread_positions(self, burst: Sequence[int]) -> List[int]:
        """Map burst positions in the interleaved stream back to source positions.

        Useful for computing the per-codeword erasure lists that a burst of
        lost symbols induces after deinterleaving.
        """
        positions: List[int] = []
        for pos in burst:
            if pos < 0:
                raise FECError(f"position must be non-negative, got {pos}")
            block, offset = divmod(pos, self.block_size)
            col, row = divmod(offset, self.rows)
            positions.append(block * self.block_size + row * self.cols + col)
        return sorted(positions)
