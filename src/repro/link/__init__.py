"""End-to-end link simulation: transmitter -> camera -> receiver -> metrics.

:class:`~repro.link.simulator.LinkSimulator` wires a
:class:`~repro.core.system.ColorBarsTransmitter`, a device's
:class:`~repro.camera.sensor.RollingShutterCamera` and the
:class:`~repro.rx.receiver.ColorBarsReceiver` into one reproducible run, and
exposes the parameter sweeps the paper's evaluation section performs.
"""

from repro.link.channel import ChannelConditions
from repro.link.multi import (
    FleetMember,
    FleetReport,
    broadcast_to_fleet,
    fleet_specs,
)
from repro.link.simulator import (
    LinkResult,
    LinkSimulator,
    RunSpec,
    execute_specs,
    sweep,
    sweep_specs,
)
from repro.link.workloads import (
    image_like_payload,
    random_payload,
    text_payload,
)

__all__ = [
    "ChannelConditions",
    "FleetMember",
    "FleetReport",
    "broadcast_to_fleet",
    "fleet_specs",
    "LinkResult",
    "LinkSimulator",
    "RunSpec",
    "execute_specs",
    "sweep",
    "sweep_specs",
    "image_like_payload",
    "random_payload",
    "text_payload",
]
