"""End-to-end link simulation: transmitter -> camera -> receiver -> metrics.

:class:`~repro.link.simulator.LinkSimulator` wires a
:class:`~repro.core.system.ColorBarsTransmitter`, a device's
:class:`~repro.camera.sensor.RollingShutterCamera` and the
:class:`~repro.rx.receiver.ColorBarsReceiver` into one reproducible run, and
exposes the parameter sweeps the paper's evaluation section performs.
"""

from repro.link.adapt import (
    AdaptationDecision,
    AdaptationPolicy,
    AdaptiveComparison,
    LinkAdaptationController,
    ModulationLadder,
    ModulationRung,
    ReportWindowTracker,
    WindowStats,
    adaptive_vs_fixed,
    simulate_adaptive,
    simulate_fixed,
)
from repro.link.channel import (
    ChannelConditions,
    ChannelTrajectory,
    TrajectorySegment,
)
from repro.link.multi import (
    FleetMember,
    FleetReport,
    broadcast_to_fleet,
    fleet_specs,
)
from repro.link.simulator import (
    LinkResult,
    LinkSimulator,
    RunSpec,
    execute_specs,
    sweep,
    sweep_specs,
)
from repro.link.workloads import (
    image_like_payload,
    random_payload,
    text_payload,
)

__all__ = [
    "AdaptationDecision",
    "AdaptationPolicy",
    "AdaptiveComparison",
    "LinkAdaptationController",
    "ModulationLadder",
    "ModulationRung",
    "ReportWindowTracker",
    "WindowStats",
    "adaptive_vs_fixed",
    "simulate_adaptive",
    "simulate_fixed",
    "ChannelConditions",
    "ChannelTrajectory",
    "TrajectorySegment",
    "FleetMember",
    "FleetReport",
    "broadcast_to_fleet",
    "fleet_specs",
    "LinkResult",
    "LinkSimulator",
    "RunSpec",
    "execute_specs",
    "sweep",
    "sweep_specs",
    "image_like_payload",
    "random_payload",
    "text_payload",
]
