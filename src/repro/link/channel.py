"""Channel conditions: the optical environment between LED and camera.

The paper evaluates at close range (within ~3 cm of a low-lumen LED) under
indoor ambient light.  :class:`ChannelConditions` parameterizes the optics so
benches can sweep distance and ambient level beyond the paper's operating
point (range analysis is listed as future work in §10; the simulator makes
it explorable).

:class:`ChannelTrajectory` strings conditions into a deterministic
time-varying schedule — distance/ambient steps plus in-segment gain/ambient
drift (the ``drift`` fault injector) — which is what the link-adaptation
subsystem (:mod:`repro.link.adapt`) replays to produce reproducible
adaptive-vs-fixed goodput curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.camera.optics import Optics
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ChannelConditions:
    """Distance and ambient-light setting of a link run."""

    distance_m: float = 0.03
    ambient_luminance: float = 0.5
    vignetting_strength: float = 0.85

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ConfigurationError(
                f"distance_m must be positive, got {self.distance_m}"
            )
        if self.ambient_luminance < 0:
            raise ConfigurationError(
                f"ambient_luminance must be >= 0, got {self.ambient_luminance}"
            )
        if not 0 <= self.vignetting_strength <= 1:
            raise ConfigurationError(
                "vignetting_strength must be in [0, 1], "
                f"got {self.vignetting_strength}"
            )

    def make_optics(self) -> Optics:
        """The optics model these conditions imply."""
        return Optics(
            vignetting_strength=self.vignetting_strength,
            distance_m=self.distance_m,
            ambient_luminance=self.ambient_luminance,
        )

    @classmethod
    def paper_setup(cls) -> "ChannelConditions":
        """The evaluation setup of §8: phone within 3 cm of the LED."""
        return cls(distance_m=0.03, ambient_luminance=0.5)


@dataclass(frozen=True)
class TrajectorySegment:
    """One piecewise-constant stretch of a time-varying channel.

    ``distance_m``/``ambient_luminance`` set the segment's static optics;
    ``drift_intensity`` additionally runs the ``drift`` fault injector over
    the segment's recording (slow gain fade + ambient ramp), modelling
    continuous in-segment deterioration on top of the step change.
    """

    duration_s: float
    distance_m: float = 0.03
    ambient_luminance: float = 0.5
    drift_intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"segment duration_s must be positive, got {self.duration_s}"
            )
        if not 0 <= self.drift_intensity <= 1:
            raise ConfigurationError(
                f"drift_intensity must be in [0, 1], got {self.drift_intensity}"
            )
        # Delegate distance/ambient validation to ChannelConditions.
        self.conditions()

    def conditions(self) -> ChannelConditions:
        """The static channel conditions of this segment."""
        return ChannelConditions(
            distance_m=self.distance_m,
            ambient_luminance=self.ambient_luminance,
        )


@dataclass(frozen=True)
class ChannelTrajectory:
    """A deterministic schedule of channel conditions over a session.

    Pure data: replaying the same trajectory with the same seed reproduces
    the same recordings byte for byte, which is what makes adaptive-vs-fixed
    goodput comparisons (and the CI adaptation soak) exactly rerunnable.
    """

    segments: Tuple[TrajectorySegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("trajectory must have at least one segment")

    @property
    def total_duration_s(self) -> float:
        return sum(segment.duration_s for segment in self.segments)

    @classmethod
    def drift_demo(cls, segment_s: float = 0.8) -> "ChannelTrajectory":
        """The pinned clean -> degraded -> recovered schedule.

        Used by the ``colorbars adapt`` CLI, the adaptation-smoke CI job and
        the bench's ``adaptive_vs_fixed`` entry: two clean segments at the
        paper's operating point (3 cm), a long degraded phase — a distance
        step to 4 cm plus in-segment ``drift`` fading, deep enough to
        collapse a fixed 32-CSK link's ΔE margins (the FEC cliff) while
        16-CSK still decodes — then a clean recovery tail.  The degraded
        phase is the majority of the schedule on purpose: a fixed fast
        link must lose more there than hysteresis costs the adaptive link
        on the clean flanks.
        """
        clean = dict(distance_m=0.03, ambient_luminance=0.5)
        degraded = dict(
            distance_m=0.040, ambient_luminance=0.5, drift_intensity=0.3
        )
        return cls(
            segments=(
                tuple(
                    TrajectorySegment(duration_s=segment_s, **clean)
                    for _ in range(2)
                )
                + tuple(
                    TrajectorySegment(duration_s=segment_s, **degraded)
                    for _ in range(8)
                )
                + tuple(
                    TrajectorySegment(duration_s=segment_s, **clean)
                    for _ in range(4)
                )
            )
        )
