"""Channel conditions: the optical environment between LED and camera.

The paper evaluates at close range (within ~3 cm of a low-lumen LED) under
indoor ambient light.  :class:`ChannelConditions` parameterizes the optics so
benches can sweep distance and ambient level beyond the paper's operating
point (range analysis is listed as future work in §10; the simulator makes
it explorable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camera.optics import Optics
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ChannelConditions:
    """Distance and ambient-light setting of a link run."""

    distance_m: float = 0.03
    ambient_luminance: float = 0.5
    vignetting_strength: float = 0.85

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ConfigurationError(
                f"distance_m must be positive, got {self.distance_m}"
            )
        if self.ambient_luminance < 0:
            raise ConfigurationError(
                f"ambient_luminance must be >= 0, got {self.ambient_luminance}"
            )
        if not 0 <= self.vignetting_strength <= 1:
            raise ConfigurationError(
                "vignetting_strength must be in [0, 1], "
                f"got {self.vignetting_strength}"
            )

    def make_optics(self) -> Optics:
        """The optics model these conditions imply."""
        return Optics(
            vignetting_strength=self.vignetting_strength,
            distance_m=self.distance_m,
            ambient_luminance=self.ambient_luminance,
        )

    @classmethod
    def paper_setup(cls) -> "ChannelConditions":
        """The evaluation setup of §8: phone within 3 cm of the LED."""
        return cls(distance_m=0.03, ambient_luminance=0.5)
