"""The end-to-end link simulator and parameter sweeps.

One :class:`LinkSimulator` run reproduces the paper's measurement procedure:
the transmitter broadcasts a payload cyclically, the simulated phone records
video for a duration, the receiver decodes the frames, and the metrics are
computed against the on-air ground truth.  :func:`sweep` runs the CSK-order
x symbol-rate grid of Figs 9-11.

Sweeps are embarrassingly parallel: every cell derives all of its
randomness from its own ``(seed, cell)`` tuple, so cells share no state.
:class:`RunSpec` makes one cell a picklable value object, and :func:`sweep`
accepts a ``runner`` — any callable mapping a spec list to the matching
result list — so the process-pool executor in :mod:`repro.perf.executor`
can run the grid concurrently while staying bit-identical to this serial
code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.camera.devices import DeviceProfile
from repro.core.config import SystemConfig
from repro.core.metrics import (
    GroundTruthMatch,
    LinkMetrics,
    align_ground_truth,
    compute_link_metrics,
)
from repro.core.system import ColorBarsTransmitter, TransmissionPlan, make_receiver
from repro.exceptions import LinkError
from repro.faults.base import FaultInjector, FaultSchedule
from repro.link.channel import ChannelConditions
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.schema import (
    M_FAULTS_INJECTED,
    M_PLAN_CACHE_HITS,
    M_PLAN_CACHE_MISSES,
    M_RUN_WALL_SECONDS,
    M_RUNS_COMPLETED,
    SPAN_CELL,
    SPAN_DECODE,
    SPAN_INJECT,
    SPAN_METRICS,
    SPAN_RECORD,
    SPAN_TX_PLAN,
    SPAN_WAVEFORM,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.rx.receiver import ReceiverReport
from repro.util.rng import derive_rng, make_rng
from repro.util.stopwatch import StageTimings
from repro.util.validation import require_positive

#: A planner maps ``(config, payload)`` to a ready transmission plan and its
#: optical waveform.  ``None`` builds both from scratch; the memoizing
#: implementation lives in :class:`repro.perf.cache.PlanCache` (injected, so
#: the link layer never imports the perf layer).
Planner = Callable[[SystemConfig, bytes], Tuple[TransmissionPlan, OpticalWaveform]]


@dataclass
class LinkResult:
    """Everything one simulated link run produced."""

    config: SystemConfig
    device_name: str
    metrics: LinkMetrics
    report: ReceiverReport
    plan: TransmissionPlan
    matches: List[GroundTruthMatch] = field(default_factory=list)
    fault_schedule: FaultSchedule = field(default_factory=FaultSchedule)
    #: Wall-clock per pipeline stage; measurement metadata, excluded from
    #: equality so timed runs still compare bit-identical.
    timings: StageTimings = field(default_factory=StageTimings, compare=False)
    #: Span tuple recorded by an observed run (``RunSpec.execute(observe=
    #: True)``); measurement metadata like ``timings``, excluded from
    #: equality, ``None`` when the run was not observed.
    trace: Optional[Tuple] = field(default=None, compare=False)
    #: The observed run's local metrics export (see
    #: :meth:`repro.obs.metrics.MetricsRegistry.export`); ``None`` when the
    #: run was not observed.
    obs_metrics: Optional[Dict] = field(default=None, compare=False)

    def delivered_payload(self) -> bytes:
        """Concatenation of every successfully decoded packet payload."""
        return b"".join(self.report.payloads)

    def recovered_broadcast(self) -> Optional[bytes]:
        """The original payload, if at least one full cycle was recovered.

        The broadcast repeats, so a long enough recording yields every
        codeword at least once.  Each decoded payload is the k-byte prefix
        of its (systematic) codeword; matching prefixes identifies which
        block of the cycle it came from.  Returns ``None`` unless every
        block of the cycle was decoded at least once.
        """
        index_of_prefix = {
            bytes(codeword[: self._k()]): i
            for i, codeword in enumerate(self.plan.codewords)
        }
        recovered: Dict[int, bytes] = {}
        for payload in self.report.payloads:
            index = index_of_prefix.get(bytes(payload))
            if index is not None:
                recovered.setdefault(index, payload)
        if len(recovered) < len(self.plan.codewords):
            return None
        joined = b"".join(recovered[i] for i in range(len(self.plan.codewords)))
        return joined[: len(self.plan.payload)]

    def _k(self) -> int:
        """Payload bytes per codeword in this run's plan.

        Derived from the RS dimensioning: decoded payloads may be absent,
        and a codeword is n bytes (payload plus parity), not k — falling
        back to the codeword length would build the prefix map with the
        wrong slice.  Hand-built results without a config (unit fixtures)
        fall back to a decoded payload's length, which is k by definition.
        """
        if self.config is not None:
            return self.config.rs_params().k
        if self.report.payloads:
            return len(self.report.payloads[0])
        return 0


class LinkSimulator:
    """Reproducible transmitter-camera-receiver runs for one device.

    ``planner`` optionally replaces the in-run transmitter-plan/waveform
    construction (see :data:`Planner`); because plan building is fully
    deterministic in ``(config, payload)``, a memoizing planner cannot
    change any run outcome, only skip redundant work.
    """

    def __init__(
        self,
        config: SystemConfig,
        device: DeviceProfile,
        channel: Optional[ChannelConditions] = None,
        simulated_columns: int = 48,
        seed=0,
        faults: Optional[Sequence[FaultInjector]] = None,
        planner: Optional[Planner] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.config = config
        self.device = device
        self.channel = channel if channel is not None else ChannelConditions.paper_setup()
        self.simulated_columns = simulated_columns
        self.seed = seed
        #: Fault injectors applied, in order, to each recording before the
        #: receiver sees it (see :mod:`repro.faults`).
        self.faults = tuple(faults or ())
        self.planner = planner
        #: Injected observability (see :mod:`repro.obs`): spans mirror the
        #: stage timings, and the no-op defaults keep the hot path clean.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def run(
        self,
        payload: Optional[bytes] = None,
        duration_s: float = 2.0,
    ) -> LinkResult:
        """Broadcast ``payload`` cyclically and record for ``duration_s``."""
        require_positive(duration_s, "duration_s")
        if payload is None:
            payload = text_payload(3 * self.config.rs_params().k, seed=self.seed)

        timings = StageTimings()
        with self.tracer.span(
            SPAN_CELL,
            device=self.device.name,
            order=self.config.csk_order,
            rate=float(self.config.symbol_rate),
            seed=str(self.seed),
        ):
            with timings.measure("tx-plan"), self.tracer.span(
                SPAN_TX_PLAN
            ) as span:
                plan, waveform = self._plan_and_waveform(payload, span)

            profile = DeviceProfile(
                name=self.device.name,
                timing=self.device.timing,
                response=self.device.response,
                noise=self.device.noise,
                optics=self.channel.make_optics(),
            )
            camera = profile.make_camera(
                simulated_columns=self.simulated_columns, seed=self.seed
            )
            with timings.measure("record"), self.tracer.span(
                SPAN_RECORD
            ) as span:
                frames = camera.record(
                    waveform,
                    duration=duration_s,
                    tracer=self.tracer,
                    metrics=self.metrics,
                )
                span.set("frames", len(frames))
            if not frames:
                raise LinkError(
                    f"duration {duration_s}s too short for one frame at "
                    f"{profile.timing.frame_rate} fps"
                )
            with timings.measure("inject"), self.tracer.span(
                SPAN_INJECT
            ) as span:
                frames, schedule = self._inject_faults(frames)
                for key, value in schedule.span_attributes().items():
                    span.set(key, value)

            receiver = make_receiver(
                self.config,
                profile.timing,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            with timings.measure("decode"), self.tracer.span(SPAN_DECODE):
                report = receiver.process_frames(frames)
            with timings.measure("metrics"), self.tracer.span(SPAN_METRICS):
                matches = align_ground_truth(
                    report.bands, plan.symbols, waveform
                )
                metrics = compute_link_metrics(
                    report=report,
                    matches=matches,
                    bits_per_symbol=self.config.bits_per_symbol,
                    payload_bytes_per_packet=self.config.rs_params().k,
                    duration_s=duration_s,
                )
        self.metrics.counter(M_RUNS_COMPLETED).inc()
        self.metrics.counter(M_FAULTS_INJECTED).inc(len(schedule))
        self.metrics.histogram(M_RUN_WALL_SECONDS).observe(timings.total())
        return LinkResult(
            config=self.config,
            device_name=self.device.name,
            metrics=metrics,
            report=report,
            plan=plan,
            matches=matches,
            fault_schedule=schedule,
            timings=timings,
        )

    def record_session(
        self,
        payload: Optional[bytes] = None,
        duration_s: float = 2.0,
    ) -> Tuple[TransmissionPlan, list, FaultSchedule]:
        """The frame-producing front half of :meth:`run`, without decoding.

        Builds the broadcast plan, records the camera, and applies the
        configured fault injectors — exactly as :meth:`run` does, with the
        same seed derivations — but hands back ``(plan, frames, schedule)``
        instead of decoding.  This is how streaming clients (the session
        service, live examples) obtain a recording to feed a
        :class:`~repro.rx.streaming.StreamingReceiver` frame by frame.
        """
        require_positive(duration_s, "duration_s")
        if payload is None:
            payload = text_payload(3 * self.config.rs_params().k, seed=self.seed)
        plan, waveform = self._plan_and_waveform(payload)
        profile = DeviceProfile(
            name=self.device.name,
            timing=self.device.timing,
            response=self.device.response,
            noise=self.device.noise,
            optics=self.channel.make_optics(),
        )
        camera = profile.make_camera(
            simulated_columns=self.simulated_columns, seed=self.seed
        )
        frames = camera.record(
            waveform, duration=duration_s, tracer=self.tracer, metrics=self.metrics
        )
        if not frames:
            raise LinkError(
                f"duration {duration_s}s too short for one frame at "
                f"{profile.timing.frame_rate} fps"
            )
        frames, schedule = self._inject_faults(frames)
        return plan, frames, schedule

    def _plan_and_waveform(
        self, payload: bytes, span=NULL_SPAN
    ) -> Tuple[TransmissionPlan, OpticalWaveform]:
        """Build (or fetch via the injected planner) the broadcast cycle.

        ``span`` is the enclosing ``tx-plan`` span.  A planner's cache
        outcome is recorded as an *attribute* only (``cache_hit``) — span
        structure must stay a pure function of the spec, and cache state
        differs between serial and per-worker caches.  The ``waveform``
        child span exists only on the build-from-scratch path, which is
        itself deterministic in whether a planner was injected.
        """
        if self.planner is not None:
            plan, waveform = self.planner(self.config, payload)
            last_hit = getattr(self.planner, "last_hit", None)
            if last_hit is not None:
                span.set("cache_hit", bool(last_hit))
                name = M_PLAN_CACHE_HITS if last_hit else M_PLAN_CACHE_MISSES
                self.metrics.counter(name).inc()
            span.set("symbols", len(plan.symbols))
            span.set("codewords", len(plan.codewords))
            return plan, waveform
        transmitter = ColorBarsTransmitter(self.config)
        plan = transmitter.plan(payload)
        with self.tracer.span(SPAN_WAVEFORM) as wave_span:
            waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
            wave_span.set("symbols", waveform.num_symbols)
        span.set("symbols", len(plan.symbols))
        span.set("codewords", len(plan.codewords))
        return plan, waveform

    def _inject_faults(self, frames) -> tuple:
        """Run every configured injector over the recording, in order.

        Each injector gets a generator derived from the run seed and its
        position+name label, so fault randomness is reproducible, independent
        of the camera's, and — crucially — independent of the injector's
        intensity (common random numbers across a sweep).
        """
        schedule = FaultSchedule()
        if not self.faults:
            return frames, schedule
        fault_root = derive_rng(make_rng(self.seed), "faults")
        for index, injector in enumerate(self.faults):
            rng = derive_rng(fault_root, f"fault:{index}:{injector.name}")
            frames = injector.inject(frames, rng, schedule)
        return frames, schedule


@dataclass(frozen=True)
class RunSpec:
    """One link run as a picklable value: everything a cell needs, no state.

    Cells built from specs are independent by construction — every stochastic
    component derives from ``seed`` — which is the determinism argument that
    lets :mod:`repro.perf.executor` farm specs out to worker processes and
    still produce byte-identical results to a serial loop.
    """

    config: SystemConfig
    device: DeviceProfile
    channel: Optional[ChannelConditions] = None
    simulated_columns: int = 48
    seed: int = 0
    faults: Tuple[FaultInjector, ...] = ()
    payload: Optional[bytes] = None
    duration_s: float = 2.0

    def execute(
        self, planner: Optional[Planner] = None, observe: bool = False
    ) -> LinkResult:
        """Run this cell (optionally with a shared memoizing planner).

        ``observe=True`` records the run into a cell-local tracer and
        metrics registry and attaches both to the result (``trace``,
        ``obs_metrics``) — the worker-side half of sweep trace collection.
        Observation is a parameter here, *not* a spec field: specs stay
        pure value objects so :func:`repro.perf.runtime.spec_fingerprint`
        is unaffected by how a run is observed.
        """
        tracer = Tracer() if observe else None
        registry = MetricsRegistry() if observe else None
        simulator = LinkSimulator(
            self.config,
            self.device,
            channel=self.channel,
            simulated_columns=self.simulated_columns,
            seed=self.seed,
            faults=self.faults,
            planner=planner,
            tracer=tracer,
            metrics=registry,
        )
        result = simulator.run(payload=self.payload, duration_s=self.duration_s)
        if observe:
            result.trace = tracer.spans()
            result.obs_metrics = registry.export()
        return result


#: A runner executes specs and returns results in the same order.  The
#: default (``None``) is an in-process serial loop.
Runner = Callable[[Sequence[RunSpec]], List[LinkResult]]


def execute_specs(
    specs: Sequence[RunSpec], runner: Optional[Runner] = None
) -> List[LinkResult]:
    """Run ``specs`` through ``runner`` (or serially), preserving order."""
    if runner is not None:
        return list(runner(specs))
    return [spec.execute() for spec in specs]


def sweep_specs(
    device: DeviceProfile,
    orders: Sequence[int] = (4, 8, 16, 32),
    symbol_rates: Sequence[float] = (1000.0, 2000.0, 3000.0, 4000.0),
    duration_s: float = 2.0,
    seed=0,
    config_overrides: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    **config_kwargs,
) -> Dict[Tuple[int, float], RunSpec]:
    """The feasible cells of the Figs 9-11 grid, as specs, in grid order."""
    specs: Dict[Tuple[int, float], RunSpec] = {}
    for order in orders:
        for rate in symbol_rates:
            if device.timing.rows_per_symbol(rate) < 10:
                continue
            config = SystemConfig(
                csk_order=order,
                symbol_rate=rate,
                design_loss_ratio=device.timing.gap_fraction,
                frame_rate=device.timing.frame_rate,
                **config_kwargs,
            )
            if config_overrides is not None:
                config = config_overrides(config)
            specs[(order, rate)] = RunSpec(
                config=config, device=device, seed=seed, duration_s=duration_s
            )
    return specs


def sweep(
    device: DeviceProfile,
    orders: Sequence[int] = (4, 8, 16, 32),
    symbol_rates: Sequence[float] = (1000.0, 2000.0, 3000.0, 4000.0),
    duration_s: float = 2.0,
    seed=0,
    config_overrides: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    runner: Optional[Runner] = None,
    **config_kwargs,
) -> Dict[Tuple[int, float], LinkResult]:
    """The Figs 9-11 grid: CSK order x symbol rate for one device.

    Returns ``{(order, rate): LinkResult}``.  Combinations whose band width
    falls below the 10-row minimum for the device are skipped (the paper's
    §4 feasibility constraint), mirroring what a real deployment must do.

    ``runner`` executes the grid's cells (e.g. over a process pool via
    :func:`repro.perf.executor.make_runner`); the default runs serially.
    """
    specs = sweep_specs(
        device,
        orders=orders,
        symbol_rates=symbol_rates,
        duration_s=duration_s,
        seed=seed,
        config_overrides=config_overrides,
        **config_kwargs,
    )
    results = execute_specs(list(specs.values()), runner=runner)
    return dict(zip(specs.keys(), results))
