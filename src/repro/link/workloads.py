"""Payload generators for link experiments.

The paper motivates ColorBars with location-specific content delivery:
advertisements, promotions, floor maps, navigation hints — small textual or
image payloads broadcast by a luminaire.  These generators produce such
payloads deterministically for benches and examples.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.rng import make_rng


def random_payload(size: int, seed=0) -> bytes:
    """Uniformly random bytes — the worst case for any entropy coding."""
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    rng = make_rng(seed)
    return bytes(rng.integers(0, 256, size, dtype=np.uint8))


def text_payload(size: int, seed=0) -> bytes:
    """ASCII text resembling retail/navigation broadcast content."""
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    fragments = [
        b"AISLE 7: household LEDs 20% off this week. ",
        b"Turn left at the next junction for conference room B204. ",
        b"Today's promotion: buy two get one free on batteries. ",
        b"Exit route: corridor east, stairwell two floors down. ",
        b"Gate 12 boarding begins 14:35, walk time 6 minutes. ",
    ]
    rng = make_rng(seed)
    out = bytearray()
    while len(out) < size:
        out.extend(fragments[int(rng.integers(0, len(fragments)))])
    return bytes(out[:size])


def image_like_payload(size: int, seed=0) -> bytes:
    """Bytes with the statistics of a small compressed image.

    Compressed image data is high-entropy but not uniform; we synthesize a
    tiny gradient-plus-noise bitmap and deflate it, then cycle the result to
    the requested size.
    """
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    rng = make_rng(seed)
    side = 32
    gradient = np.linspace(0, 255, side, dtype=np.uint8)
    bitmap = np.add.outer(gradient, gradient) // 2
    noisy = (bitmap + rng.integers(0, 32, bitmap.shape)).astype(np.uint8)
    compressed = zlib.compress(noisy.tobytes(), level=9)
    repeats = -(-size // len(compressed))
    return (compressed * repeats)[:size]


def beacon_payload(identifier: int, url: str = "") -> bytes:
    """A minimal smart-sign beacon: 4-byte id plus an optional URL."""
    if not 0 <= identifier < 2**32:
        raise ConfigurationError(
            f"identifier must fit in 32 bits, got {identifier}"
        )
    body = identifier.to_bytes(4, "big") + url.encode("utf-8")
    checksum = zlib.crc32(body).to_bytes(4, "big")
    return body + checksum
