"""Closed-loop link adaptation: estimator -> hysteresis controller -> rungs.

ColorBars picks CSK order, white-symbol fraction and RS strength offline for
a static channel; the paper's own distance/ISO sweeps show the operating
point that works at 30 cm fails at 2 m.  This module closes the loop:

* **Channel-quality windows** — :class:`WindowStats` condenses one
  adaptation window (a trajectory segment in batch execution, a packet
  boundary in streaming/serve execution) into the three estimates the
  receive path now surfaces on :class:`~repro.rx.receiver.ReceiverReport`:
  a calibration-symbol SER proxy, the mean ΔE margin to the runner-up
  reference, and the erasure fraction.  Undefined estimates stay ``None``
  (an all-dark window has *no* margin, not a zero margin).
* **Hysteresis rate controller** — :func:`advance` is a pure function of
  ``(state, window stats, policy)``: downshift immediately on any breach,
  upshift only after ``upshift_after_clean`` consecutive clean windows,
  and a probation period after every rung change during which clean
  windows do not count toward the next upshift.  Golden decision traces in
  ``tests/link/test_adapt.py`` pin the state machine.
* **Modulation ladder** — :class:`ModulationLadder` orders
  :class:`ModulationRung` entries fastest-first (CSK order 32 -> 4, white
  margin and RS design-loss ratio growing toward the robust end).  Every
  rung derives its illumination ratio *from the flicker model*, so no
  reachable operating point can violate the perceptual-flicker budget —
  :meth:`ModulationLadder.validate` proves it and raises
  :class:`~repro.exceptions.AdaptationError` otherwise.
  :func:`optimized_rung_config` additionally reuses
  :mod:`repro.csk.optimizer` to re-separate a rung's constellation in a
  device's received space.
* **Both execution shapes** — :func:`simulate_adaptive` replays a
  :class:`~repro.link.channel.ChannelTrajectory` segment by segment,
  re-planning the transmitter at the controller's rung between segments
  (batch or streaming decode per segment; the PR 7 byte-identity contract
  makes the decision trace identical across shapes), and
  :func:`adaptive_vs_fixed` produces the reproducible adaptive-vs-fixed
  goodput comparison tracked by the bench.  The serve-side wiring (packet
  boundaries, downshift-before-quarantine) lives in
  :class:`repro.serve.manager.SessionManager`.

Everything here is deterministic: no clocks, no entropy — segment seeds
derive from the run seed and segment index, and the controller is pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.camera.devices import DeviceProfile
from repro.color.cielab import JND_DELTA_E
from repro.core.config import SystemConfig
from repro.core.system import make_receiver, make_streaming_receiver
from repro.exceptions import AdaptationError
from repro.faults.injectors import DriftInjector
from repro.flicker.threshold import FlickerModel
from repro.link.channel import ChannelTrajectory, TrajectorySegment
from repro.link.simulator import LinkSimulator
from repro.obs.metrics import NULL_METRICS
from repro.obs.schema import (
    M_ADAPT_DECISIONS,
    M_ADAPT_DOWNSHIFTS,
    M_ADAPT_MARGIN,
    M_ADAPT_RUNG,
    M_ADAPT_UPSHIFTS,
    SPAN_ADAPT_SEGMENT,
)
from repro.obs.trace import NULL_TRACER
from repro.rx.receiver import ReceiverReport

#: Controller actions, as recorded on :class:`AdaptationDecision`.
ACTION_HOLD = "hold"
ACTION_UPSHIFT = "upshift"
ACTION_DOWNSHIFT = "downshift"
ACTION_QUARANTINE = "quarantine"

#: Execution shapes of :func:`simulate_adaptive`.
EXEC_BATCH = "batch"
EXEC_STREAMING = "streaming"
EXECUTION_SHAPES = (EXEC_BATCH, EXEC_STREAMING)


# -- the modulation ladder -------------------------------------------------


@dataclass(frozen=True)
class ModulationRung:
    """One operating point on the ladder: order, white margin, RS strength.

    ``white_margin`` is *extra* white fraction beyond the flicker model's
    perceptual minimum (robust rungs brighten the white anchor the
    demodulator matches against); ``loss_ratio`` is the design loss ratio
    the RS code is dimensioned for (robust rungs carry more parity).
    """

    csk_order: int
    white_margin: float = 0.0
    loss_ratio: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.white_margin < 1:
            raise AdaptationError(
                f"white_margin must be in [0, 1), got {self.white_margin}"
            )
        if not 0 <= self.loss_ratio < 0.5:
            raise AdaptationError(
                f"loss_ratio must be in [0, 0.5), got {self.loss_ratio}"
            )

    def illumination_ratio(self, symbol_rate: float) -> float:
        """Data share eta at this rung: flicker minimum plus the margin.

        Derived through :class:`~repro.flicker.threshold.FlickerModel`, so
        the white fraction can only sit *above* the perceptual minimum —
        the hard constraint that makes every rung flicker-safe by
        construction.
        """
        return FlickerModel.reference().illumination_ratio(
            symbol_rate, margin=self.white_margin
        )

    def make_config(
        self, symbol_rate: float, frame_rate: float
    ) -> SystemConfig:
        """The shared TX/RX contract this rung operates under."""
        return SystemConfig(
            csk_order=self.csk_order,
            symbol_rate=symbol_rate,
            design_loss_ratio=self.loss_ratio,
            frame_rate=frame_rate,
            illumination_ratio=self.illumination_ratio(symbol_rate),
        )

    def label(self) -> str:
        return (
            f"{self.csk_order}-CSK/w+{self.white_margin:.2f}"
            f"/l={self.loss_ratio:.2f}"
        )


def optimized_rung_config(
    rung: ModulationRung,
    symbol_rate: float,
    frame_rate: float,
    device: Optional[DeviceProfile] = None,
    iterations: int = 600,
    seed=0,
) -> SystemConfig:
    """A rung config whose constellation is re-separated by the optimizer.

    Reuses :mod:`repro.csk.optimizer`: the standard design for the rung's
    order is hill-climbed to maximize worst-case separation — in the
    device's *received* chroma space when a profile is given (the space the
    demodulator actually decides in), in transmit space otherwise.  The
    optimizer's pair moves preserve the white-balanced mixture, so the
    flicker budget the rung already satisfies is untouched.
    """
    from repro.csk.optimizer import optimize_constellation, received_space_map

    base = rung.make_config(symbol_rate, frame_rate)
    space_map = None
    if device is not None:
        space_map = received_space_map(device.response, base.emitter)
    constellation = optimize_constellation(
        rung.csk_order,
        base.emitter.gamut,
        space_map=space_map,
        iterations=iterations,
        seed=seed,
    )
    return replace(base, custom_constellation=constellation)


@dataclass(frozen=True)
class ModulationLadder:
    """Rungs ordered fastest-first; index 0 is the most aggressive.

    Downshifting moves to higher indices (more robust); the rung past the
    end is quarantine — the controller only recommends it once the ladder
    is exhausted and the channel still breaches.
    """

    rungs: Tuple[ModulationRung, ...]

    def __post_init__(self) -> None:
        if not self.rungs:
            raise AdaptationError("ladder must have at least one rung")
        orders = [rung.csk_order for rung in self.rungs]
        if any(a < b for a, b in zip(orders, orders[1:])):
            raise AdaptationError(
                "ladder rungs must be ordered fastest-first "
                f"(non-increasing CSK order), got {orders}"
            )

    def __len__(self) -> int:
        return len(self.rungs)

    def config(
        self, rung_index: int, symbol_rate: float, frame_rate: float
    ) -> SystemConfig:
        return self.rungs[rung_index].make_config(symbol_rate, frame_rate)

    def validate(self, symbol_rate: float) -> None:
        """Prove every rung respects the perceptual-flicker budget.

        A rung's white fraction must meet the flicker model's required
        minimum at the operating symbol rate.  Rung etas are *derived* from
        the model, so this can only fail when the model's [0.05, 1] eta
        clamp truncated an infeasibly large white requirement (very low
        symbol rates) — exactly the case adaptation must refuse to run in.
        """
        model = FlickerModel.reference()
        required = model.required_white_fraction(symbol_rate)
        for index, rung in enumerate(self.rungs):
            white = 1.0 - rung.illumination_ratio(symbol_rate)
            if white + 1e-9 < required:
                raise AdaptationError(
                    f"rung {index} ({rung.label()}) carries {white:.2f} "
                    f"white fraction, below the flicker minimum "
                    f"{required:.2f} at {symbol_rate:.0f} sym/s"
                )

    @classmethod
    def default(cls) -> "ModulationLadder":
        """The 32 -> 16 -> 8 -> 4 ladder of the paper's evaluation set."""
        return cls(
            rungs=(
                ModulationRung(csk_order=32, white_margin=0.0, loss_ratio=0.20),
                ModulationRung(csk_order=16, white_margin=0.02, loss_ratio=0.25),
                ModulationRung(csk_order=8, white_margin=0.05, loss_ratio=0.30),
                ModulationRung(csk_order=4, white_margin=0.08, loss_ratio=0.35),
            )
        )


# -- window stats and the hysteresis policy --------------------------------


@dataclass(frozen=True)
class WindowStats:
    """Channel quality measured over one adaptation window.

    The three estimates mirror :class:`~repro.rx.receiver.ReceiverReport`'s
    channel-quality properties; ``None`` means *undefined* (nothing to
    measure), which the policy treats differently from a measured zero.
    """

    frames: int = 0
    packets_seen: int = 0
    packets_decoded: int = 0
    frame_failures: int = 0
    ser_estimate: Optional[float] = None
    delta_e_margin: Optional[float] = None
    erasure_fraction: Optional[float] = None

    @classmethod
    def from_report(cls, report: ReceiverReport) -> "WindowStats":
        """One whole report as a single window (the batch shape)."""
        return cls(
            frames=report.frames_processed,
            packets_seen=report.packets_seen,
            packets_decoded=report.packets_decoded,
            frame_failures=report.frames_failed,
            ser_estimate=report.ser_estimate,
            delta_e_margin=report.delta_e_margin,
            erasure_fraction=report.erasure_fraction,
        )

    @property
    def is_blind(self) -> bool:
        """True when the window produced no channel evidence at all.

        No packet window closed and neither the SER proxy nor the ΔE
        margin is defined: the controller can neither clear nor condemn
        the current rung, so :func:`advance` freezes (a dead channel is
        the serve layer's failure-streak problem, not a rate problem).
        """
        return (
            self.packets_seen == 0
            and self.ser_estimate is None
            and self.delta_e_margin is None
        )

    def describe(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value:.3f}"

        return (
            f"frames={self.frames} pkts={self.packets_decoded}"
            f"/{self.packets_seen} ser={fmt(self.ser_estimate)} "
            f"margin={fmt(self.delta_e_margin)} "
            f"erasure={fmt(self.erasure_fraction)}"
        )


class ReportWindowTracker:
    """Successive :class:`WindowStats` deltas off a growing report.

    The streaming/serve shape cannot hand the controller one report per
    window — the session's report only grows.  This tracker snapshots the
    counters at each window boundary and emits the delta as that window's
    stats; the margin is averaged over exactly the bands the window added.
    """

    def __init__(self) -> None:
        self._frames = 0
        self._packets_seen = 0
        self._packets_decoded = 0
        self._frame_failures = 0
        self._calibration_seen = 0
        self._calibration_errors = 0
        self._codeword_symbols = 0
        self._erasure_symbols = 0
        self._bands = 0

    def take(self, report: ReceiverReport) -> WindowStats:
        """Close the current window against ``report`` and start the next."""
        margin_total = 0.0
        margin_count = 0
        for band in report.bands[self._bands:]:
            gap = band.decision.margin
            if gap is not None:
                margin_total += gap
                margin_count += 1
        calibration_seen = (
            report.calibration_symbols_seen - self._calibration_seen
        )
        calibration_errors = (
            report.calibration_symbol_errors - self._calibration_errors
        )
        codeword_symbols = report.codeword_symbols_seen - self._codeword_symbols
        erasure_symbols = report.erasure_symbols_seen - self._erasure_symbols
        stats = WindowStats(
            frames=report.frames_processed - self._frames,
            packets_seen=report.packets_seen - self._packets_seen,
            packets_decoded=report.packets_decoded - self._packets_decoded,
            frame_failures=report.frames_failed - self._frame_failures,
            ser_estimate=(
                calibration_errors / calibration_seen
                if calibration_seen > 0
                else None
            ),
            delta_e_margin=(
                margin_total / margin_count if margin_count > 0 else None
            ),
            erasure_fraction=(
                erasure_symbols / codeword_symbols
                if codeword_symbols > 0
                else None
            ),
        )
        self._frames = report.frames_processed
        self._packets_seen = report.packets_seen
        self._packets_decoded = report.packets_decoded
        self._frame_failures = report.frames_failed
        self._calibration_seen = report.calibration_symbols_seen
        self._calibration_errors = report.calibration_symbol_errors
        self._codeword_symbols = report.codeword_symbols_seen
        self._erasure_symbols = report.erasure_symbols_seen
        self._bands = len(report.bands)
        return stats


@dataclass(frozen=True)
class AdaptationPolicy:
    """The hysteresis constants of the controller (see DESIGN.md §5j)."""

    #: Downshift when the window's mean ΔE margin falls below this
    #: (~3.25 JND: where the 32-CSK rung's decisions stop being safe on
    #: the evaluated devices, with clean-channel windows well above it).
    min_margin_delta_e: float = 3.25 * JND_DELTA_E
    #: Downshift when the calibration-symbol SER proxy exceeds this.
    max_ser: float = 0.10
    #: Downshift when the erased share of codeword symbols exceeds this.
    max_erasure_fraction: float = 0.50
    #: Clean windows required (outside probation) before an upshift.
    upshift_after_clean: int = 2
    #: Windows after any rung change during which cleanliness does not
    #: count toward the next upshift.
    probation_windows: int = 1
    #: Consecutive breached windows *at the last rung* before the
    #: controller recommends quarantine.
    quarantine_after_breaches: int = 3

    def __post_init__(self) -> None:
        if self.min_margin_delta_e < 0:
            raise AdaptationError(
                f"min_margin_delta_e must be >= 0, got {self.min_margin_delta_e}"
            )
        for name in ("max_ser", "max_erasure_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise AdaptationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        for name in (
            "upshift_after_clean",
            "quarantine_after_breaches",
        ):
            value = getattr(self, name)
            if value < 1:
                raise AdaptationError(f"{name} must be >= 1, got {value}")
        if self.probation_windows < 0:
            raise AdaptationError(
                f"probation_windows must be >= 0, got {self.probation_windows}"
            )

    def breach_reason(self, stats: WindowStats) -> Optional[str]:
        """Why this window breaches the policy, or ``None`` if clean.

        Checked in fixed priority order so decision traces are stable.  A
        window that saw packets but decoded none is the FEC cliff itself.
        Blind windows (no evidence in either direction,
        :attr:`WindowStats.is_blind`) are neither clean nor breached —
        :func:`advance` handles them before this is consulted.
        """
        if (
            stats.delta_e_margin is not None
            and stats.delta_e_margin < self.min_margin_delta_e
        ):
            return "margin"
        if stats.ser_estimate is not None and stats.ser_estimate > self.max_ser:
            return "ser"
        if (
            stats.erasure_fraction is not None
            and stats.erasure_fraction > self.max_erasure_fraction
        ):
            return "erasure"
        if stats.packets_seen > 0 and stats.packets_decoded == 0:
            return "fec-cliff"
        return None


# -- the pure state machine ------------------------------------------------


@dataclass(frozen=True)
class ControllerState:
    """The controller's whole memory: rung, streaks, probation."""

    rung: int
    clean_windows: int = 0
    probation: int = 0
    breach_streak: int = 0


@dataclass(frozen=True)
class AdaptationDecision:
    """One controller step: what it saw, what it did, why."""

    window: int
    action: str
    previous_rung: int
    rung: int
    reason: str
    stats: WindowStats

    def describe(self) -> str:
        arrow = (
            f"rung {self.previous_rung}"
            if self.previous_rung == self.rung
            else f"rung {self.previous_rung}->{self.rung}"
        )
        return (
            f"w{self.window:03d} {self.action:<10} {arrow:<11} "
            f"[{self.reason}] {self.stats.describe()}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "action": self.action,
            "previous_rung": self.previous_rung,
            "rung": self.rung,
            "reason": self.reason,
            "stats": {
                "frames": self.stats.frames,
                "packets_seen": self.stats.packets_seen,
                "packets_decoded": self.stats.packets_decoded,
                "frame_failures": self.stats.frame_failures,
                "ser_estimate": self.stats.ser_estimate,
                "delta_e_margin": self.stats.delta_e_margin,
                "erasure_fraction": self.stats.erasure_fraction,
            },
        }


def advance(
    state: ControllerState,
    stats: WindowStats,
    policy: AdaptationPolicy,
    num_rungs: int,
) -> Tuple[ControllerState, str, str]:
    """One pure hysteresis step: ``(state, stats, policy) -> (state', action, reason)``.

    * **Blind window** (:attr:`WindowStats.is_blind`) -> hold with the
      state frozen: no evidence either way, so neither the clean streak
      nor probation nor the breach streak moves.
    * **Breach** -> downshift immediately (one rung toward robust) and
      enter probation; at the last rung, hold and count the breach streak
      until it crosses ``quarantine_after_breaches`` — quarantine is the
      rung past the end of the ladder, never the first response.
    * **Clean during probation** -> hold; probation decrements and the
      clean-window streak stays at zero (recovery must prove itself).
    * **Clean otherwise** -> the streak grows; at
      ``upshift_after_clean`` it buys one upshift (toward fast) and a
      fresh probation.
    """
    if stats.is_blind:
        return state, ACTION_HOLD, "blind"
    breach = policy.breach_reason(stats)
    if breach is not None:
        if state.rung + 1 < num_rungs:
            return (
                ControllerState(
                    rung=state.rung + 1,
                    probation=policy.probation_windows,
                ),
                ACTION_DOWNSHIFT,
                breach,
            )
        streak = state.breach_streak + 1
        if streak >= policy.quarantine_after_breaches:
            return (
                ControllerState(rung=state.rung, breach_streak=streak),
                ACTION_QUARANTINE,
                breach,
            )
        return (
            ControllerState(rung=state.rung, breach_streak=streak),
            ACTION_HOLD,
            breach,
        )
    if state.probation > 0:
        return (
            ControllerState(rung=state.rung, probation=state.probation - 1),
            ACTION_HOLD,
            "probation",
        )
    clean = state.clean_windows + 1
    if clean >= policy.upshift_after_clean and state.rung > 0:
        return (
            ControllerState(
                rung=state.rung - 1,
                probation=policy.probation_windows,
            ),
            ACTION_UPSHIFT,
            "clean-streak",
        )
    return (
        ControllerState(rung=state.rung, clean_windows=clean),
        ACTION_HOLD,
        "clean",
    )


class LinkAdaptationController:
    """Stateful wrapper around :func:`advance`, with a decision log.

    Observability is injected; decisions recorded through
    :meth:`_record_decision` feed the ``colorbars.adapt.*`` metrics in both
    execution shapes.
    """

    def __init__(
        self,
        ladder: Optional[ModulationLadder] = None,
        policy: Optional[AdaptationPolicy] = None,
        initial_rung: int = 0,
        metrics=None,
    ) -> None:
        self.ladder = ladder if ladder is not None else ModulationLadder.default()
        self.policy = policy if policy is not None else AdaptationPolicy()
        if not 0 <= initial_rung < len(self.ladder):
            raise AdaptationError(
                f"initial_rung {initial_rung} outside ladder of "
                f"{len(self.ladder)} rung(s)"
            )
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.state = ControllerState(rung=initial_rung)
        self.decisions: List[AdaptationDecision] = []

    @property
    def rung(self) -> int:
        return self.state.rung

    @property
    def can_downshift(self) -> bool:
        return self.state.rung + 1 < len(self.ladder)

    def observe(self, stats: WindowStats) -> AdaptationDecision:
        """Feed one window's stats; returns the decision taken."""
        previous = self.state.rung
        self.state, action, reason = advance(
            self.state, stats, self.policy, len(self.ladder)
        )
        return self._record_decision(previous, action, reason, stats)

    def force_downshift(
        self, reason: str, stats: Optional[WindowStats] = None
    ) -> Optional[AdaptationDecision]:
        """Downshift outside the window cadence (serve failure streaks).

        Returns ``None`` when the ladder is already exhausted — the
        caller's signal that quarantine is all that is left.
        """
        if not self.can_downshift:
            return None
        previous = self.state.rung
        self.state = ControllerState(
            rung=previous + 1, probation=self.policy.probation_windows
        )
        return self._record_decision(
            previous,
            ACTION_DOWNSHIFT,
            reason,
            stats if stats is not None else WindowStats(),
        )

    def trace(self) -> Tuple[str, ...]:
        """The golden decision trace: one line per decision."""
        return tuple(decision.describe() for decision in self.decisions)

    def _record_decision(
        self, previous: int, action: str, reason: str, stats: WindowStats
    ) -> AdaptationDecision:
        decision = AdaptationDecision(
            window=len(self.decisions),
            action=action,
            previous_rung=previous,
            rung=self.state.rung,
            reason=reason,
            stats=stats,
        )
        self.decisions.append(decision)
        metrics = self.metrics
        metrics.counter(M_ADAPT_DECISIONS).inc()
        if action == ACTION_UPSHIFT:
            metrics.counter(M_ADAPT_UPSHIFTS).inc()
        elif action == ACTION_DOWNSHIFT:
            metrics.counter(M_ADAPT_DOWNSHIFTS).inc()
        metrics.gauge(M_ADAPT_RUNG).set(self.state.rung)
        if stats.delta_e_margin is not None:
            metrics.histogram(M_ADAPT_MARGIN).observe(stats.delta_e_margin)
        return decision


# -- trajectory execution (both shapes) ------------------------------------


def _segment_seed(seed, index: int) -> int:
    """Stable per-segment seed: independent recordings, reproducible runs."""
    base = seed if isinstance(seed, int) else 0
    return (base * 1000003 + 7919 * index + 1) % (2**31)


@dataclass(frozen=True)
class SegmentOutcome:
    """One trajectory segment's result under one configuration."""

    index: int
    rung: int
    csk_order: int
    payload_bytes: int
    packets_seen: int
    packets_decoded: int
    packets_failed_fec: int
    stats: WindowStats

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "rung": self.rung,
            "csk_order": self.csk_order,
            "payload_bytes": self.payload_bytes,
            "packets_seen": self.packets_seen,
            "packets_decoded": self.packets_decoded,
            "packets_failed_fec": self.packets_failed_fec,
        }


@dataclass
class TrajectoryRunResult:
    """An adaptive (or fixed-baseline) run over one trajectory."""

    label: str
    execution: str
    duration_s: float
    payload_bytes: int
    segments: List[SegmentOutcome] = field(default_factory=list)
    decisions: List[AdaptationDecision] = field(default_factory=list)
    quarantined: bool = False

    @property
    def goodput_bps(self) -> float:
        return self.payload_bytes * 8.0 / self.duration_s

    def actions(self) -> List[str]:
        return [decision.action for decision in self.decisions]

    def trace(self) -> Tuple[str, ...]:
        return tuple(decision.describe() for decision in self.decisions)

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "execution": self.execution,
            "duration_s": self.duration_s,
            "payload_bytes": self.payload_bytes,
            "goodput_bps": self.goodput_bps,
            "quarantined": self.quarantined,
            "segments": [segment.as_dict() for segment in self.segments],
            "decisions": [decision.as_dict() for decision in self.decisions],
        }


def _decode_segment_report(
    config: SystemConfig,
    device: DeviceProfile,
    segment: TrajectorySegment,
    seed: int,
    simulated_columns: int,
    execution: str,
) -> ReceiverReport:
    """Record one segment and decode it in the requested execution shape.

    The two shapes produce byte-identical reports (the PR 7 streaming
    contract), which is what makes controller decision traces identical
    across them — asserted by tests, relied on by the CI soak.
    """
    faults = ()
    if segment.drift_intensity > 0:
        faults = (DriftInjector(segment.drift_intensity),)
    simulator = LinkSimulator(
        config,
        device,
        channel=segment.conditions(),
        simulated_columns=simulated_columns,
        seed=seed,
        faults=faults,
    )
    _, frames, _ = simulator.record_session(duration_s=segment.duration_s)
    if execution == EXEC_STREAMING:
        streaming = make_streaming_receiver(config, device.timing)
        for frame in frames:
            streaming.feed(frame)
        streaming.finish()
        return streaming.report
    receiver = make_receiver(config, device.timing)
    return receiver.process_frames(frames)


def _run_trajectory(
    trajectory: ChannelTrajectory,
    device: DeviceProfile,
    label: str,
    execution: str,
    seed,
    simulated_columns: int,
    config_for_segment,
    on_report=None,
    tracer=None,
    metrics=None,
) -> TrajectoryRunResult:
    """Shared segment loop of the adaptive and fixed runs."""
    if execution not in EXECUTION_SHAPES:
        raise AdaptationError(
            f"execution must be one of {EXECUTION_SHAPES}, got {execution!r}"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    result = TrajectoryRunResult(
        label=label,
        execution=execution,
        duration_s=trajectory.total_duration_s,
        payload_bytes=0,
    )
    for index, segment in enumerate(trajectory.segments):
        config, rung = config_for_segment(index)
        if config is None:
            # Quarantined: the rest of the trajectory is dead air, but the
            # goodput denominator stays the full duration.
            break
        with tracer.span(
            SPAN_ADAPT_SEGMENT,
            segment=index,
            rung=rung,
            order=config.csk_order,
        ) as span:
            report = _decode_segment_report(
                config,
                device,
                segment,
                _segment_seed(seed, index),
                simulated_columns,
                execution,
            )
            stats = WindowStats.from_report(report)
            span.set("stats", stats.describe())
        result.payload_bytes += report.payload_bytes
        result.segments.append(
            SegmentOutcome(
                index=index,
                rung=rung,
                csk_order=config.csk_order,
                payload_bytes=report.payload_bytes,
                packets_seen=report.packets_seen,
                packets_decoded=report.packets_decoded,
                packets_failed_fec=report.packets_failed_fec,
                stats=stats,
            )
        )
        if on_report is not None:
            on_report(stats)
    return result


def simulate_adaptive(
    trajectory: ChannelTrajectory,
    device: DeviceProfile,
    ladder: Optional[ModulationLadder] = None,
    policy: Optional[AdaptationPolicy] = None,
    symbol_rate: float = 1500.0,
    seed=0,
    simulated_columns: int = 48,
    execution: str = EXEC_BATCH,
    initial_rung: int = 0,
    tracer=None,
    metrics=None,
) -> TrajectoryRunResult:
    """Run the closed loop over a trajectory: one segment = one window.

    Each segment is transmitted at the controller's current rung and
    decoded (batch or streaming); the resulting window stats drive the
    next decision, so the transmitter re-plans at rung changes exactly at
    segment boundaries — the simulation analogue of renegotiating at
    packet boundaries.  A quarantine decision ends the run (graceful
    degradation: the remaining trajectory is dead air, not an exception).
    """
    ladder = ladder if ladder is not None else ModulationLadder.default()
    ladder.validate(symbol_rate)
    controller = LinkAdaptationController(
        ladder=ladder,
        policy=policy,
        initial_rung=initial_rung,
        metrics=metrics,
    )
    frame_rate = device.timing.frame_rate
    state = {"quarantined": False}

    def config_for_segment(index: int):
        if state["quarantined"]:
            return None, controller.rung
        rung = controller.rung
        return ladder.config(rung, symbol_rate, frame_rate), rung

    def on_report(stats: WindowStats) -> None:
        decision = controller.observe(stats)
        if decision.action == ACTION_QUARANTINE:
            state["quarantined"] = True

    result = _run_trajectory(
        trajectory,
        device,
        label="adaptive",
        execution=execution,
        seed=seed,
        simulated_columns=simulated_columns,
        config_for_segment=config_for_segment,
        on_report=on_report,
        tracer=tracer,
        metrics=metrics,
    )
    result.decisions = list(controller.decisions)
    result.quarantined = state["quarantined"]
    return result


def simulate_fixed(
    trajectory: ChannelTrajectory,
    device: DeviceProfile,
    config: SystemConfig,
    label: Optional[str] = None,
    seed=0,
    simulated_columns: int = 48,
    execution: str = EXEC_BATCH,
    tracer=None,
    metrics=None,
) -> TrajectoryRunResult:
    """A fixed-configuration baseline over the same trajectory and seeds."""
    return _run_trajectory(
        trajectory,
        device,
        label=label if label is not None else config.describe(),
        execution=execution,
        seed=seed,
        simulated_columns=simulated_columns,
        config_for_segment=lambda index: (config, -1),
        tracer=tracer,
        metrics=metrics,
    )


@dataclass
class AdaptiveComparison:
    """The adaptive-vs-fixed goodput curve over one trajectory."""

    adaptive: TrajectoryRunResult
    fixed: Dict[int, TrajectoryRunResult]
    symbol_rate: float
    seed: int

    def best_fixed(self) -> Tuple[int, TrajectoryRunResult]:
        """The fixed rung with the highest end-to-end payload, ties to
        the faster (lower-index) rung."""
        best_index = min(
            self.fixed,
            key=lambda index: (-self.fixed[index].payload_bytes, index),
        )
        return best_index, self.fixed[best_index]

    def as_dict(self) -> Dict[str, object]:
        best_index, best = self.best_fixed()
        return {
            "symbol_rate": self.symbol_rate,
            "seed": self.seed,
            "adaptive": self.adaptive.as_dict(),
            "fixed": {
                str(index): run.as_dict()
                for index, run in sorted(self.fixed.items())
            },
            "best_fixed_rung": best_index,
            "best_fixed_goodput_bps": best.goodput_bps,
            "adaptive_goodput_bps": self.adaptive.goodput_bps,
        }


def adaptive_vs_fixed(
    trajectory: ChannelTrajectory,
    device: DeviceProfile,
    ladder: Optional[ModulationLadder] = None,
    policy: Optional[AdaptationPolicy] = None,
    symbol_rate: float = 1500.0,
    seed=0,
    simulated_columns: int = 48,
    execution: str = EXEC_BATCH,
    tracer=None,
    metrics=None,
) -> AdaptiveComparison:
    """The headline experiment: closed loop vs every fixed rung.

    All runs share the trajectory and the per-segment seeds (common random
    numbers), so the comparison isolates the controller's contribution.
    """
    ladder = ladder if ladder is not None else ModulationLadder.default()
    ladder.validate(symbol_rate)
    adaptive = simulate_adaptive(
        trajectory,
        device,
        ladder=ladder,
        policy=policy,
        symbol_rate=symbol_rate,
        seed=seed,
        simulated_columns=simulated_columns,
        execution=execution,
        tracer=tracer,
        metrics=metrics,
    )
    frame_rate = device.timing.frame_rate
    fixed: Dict[int, TrajectoryRunResult] = {}
    for index, rung in enumerate(ladder.rungs):
        fixed[index] = simulate_fixed(
            trajectory,
            device,
            ladder.config(index, symbol_rate, frame_rate),
            label=f"fixed:{rung.label()}",
            seed=seed,
            simulated_columns=simulated_columns,
            execution=execution,
            tracer=tracer,
        )
    return AdaptiveComparison(
        adaptive=adaptive,
        fixed=fixed,
        symbol_rate=symbol_rate,
        seed=seed if isinstance(seed, int) else 0,
    )
