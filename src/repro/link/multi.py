"""Multi-receiver broadcast analysis.

Paper §8's closing observation: one ColorBars transmitter serving many
phones must provision its Reed-Solomon parity for the *worst* receiver it
supports — "the achievable goodput remains bounded by the slowest (highest
inter-frame loss ratio) smartphone".  This module makes that deployment
question first-class: run one broadcast (one shared configuration) against
a fleet of devices and report what each achieves, plus what each device
*could* have achieved with a link provisioned just for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.camera.devices import DeviceProfile
from repro.core.config import SystemConfig
from repro.core.metrics import LinkMetrics
from repro.exceptions import CellFailure, ConfigurationError
from repro.link.channel import ChannelConditions
from repro.link.simulator import LinkResult, RunSpec, Runner, execute_specs


@dataclass
class FleetMember:
    """One receiver's outcome in a shared broadcast.

    ``shared_metrics`` is ``None`` when the member's run failed under a
    resilient executor (see ``failure`` for the contained record); a plain
    serial broadcast always populates it.
    """

    device_name: str
    shared_metrics: Optional[LinkMetrics]
    dedicated_metrics: Optional[LinkMetrics] = None
    failure: Optional[CellFailure] = None

    @property
    def provisioning_cost_bps(self) -> Optional[float]:
        """Goodput this device gives up because the link serves the fleet."""
        if self.dedicated_metrics is None or self.shared_metrics is None:
            return None
        return (
            self.dedicated_metrics.goodput_bps - self.shared_metrics.goodput_bps
        )


@dataclass
class FleetReport:
    """Outcome of one broadcast across a device fleet.

    ``failures`` carries every contained :class:`CellFailure` when the
    broadcast ran under the resilient runtime — a degraded fleet report
    says exactly which member runs are missing and why, instead of the
    whole broadcast dying with the worst worker.
    """

    shared_config_description: str
    worst_loss_ratio: float
    members: List[FleetMember] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def summary_lines(self) -> List[str]:
        lines = [
            f"shared link: {self.shared_config_description} "
            f"(provisioned for loss {self.worst_loss_ratio:.3f})"
        ]
        for member in self.members:
            if member.shared_metrics is None:
                cause = member.failure.cause if member.failure else "unknown"
                lines.append(
                    f"  {member.device_name}: FAILED ({cause}; no shared-run result)"
                )
                continue
            line = (
                f"  {member.device_name}: "
                f"goodput {member.shared_metrics.goodput_bps:.0f} bps, "
                f"SER {member.shared_metrics.data_symbol_error_rate:.4f}"
            )
            if member.dedicated_metrics is not None:
                line += (
                    f" (dedicated link would give "
                    f"{member.dedicated_metrics.goodput_bps:.0f} bps)"
                )
            lines.append(line)
        if self.failures:
            lines.append(
                f"  degraded: {len(self.failures)} member run(s) failed "
                "(see failures)"
            )
        return lines


def fleet_specs(
    devices: Sequence[DeviceProfile],
    csk_order: int = 16,
    symbol_rate: float = 3000.0,
    duration_s: float = 2.0,
    payload: Optional[bytes] = None,
    channel: Optional[ChannelConditions] = None,
    compare_dedicated: bool = True,
    seed: int = 0,
) -> List[RunSpec]:
    """Every run a fleet broadcast needs, as independent cell specs.

    Per device: the shared-provisioning run, then (optionally) the
    dedicated-provisioning run, in fleet order.  Every member reuses the
    *same* shared configuration and payload — which is what makes the
    transmitter plan memoizable across the whole fleet.
    """
    if not devices:
        raise ConfigurationError("fleet must contain at least one device")
    worst_loss = max(device.timing.gap_fraction for device in devices)
    shared_config = SystemConfig(
        csk_order=csk_order,
        symbol_rate=symbol_rate,
        design_loss_ratio=worst_loss,
    )
    specs: List[RunSpec] = []
    for index, device in enumerate(devices):
        specs.append(
            RunSpec(
                config=shared_config,
                device=device,
                channel=channel,
                seed=seed + index,
                payload=payload,
                duration_s=duration_s,
            )
        )
        if compare_dedicated:
            dedicated_config = SystemConfig(
                csk_order=csk_order,
                symbol_rate=symbol_rate,
                design_loss_ratio=device.timing.gap_fraction,
            )
            specs.append(
                RunSpec(
                    config=dedicated_config,
                    device=device,
                    channel=channel,
                    seed=seed + index,
                    payload=payload,
                    duration_s=duration_s,
                )
            )
    return specs


def broadcast_to_fleet(
    devices: Sequence[DeviceProfile],
    csk_order: int = 16,
    symbol_rate: float = 3000.0,
    duration_s: float = 2.0,
    payload: Optional[bytes] = None,
    channel: Optional[ChannelConditions] = None,
    compare_dedicated: bool = True,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> FleetReport:
    """One transmitter, many phones: the §8 deployment scenario.

    The shared configuration provisions FEC for the fleet's worst loss
    ratio; with ``compare_dedicated=True`` each device is also run against
    a link provisioned for it alone, quantifying the §8 bound.

    ``runner`` executes the per-member runs (e.g. over a process pool via
    :func:`repro.perf.executor.make_runner`); the default runs serially.
    An observing runner (``make_runner(observe=True)``) leaves each
    member run's span trace and metrics export on its result, and
    ``repro.obs.assemble_trace`` merges them — in fleet order, shared
    then dedicated run per member — into one coherent trace.
    """
    specs = fleet_specs(
        devices,
        csk_order=csk_order,
        symbol_rate=symbol_rate,
        duration_s=duration_s,
        payload=payload,
        channel=channel,
        compare_dedicated=compare_dedicated,
        seed=seed,
    )
    results = execute_specs(specs, runner=runner)
    return fleet_report_from_results(
        devices, specs, results, compare_dedicated=compare_dedicated
    )


def fleet_report_from_results(
    devices: Sequence[DeviceProfile],
    specs: Sequence[RunSpec],
    results: Sequence[Optional[LinkResult]],
    compare_dedicated: bool = True,
    failures: Sequence[CellFailure] = (),
) -> FleetReport:
    """Assemble a :class:`FleetReport` from per-spec results in fleet order.

    Tolerates ``None`` results (cells a resilient executor contained):
    the member is reported as failed, annotated with its matching
    :class:`CellFailure` by spec index, and the fleet summary stays usable.
    """
    worst_loss = max(device.timing.gap_fraction for device in devices)
    report = FleetReport(
        shared_config_description=specs[0].config.describe(),
        worst_loss_ratio=worst_loss,
        failures=list(failures),
    )
    failure_by_index = {failure.index: failure for failure in failures}
    runs_per_member = 2 if compare_dedicated else 1
    for index, device in enumerate(devices):
        base = index * runs_per_member
        member_runs = results[base : base + runs_per_member]
        shared = member_runs[0]
        dedicated = member_runs[1] if compare_dedicated else None
        report.members.append(
            FleetMember(
                device_name=device.name,
                shared_metrics=shared.metrics if shared is not None else None,
                dedicated_metrics=(
                    dedicated.metrics if dedicated is not None else None
                ),
                failure=failure_by_index.get(base),
            )
        )
    return report
