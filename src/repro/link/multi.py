"""Multi-receiver broadcast analysis.

Paper §8's closing observation: one ColorBars transmitter serving many
phones must provision its Reed-Solomon parity for the *worst* receiver it
supports — "the achievable goodput remains bounded by the slowest (highest
inter-frame loss ratio) smartphone".  This module makes that deployment
question first-class: run one broadcast (one shared configuration) against
a fleet of devices and report what each achieves, plus what each device
*could* have achieved with a link provisioned just for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.camera.devices import DeviceProfile
from repro.core.config import SystemConfig
from repro.core.metrics import LinkMetrics
from repro.exceptions import ConfigurationError
from repro.link.channel import ChannelConditions
from repro.link.simulator import RunSpec, Runner, execute_specs


@dataclass
class FleetMember:
    """One receiver's outcome in a shared broadcast."""

    device_name: str
    shared_metrics: LinkMetrics
    dedicated_metrics: Optional[LinkMetrics] = None

    @property
    def provisioning_cost_bps(self) -> Optional[float]:
        """Goodput this device gives up because the link serves the fleet."""
        if self.dedicated_metrics is None:
            return None
        return (
            self.dedicated_metrics.goodput_bps - self.shared_metrics.goodput_bps
        )


@dataclass
class FleetReport:
    """Outcome of one broadcast across a device fleet."""

    shared_config_description: str
    worst_loss_ratio: float
    members: List[FleetMember] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        lines = [
            f"shared link: {self.shared_config_description} "
            f"(provisioned for loss {self.worst_loss_ratio:.3f})"
        ]
        for member in self.members:
            line = (
                f"  {member.device_name}: "
                f"goodput {member.shared_metrics.goodput_bps:.0f} bps, "
                f"SER {member.shared_metrics.data_symbol_error_rate:.4f}"
            )
            if member.dedicated_metrics is not None:
                line += (
                    f" (dedicated link would give "
                    f"{member.dedicated_metrics.goodput_bps:.0f} bps)"
                )
            lines.append(line)
        return lines


def fleet_specs(
    devices: Sequence[DeviceProfile],
    csk_order: int = 16,
    symbol_rate: float = 3000.0,
    duration_s: float = 2.0,
    payload: Optional[bytes] = None,
    channel: Optional[ChannelConditions] = None,
    compare_dedicated: bool = True,
    seed: int = 0,
) -> List[RunSpec]:
    """Every run a fleet broadcast needs, as independent cell specs.

    Per device: the shared-provisioning run, then (optionally) the
    dedicated-provisioning run, in fleet order.  Every member reuses the
    *same* shared configuration and payload — which is what makes the
    transmitter plan memoizable across the whole fleet.
    """
    if not devices:
        raise ConfigurationError("fleet must contain at least one device")
    worst_loss = max(device.timing.gap_fraction for device in devices)
    shared_config = SystemConfig(
        csk_order=csk_order,
        symbol_rate=symbol_rate,
        design_loss_ratio=worst_loss,
    )
    specs: List[RunSpec] = []
    for index, device in enumerate(devices):
        specs.append(
            RunSpec(
                config=shared_config,
                device=device,
                channel=channel,
                seed=seed + index,
                payload=payload,
                duration_s=duration_s,
            )
        )
        if compare_dedicated:
            dedicated_config = SystemConfig(
                csk_order=csk_order,
                symbol_rate=symbol_rate,
                design_loss_ratio=device.timing.gap_fraction,
            )
            specs.append(
                RunSpec(
                    config=dedicated_config,
                    device=device,
                    channel=channel,
                    seed=seed + index,
                    payload=payload,
                    duration_s=duration_s,
                )
            )
    return specs


def broadcast_to_fleet(
    devices: Sequence[DeviceProfile],
    csk_order: int = 16,
    symbol_rate: float = 3000.0,
    duration_s: float = 2.0,
    payload: Optional[bytes] = None,
    channel: Optional[ChannelConditions] = None,
    compare_dedicated: bool = True,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> FleetReport:
    """One transmitter, many phones: the §8 deployment scenario.

    The shared configuration provisions FEC for the fleet's worst loss
    ratio; with ``compare_dedicated=True`` each device is also run against
    a link provisioned for it alone, quantifying the §8 bound.

    ``runner`` executes the per-member runs (e.g. over a process pool via
    :func:`repro.perf.executor.make_runner`); the default runs serially.
    """
    specs = fleet_specs(
        devices,
        csk_order=csk_order,
        symbol_rate=symbol_rate,
        duration_s=duration_s,
        payload=payload,
        channel=channel,
        compare_dedicated=compare_dedicated,
        seed=seed,
    )
    results = execute_specs(specs, runner=runner)
    worst_loss = max(device.timing.gap_fraction for device in devices)
    report = FleetReport(
        shared_config_description=specs[0].config.describe(),
        worst_loss_ratio=worst_loss,
    )
    runs_per_member = 2 if compare_dedicated else 1
    for index, device in enumerate(devices):
        member_runs = results[index * runs_per_member : (index + 1) * runs_per_member]
        report.members.append(
            FleetMember(
                device_name=device.name,
                shared_metrics=member_runs[0].metrics,
                dedicated_metrics=(
                    member_runs[1].metrics if compare_dedicated else None
                ),
            )
        )
    return report
