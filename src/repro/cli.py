"""Command-line interface: run ColorBars links from a shell.

Examples::

    python -m repro run --order 8 --rate 2000 --device nexus5 --duration 2
    python -m repro sweep --device iphone5s --orders 8,16 --rates 1000,4000
    python -m repro info --order 16 --rate 3000
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
from pathlib import Path
from typing import List, Optional

from repro.camera.devices import DeviceProfile, generic_device, iphone_5s, nexus_5
from repro.core.config import SystemConfig
from repro.exceptions import (
    BenchError,
    ConfigurationError,
    FaultInjectionError,
    ToolingError,
    TraceError,
)
from repro.faults import CHAOS_REGISTRY, FAULT_REGISTRY, parse_chaos_specs, parse_fault_specs
from repro.link.adapt import (
    EXEC_BATCH,
    EXEC_STREAMING,
    adaptive_vs_fixed,
    simulate_adaptive,
)
from repro.link.channel import ChannelTrajectory
from repro.link.simulator import RunSpec
from repro.link.workloads import text_payload
from repro.obs import (
    MetricsRegistry,
    Tracer,
    assemble_trace,
    format_span_tree,
    read_trace,
    render_reference,
    summarize_spans,
    write_trace,
)
from repro.perf.bench import BENCH_FILENAME, format_breakdown, run_bench, write_report
from repro.perf.executor import resolve_workers
from repro.perf.runtime import (
    RuntimePolicy,
    default_cell_timeout,
    run_specs_resilient,
)
from repro.serve import BACKPRESSURE_POLICIES, ServePolicy, SoakSpec, run_soak
from repro.tooling import (
    ALL_RULES,
    Baseline,
    default_baseline_path,
    format_report,
    get_rules,
    run_analysis,
    to_json,
    to_sarif,
)
from repro.tooling.reports import updated_baseline

#: Exit status for a run that completed degraded (contained cell failures)
#: without ``--allow-degraded``.  Distinct from lint's 1 and bench's 2.
EXIT_DEGRADED = 3

_DEVICES = {
    "nexus5": nexus_5,
    "iphone5s": iphone_5s,
    "generic": generic_device,
}


def _device(name: str) -> DeviceProfile:
    try:
        return _DEVICES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown device {name!r}; choose from {sorted(_DEVICES)}"
        )


def _config(args: argparse.Namespace, device: DeviceProfile) -> SystemConfig:
    return SystemConfig(
        csk_order=args.order,
        symbol_rate=args.rate,
        design_loss_ratio=device.timing.gap_fraction,
        frame_rate=device.timing.frame_rate,
    )


def _runtime_policy(args, chaos=()) -> RuntimePolicy:
    """Resilience policy from CLI flags (falling back to the environment)."""
    timeout = getattr(args, "cell_timeout", None)
    if timeout is None:
        timeout = default_cell_timeout()
    try:
        return RuntimePolicy(
            cell_timeout_s=timeout,
            max_attempts=getattr(args, "max_attempts", 1),
            chaos=tuple(chaos),
        )
    except ConfigurationError as exc:
        raise SystemExit(f"colorbars: {exc}")


def _observability(args) -> "tuple":
    """(observe, registry) from the ``--trace``/``--metrics`` flags."""
    trace_path = getattr(args, "trace", None)
    metrics_target = getattr(args, "metrics", None)
    registry = MetricsRegistry() if metrics_target else None
    return bool(trace_path) or bool(metrics_target), registry


def _emit_trace(path, outcome, root_attributes, backend=None) -> None:
    """Assemble per-cell traces (spec order) and write the JSONL file.

    Backend-driven sweeps group cells under per-shard spans
    (root -> shard -> cell); the classic path adopts cells directly
    under the sweep root.
    """
    if backend is not None and outcome.shard_of is not None:
        from repro.perf.backends import assemble_backend_trace

        spans = assemble_backend_trace(
            outcome, backend.name, backend.lanes,
            root_attributes=root_attributes,
        )
    else:
        spans = assemble_trace(
            [getattr(result, "trace", None) for result in outcome.results],
            root_attributes=root_attributes,
        )
    write_trace(path, spans)
    print(f"trace  : wrote {len(spans)} span(s) to {path}")


def _emit_metrics(registry, target) -> None:
    """Dump the registry: ``-`` prints lines, anything else writes JSON."""
    if target == "-":
        for line in registry.format_lines():
            print(line)
        return
    Path(target).write_text(
        json.dumps(registry.export(), indent=2, sort_keys=True) + "\n"
    )
    print(f"metrics: wrote {target}")


def cmd_run(args: argparse.Namespace) -> int:
    device = _device(args.device)
    config = _config(args, device)
    try:
        faults = parse_fault_specs(getattr(args, "fault", None))
    except FaultInjectionError as exc:
        raise SystemExit(f"colorbars: bad --fault: {exc}")
    print(f"device : {device.name}")
    print(f"config : {config.describe()}")
    if faults:
        print("faults : " + ", ".join(f"{f.name}:{f.intensity:g}" for f in faults))
    payload = (
        args.message.encode("utf-8")
        if args.message
        else text_payload(3 * config.rs_params().k, seed=args.seed)
    )
    k = config.rs_params().k
    payload = payload + bytes((-len(payload)) % k)
    spec = RunSpec(
        config=config,
        device=device,
        seed=args.seed,
        faults=faults,
        payload=payload,
        duration_s=args.duration,
    )
    observe, registry = _observability(args)
    outcome = run_specs_resilient(
        [spec],
        workers=1,
        policy=_runtime_policy(args),
        observe=observe,
        metrics=registry,
    )
    if args.trace:
        _emit_trace(args.trace, outcome, {"device": device.name})
    if registry is not None:
        _emit_metrics(registry, args.metrics)
    result = outcome.results[0]
    if result is None:
        print(f"result : FAILED — {outcome.failures[0].describe()}")
        print(outcome.failure_summary())
        return 0 if args.allow_degraded else EXIT_DEGRADED
    print(f"result : {result.metrics.summary()}")
    if faults:
        print(f"injected: {result.fault_schedule.summary()}")
        report = result.report
        contained = report.fec_failures_by_reason()
        detail = ", ".join(f"{k}={v}" for k, v in sorted(contained.items()))
        print(
            f"survived: {report.frames_processed} frames processed, "
            f"{report.frames_failed} contained frame failures"
            + (f"; fec failures: {detail}" if detail else "")
        )
    recovered = result.recovered_broadcast()
    if recovered is not None:
        print(f"payload: fully recovered ({len(recovered)} bytes)")
        if args.message:
            print(f"message: {recovered[: len(args.message)].decode('utf-8', 'replace')!r}")
    else:
        print(
            f"payload: partial ({result.report.packets_decoded} packets; "
            "record longer to cover every block)"
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    device = _device(args.device)
    orders = [int(o) for o in args.orders.split(",")]
    rates = [float(r) for r in args.rates.split(",")]
    try:
        workers = resolve_workers(args.workers)
        chaos = parse_chaos_specs(args.chaos, seed=args.chaos_seed)
    except ConfigurationError as exc:
        raise SystemExit(f"colorbars: {exc}")
    except FaultInjectionError as exc:
        raise SystemExit(f"colorbars: bad --chaos: {exc}")
    if args.resume and not args.journal:
        raise SystemExit("colorbars: --resume requires --journal PATH")
    policy = _runtime_policy(args, chaos=chaos)
    specs = {}
    for order in orders:
        for rate in rates:
            if device.timing.rows_per_symbol(rate) < 10:
                continue
            config = SystemConfig(
                csk_order=order,
                symbol_rate=rate,
                design_loss_ratio=device.timing.gap_fraction,
            )
            specs[(order, rate)] = RunSpec(
                config=config, device=device, seed=args.seed,
                duration_s=args.duration,
            )
    observe, registry = _observability(args)
    backend = None
    if args.backend is not None:
        from repro.perf.backends import make_backend

        try:
            backend = make_backend(
                args.backend, policy=policy, workers=args.workers,
                observe=observe,
            )
        except ConfigurationError as exc:
            raise SystemExit(f"colorbars: bad --backend: {exc}")
    try:
        outcome = run_specs_resilient(
            list(specs.values()),
            workers=workers,
            policy=policy,
            journal=args.journal,
            resume=args.resume,
            observe=observe,
            metrics=registry,
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()
    if args.trace:
        _emit_trace(
            args.trace, outcome, {"device": device.name, "workers": workers},
            backend=backend,
        )
    if registry is not None:
        _emit_metrics(registry, args.metrics)
    results = dict(zip(specs, outcome.results))
    failure_by_index = {failure.index: failure for failure in outcome.failures}
    keys = list(specs)
    if backend is not None:
        print(
            f"device: {device.name} "
            f"(backend: {backend.name}, lanes: {backend.lanes})"
        )
    else:
        print(f"device: {device.name} (workers: {workers})")
    print(f"{'order':>6} | {'rate':>6} | {'SER':>8} | {'tput kbps':>9} | {'good kbps':>9}")
    for order in orders:
        for rate in rates:
            if (order, rate) not in specs:
                print(f"{order:>6} | {rate:>6.0f} | {'(band < 10 px)':>32}")
                continue
            result = results.get((order, rate))
            if result is None:
                failure = failure_by_index.get(keys.index((order, rate)))
                cause = failure.cause if failure is not None else "unknown"
                print(f"{order:>6} | {rate:>6.0f} | {'FAILED (' + cause + ')':>32}")
                continue
            m = result.metrics
            print(
                f"{order:>6} | {rate:>6.0f} | {m.data_symbol_error_rate:8.4f}"
                f" | {m.throughput_bps / 1000:9.2f}"
                f" | {m.goodput_bps / 1000:9.2f}"
            )
    if outcome.resumed:
        print(f"resumed: {outcome.resumed} cell(s) restored from {args.journal}")
    if outcome.failures:
        print(outcome.failure_summary())
        return 0 if args.allow_degraded else EXIT_DEGRADED
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    registry = MetricsRegistry() if args.metrics else None
    profile_path = f"{args.output}.profile.txt" if args.profile else None
    try:
        report = run_bench(
            workers=args.workers,
            quick=args.quick,
            metrics=registry,
            cells=args.cells,
            profile_path=profile_path,
            backend=args.backend,
        )
    except BenchError as exc:
        print(f"colorbars bench: error: {exc}", file=sys.stderr)
        return 2
    if profile_path:
        print(f"wrote serial-leg profile to {profile_path}")
    for line in format_breakdown(report):
        print(line)
    if registry is not None:
        _emit_metrics(registry, args.metrics)
    try:
        write_report(report, args.output)
    except BenchError as exc:
        print(f"colorbars bench: error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {args.output}")
    return 0


def _peak_rss_mib() -> float:
    """Peak resident set size of this process, in MiB (Linux: ru_maxrss KiB)."""
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak_kib /= 1024
    return peak_kib / 1024


def cmd_serve(args: argparse.Namespace) -> int:
    device = _device(args.device)
    try:
        spec = SoakSpec(
            sessions=args.sessions,
            seed=args.seed,
            duration_s=args.duration,
            csk_order=args.order,
            symbol_rate=args.rate,
            distinct_recordings=args.recordings,
            chaos_fraction=args.chaos_sessions,
            poison_fraction=args.poison_sessions,
            stall_fraction=args.stall_sessions,
            fault_intensity=args.fault_intensity,
        )
        spec.validate()
        policy = ServePolicy(
            max_sessions=args.max_sessions,
            max_queued_frames=args.queue_frames,
            max_queued_bytes=args.queue_bytes,
            backpressure=args.backpressure,
            idle_timeout_s=args.idle_timeout,
            quarantine_after=args.quarantine_after,
        )
        policy.validate()
    except ConfigurationError as exc:
        raise SystemExit(f"colorbars: {exc}")
    print(f"device : {device.name}")
    print(
        f"serve  : {spec.sessions} session(s), order {spec.csk_order} at "
        f"{spec.symbol_rate:g} sym/s, {spec.duration_s:g} s each"
    )
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    report = run_soak(
        spec, device=device, policy=policy, tracer=tracer, metrics=registry
    )
    summary = report.as_dict()
    roles = ", ".join(
        f"{role}: {count}" for role, count in sorted(summary["roles"].items())
    )
    print(f"roles  : {roles}")
    print(
        f"goodput: {summary['goodput_bytes']} bytes decoded in "
        f"{summary['packets_decoded']} packet(s)"
    )
    print(
        f"queues : peak depth {summary['peak_queue_depth']} "
        f"(cap {policy.max_queued_frames}), "
        f"{summary['frames_dropped']} frame(s) dropped"
    )
    if summary["rejected"]:
        print(f"rejected: {len(summary['rejected'])} admission refusal(s)")
    if summary["evicted"]:
        print(f"evicted: {len(summary['evicted'])} idle session(s)")
    print(f"peak rss: {_peak_rss_mib():.1f} MiB")
    if args.trace:
        write_trace(args.trace, tracer.spans())
        print(f"trace  : wrote {len(tracer.spans())} span(s) to {args.trace}")
    if registry is not None:
        _emit_metrics(registry, args.metrics)
    if args.output:
        Path(args.output).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    if report.failures:
        for failure in report.failures:
            print(f"quarantined: {failure.describe()}")
        counts = {}
        for failure in report.failures:
            counts[failure.cause] = counts.get(failure.cause, 0) + 1
        detail = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"DEGRADED: {len(report.failures)} session(s) quarantined ({detail})")
        return 0 if args.allow_degraded else EXIT_DEGRADED
    return 0


def cmd_adapt(args: argparse.Namespace) -> int:
    """Replay the pinned drift trajectory: closed loop vs every fixed rung."""
    from repro.exceptions import AdaptationError

    device = _device(args.device)
    trajectory = ChannelTrajectory.drift_demo(segment_s=args.segment)
    execution = EXEC_STREAMING if args.execution == "streaming" else EXEC_BATCH
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    print(f"device : {device.name}")
    print(
        f"channel: {len(trajectory.segments)} segment(s), "
        f"{trajectory.total_duration_s:g} s total, rate {args.rate:g} sym/s"
    )
    try:
        comparison = adaptive_vs_fixed(
            trajectory,
            device,
            symbol_rate=args.rate,
            seed=args.seed,
            simulated_columns=args.columns,
            execution=execution,
            tracer=tracer,
            metrics=registry,
        )
    except AdaptationError as exc:
        raise SystemExit(f"colorbars adapt: {exc}")
    adaptive = comparison.adaptive
    for line in adaptive.trace():
        print(f"  {line}")
    print(
        f"adaptive: {adaptive.payload_bytes} bytes "
        f"({adaptive.goodput_bps:.1f} bps)"
        + (" QUARANTINED" if adaptive.quarantined else "")
    )
    for index, run in sorted(comparison.fixed.items()):
        cliffs = sum(
            1
            for segment in run.segments
            if segment.packets_seen > 0 and segment.packets_decoded == 0
        )
        print(
            f"fixed {index}: {run.label:<24} {run.payload_bytes:>5} bytes "
            f"({run.goodput_bps:.1f} bps), {cliffs} FEC-cliff window(s)"
        )
    best_index, best = comparison.best_fixed()
    verdict = "sustains" if adaptive.payload_bytes >= best.payload_bytes else "BELOW"
    print(
        f"verdict: adaptive {verdict} best fixed rung {best_index} "
        f"({adaptive.payload_bytes} vs {best.payload_bytes} bytes)"
    )
    if args.execution == "both":
        other = simulate_adaptive(
            trajectory,
            device,
            symbol_rate=args.rate,
            seed=args.seed,
            simulated_columns=args.columns,
            execution=EXEC_STREAMING,
        )
        identical = other.trace() == adaptive.trace()
        print(
            "shapes : batch and streaming decision traces "
            + ("identical" if identical else "DIVERGED")
        )
        if not identical:
            return 2
    if args.trace:
        write_trace(args.trace, tracer.spans())
        print(f"trace  : wrote {len(tracer.spans())} span(s) to {args.trace}")
    if registry is not None:
        _emit_metrics(registry, args.metrics)
    if args.output:
        Path(args.output).write_text(
            json.dumps(comparison.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    if adaptive.quarantined:
        return 0 if args.allow_degraded else EXIT_DEGRADED
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.schema:
        print(render_reference(), end="")
        return 0
    if not args.file:
        raise SystemExit(
            "colorbars trace: a trace FILE is required unless --schema is given"
        )
    try:
        spans = read_trace(args.file)
    except TraceError as exc:
        print(f"colorbars trace: error: {exc}", file=sys.stderr)
        return 2
    if args.name:
        named = [span for span in spans if span.name == args.name]
        total = sum(span.duration_s for span in named)
        print(
            f"{len(named)} '{args.name}' span(s) of {len(spans)}; "
            f"total {total:.3f} s"
        )
        if named:
            durations = [span.duration_s for span in named]
            print(
                f"mean {total / len(named):.4f} s, "
                f"min {min(durations):.4f} s, max {max(durations):.4f} s"
            )
        return 0
    lines = format_span_tree(spans) if args.tree else summarize_spans(spans)
    for line in lines:
        print(line)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    device = _device(args.device)
    config = _config(args, device)
    params = config.rs_params()
    packetizer = config.make_packetizer()
    print(f"device            : {device.name}")
    print(f"config            : {config.describe()}")
    print(f"bits per symbol   : {config.bits_per_symbol}")
    print(f"illumination ratio: {config.effective_illumination_ratio():.3f}")
    print(f"RS code           : RS({params.n},{params.k}) "
          f"(rate {params.code_rate:.2f}, corrects {params.correctable_errors} errors)")
    print(f"packet length     : {packetizer.packet_length(params.n)} symbols")
    print(f"rows per symbol   : {device.timing.rows_per_symbol(config.symbol_rate):.1f}")
    print(f"symbols lost/gap  : {device.timing.symbols_lost_per_gap(config.symbol_rate):.1f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            scope = getattr(rule, "scope", "file")
            print(f"{rule.rule_id:>18}  [{scope:>7}]  {rule.description}")
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parent)]
    strict = args.strict or args.update_baseline
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    try:
        rules = get_rules(args.rules.split(",")) if args.rules else None
        if rules is not None and not strict:
            skipped = [
                r.rule_id for r in rules if getattr(r, "scope", "file") == "project"
            ]
            if skipped:
                print(
                    "colorbars lint: note: contract rule(s)"
                    f" {', '.join(skipped)} run only with --strict",
                    file=sys.stderr,
                )
        baseline = Baseline.load(baseline_path) if strict else None
        result = run_analysis(
            paths, rules=rules, strict=strict, baseline=baseline
        )
    except ToolingError as exc:
        print(f"colorbars lint: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        new_baseline = updated_baseline(result, baseline)
        new_baseline.save(baseline_path)
        print(
            f"colorbars lint: baseline updated:"
            f" {len(new_baseline.entries)} entries -> {baseline_path}"
        )
        return 0
    if args.format == "json":
        print(to_json(result))
    elif args.format == "sarif":
        print(to_sarif(result))
    else:
        print(format_report(result.findings, result.files_checked))
        if result.suppressed:
            print(
                f"colorbars lint: {len(result.suppressed)} finding(s)"
                f" suppressed by baseline {baseline_path}",
                file=sys.stderr,
            )
        for entry in result.stale_baseline_entries:
            print(
                "colorbars lint: stale baseline entry (no longer matches):"
                f" {entry.path} {entry.rule} {entry.message}",
                file=sys.stderr,
            )
    return 1 if result.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ColorBars LED-to-camera link simulator (CoNEXT 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--device", default="nexus5", help="nexus5 | iphone5s | generic")
        p.add_argument("--order", type=int, default=8, help="CSK order: 4/8/16/32")
        p.add_argument("--rate", type=float, default=2000.0, help="symbols per second")
        p.add_argument("--seed", type=int, default=0)

    def observability(p):
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write a JSONL span trace of the run/sweep to PATH",
        )
        p.add_argument(
            "--metrics", default=None, metavar="PATH",
            help="dump the metrics registry as JSON to PATH ('-' prints lines)",
        )

    def resilience(p, journal: bool = False):
        p.add_argument(
            "--cell-timeout", type=float, default=None, metavar="SECONDS",
            help="watchdog deadline per cell "
            "(default: $COLORBARS_CELL_TIMEOUT or off)",
        )
        p.add_argument(
            "--max-attempts", type=int, default=1, metavar="N",
            help="attempts per cell before it is recorded as failed (default 1)",
        )
        p.add_argument(
            "--allow-degraded", action="store_true",
            help="exit 0 even when some cells failed (default: exit 3)",
        )
        if journal:
            p.add_argument(
                "--journal", default=None, metavar="PATH",
                help="append each completed cell to a JSONL checkpoint journal",
            )
            p.add_argument(
                "--resume", action="store_true",
                help="skip cells already recorded in --journal",
            )
            p.add_argument(
                "--chaos", action="append", metavar="NAME:INTENSITY",
                help="inject process-level chaos (repeatable); names: "
                + ", ".join(sorted(CHAOS_REGISTRY)),
            )
            p.add_argument(
                "--chaos-seed", type=int, default=0,
                help="seed for the deterministic chaos schedule",
            )

    run_p = sub.add_parser(
        "run",
        aliases=["simulate"],
        help="run one end-to-end link (optionally with injected faults)",
    )
    common(run_p)
    run_p.add_argument("--duration", type=float, default=2.0, help="recording seconds")
    run_p.add_argument("--message", default=None, help="UTF-8 payload to broadcast")
    run_p.add_argument(
        "--fault",
        action="append",
        metavar="NAME:INTENSITY",
        help="inject a fault (repeatable); names: "
        + ", ".join(sorted(FAULT_REGISTRY)),
    )
    resilience(run_p)
    observability(run_p)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="sweep CSK orders x symbol rates")
    sweep_p.add_argument("--device", default="nexus5")
    sweep_p.add_argument("--orders", default="4,8,16,32")
    sweep_p.add_argument("--rates", default="1000,2000,3000,4000")
    sweep_p.add_argument("--duration", type=float, default=2.0)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument(
        "--workers", type=int, default=None,
        help="parallel sweep processes (default: $COLORBARS_WORKERS or 1)",
    )
    sweep_p.add_argument(
        "--backend", default=None, metavar="NAME[:OPTS]",
        help="distributed sweep backend: inprocess | pool[:workers=N] | "
        "remote[:workers=N] (default: the classic supervised runtime)",
    )
    resilience(sweep_p, journal=True)
    observability(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    bench_p = sub.add_parser(
        "bench",
        help="run the pinned perf micro-sweep and write BENCH_colorbars.json",
    )
    bench_p.add_argument(
        "--workers", type=int, default=4,
        help="pool size for the parallel leg of the bench (default 4)",
    )
    bench_p.add_argument(
        "--backend", default="pool", metavar="NAME[:OPTS]",
        help="backend for the parallel leg: inprocess | pool[:workers=N] | "
        "remote[:workers=N] (default pool; recorded in the report)",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="half-size grid and shorter recordings (CI smoke)",
    )
    bench_p.add_argument(
        "--output", default=BENCH_FILENAME,
        help=f"report path (default ./{BENCH_FILENAME})",
    )
    bench_p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="dump pipeline metrics across both legs ('-' prints lines)",
    )
    bench_p.add_argument(
        "--cells", type=int, default=None, metavar="N",
        help="run N cells by cycling the pinned grid (default: the full grid)",
    )
    bench_p.add_argument(
        "--profile", action="store_true",
        help="profile the serial leg with cProfile; writes <output>.profile.txt",
    )
    bench_p.set_defaults(func=cmd_bench)

    serve_p = sub.add_parser(
        "serve",
        help="soak the streaming session service (admission, backpressure,"
        " eviction, quarantine) with optional chaos",
    )
    common(serve_p)
    serve_p.add_argument(
        "--sessions", type=int, default=200,
        help="concurrent receiver sessions to drive (default 200)",
    )
    serve_p.add_argument(
        "--duration", type=float, default=0.5,
        help="recording seconds per session (default 0.5)",
    )
    serve_p.add_argument(
        "--recordings", type=int, default=6,
        help="distinct simulated recordings shared across sessions (default 6)",
    )
    serve_p.add_argument(
        "--chaos-sessions", type=float, default=0.0, metavar="FRACTION",
        help="fraction of sessions whose frames pass a fault injector",
    )
    serve_p.add_argument(
        "--poison-sessions", type=float, default=0.0, metavar="FRACTION",
        help="fraction of sessions whose every frame fails in the receiver",
    )
    serve_p.add_argument(
        "--stall-sessions", type=float, default=0.0, metavar="FRACTION",
        help="fraction of sessions that go silent and must be idle-evicted",
    )
    serve_p.add_argument(
        "--fault-intensity", type=float, default=0.3,
        help="injector intensity for chaos sessions (default 0.3)",
    )
    serve_p.add_argument(
        "--max-sessions", type=int, default=1024,
        help="admission cap on concurrently active sessions (default 1024)",
    )
    serve_p.add_argument(
        "--queue-frames", type=int, default=8,
        help="per-session frame queue cap (default 8)",
    )
    serve_p.add_argument(
        "--queue-bytes", type=int, default=None,
        help="per-session queued-bytes cap (default: frame cap only)",
    )
    serve_p.add_argument(
        "--backpressure", choices=BACKPRESSURE_POLICIES, default="drop-oldest",
        help="full-queue policy (default drop-oldest)",
    )
    serve_p.add_argument(
        "--idle-timeout", type=float, default=0.2, metavar="SECONDS",
        help="evict sessions silent this long on the soak's virtual clock"
        " (default 0.2)",
    )
    serve_p.add_argument(
        "--quarantine-after", type=int, default=8, metavar="N",
        help="consecutive contained frame failures before quarantine"
        " (default 8)",
    )
    serve_p.add_argument(
        "--allow-degraded", action="store_true",
        help="exit 0 even when sessions were quarantined (default: exit 3)",
    )
    serve_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the JSON soak report to PATH",
    )
    observability(serve_p)
    serve_p.set_defaults(func=cmd_serve)

    adapt_p = sub.add_parser(
        "adapt",
        help="replay the pinned time-varying channel with the closed-loop"
        " rate controller and compare against every fixed rung",
    )
    adapt_p.add_argument("--device", default="nexus5", help="nexus5 | iphone5s | generic")
    adapt_p.add_argument(
        "--rate", type=float, default=1500.0, help="symbols per second"
    )
    adapt_p.add_argument("--seed", type=int, default=7)
    adapt_p.add_argument(
        "--columns", type=int, default=48,
        help="simulated sensor columns per frame (default 48)",
    )
    adapt_p.add_argument(
        "--segment", type=float, default=0.8, metavar="SECONDS",
        help="trajectory segment length (default 0.8)",
    )
    adapt_p.add_argument(
        "--execution", choices=("batch", "streaming", "both"), default="batch",
        help="decode shape; 'both' also verifies the decision traces match",
    )
    adapt_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the JSON adaptive-vs-fixed comparison to PATH",
    )
    adapt_p.add_argument(
        "--allow-degraded", action="store_true",
        help="exit 0 even when the adaptive run quarantined (default: exit 3)",
    )
    observability(adapt_p)
    adapt_p.set_defaults(func=cmd_adapt)

    trace_p = sub.add_parser(
        "trace", help="summarize/filter a --trace JSONL file, or print the schema"
    )
    trace_p.add_argument(
        "file", nargs="?", default=None,
        help="trace file written by run/sweep --trace",
    )
    trace_p.add_argument(
        "--name", default=None, metavar="SPAN",
        help="aggregate only spans with this name (e.g. decode)",
    )
    trace_p.add_argument(
        "--tree", action="store_true",
        help="print the indented span tree instead of the per-name rollup",
    )
    trace_p.add_argument(
        "--schema", action="store_true",
        help="print the generated span/metric reference (docs/METRICS.md)",
    )
    trace_p.set_defaults(func=cmd_trace)

    info_p = sub.add_parser("info", help="show derived link parameters")
    common(info_p)
    info_p.set_defaults(func=cmd_info)

    lint_p = sub.add_parser(
        "lint", help="run reprolint static-analysis checks over the package"
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint_p.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    lint_p.add_argument(
        "--strict", action="store_true",
        help="also run whole-program contract rules (determinism,"
             " pickle-safety, obs-schema, exception-taxonomy)",
    )
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text; json/sarif print one document)",
    )
    lint_p.add_argument(
        "--baseline", default=None,
        help="baseline of grandfathered findings, applied under --strict"
             " (default: the packaged tooling/baseline.json)",
    )
    lint_p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings and exit 0"
             " (implies --strict; new entries get a TODO reason)",
    )
    lint_p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
