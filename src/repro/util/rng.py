"""Deterministic random-number plumbing.

Every stochastic component (camera noise, auto-exposure drift, workload
generation) takes a ``numpy.random.Generator``.  These helpers create root
generators from integer seeds and derive independent child generators for
subsystems, so a single seed reproduces an entire end-to-end run while the
subsystems stay statistically independent.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, an existing generator, or fresh entropy."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator keyed by a stable string label.

    Two calls with the same parent state and label yield identically seeded
    children, so subsystem randomness does not depend on call order elsewhere.
    """
    # Hash the label into a 64-bit integer without Python's randomized hash().
    digest = 1469598103934665603  # FNV-1a offset basis
    for char in label.encode("utf-8"):
        digest ^= char
        digest = (digest * 1099511628211) % (1 << 64)
    seed_seq = np.random.SeedSequence(
        entropy=[int(parent.integers(0, 2**63)), digest]
    )
    return np.random.default_rng(seed_seq)


def spawn_rngs(seed: RngLike, *labels: str) -> dict:
    """Create a root generator and one derived child per label.

    Returns a mapping ``{label: Generator}``; convenient for wiring a
    multi-component simulation from a single scalar seed.
    """
    root = make_rng(seed)
    return {label: derive_rng(root, label) for label in labels}


def optional_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` if given, else a fresh unseeded generator."""
    return rng if rng is not None else np.random.default_rng()
