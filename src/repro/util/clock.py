"""The wall-clock seam: the one sanctioned way to read calendar time.

Simulation layers are pure functions of (config, seed) — reprolint's
determinism contract bans ``time.time`` and friends there outright.  But
*provenance metadata* (the ``generated_unix`` stamp on a bench report)
legitimately wants the calendar, so this module provides the injectable
seam: callers take a ``clock`` parameter defaulting to :data:`wall_clock`,
and tests inject a constant.  Keeping the alias here (``util`` layer)
means the call site names ``repro.util.clock.wall_clock`` — an explicit,
greppable declaration that calendar time is metadata, never an input to
results.
"""

from __future__ import annotations

import time

#: Seconds since the Unix epoch, as a plain callable to pass around.
wall_clock = time.time
