"""Lightweight stage timing for hot-path instrumentation.

:class:`StageTimings` accumulates wall-clock seconds per named pipeline
stage (``tx-plan``, ``record``, ``decode``, ...).  It is deliberately a
plain value object in the bottom ``util`` layer so any subsystem can attach
timings to its results without importing the performance tooling that
aggregates them (:mod:`repro.perf`).

Timings are measurement metadata, never part of a result's semantics: two
runs that produced identical link outcomes compare equal even though their
timings differ (callers embedding a :class:`StageTimings` in a dataclass
should mark the field ``compare=False``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.util.validation import require


@dataclass
class StageTimings:
    """Accumulated wall-clock seconds per named stage, insertion-ordered."""

    stages: Dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto ``stage`` (creating it at 0.0)."""
        require(seconds >= 0.0, f"seconds must be >= 0, got {seconds}")
        self.stages[stage] = self.stages.get(stage, 0.0) + float(seconds)

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        """Context manager timing its body with ``time.perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def total(self) -> float:
        """Sum over every stage."""
        return sum(self.stages.values())

    def merge(self, other: "StageTimings") -> None:
        """Accumulate another run's stages into this one (for aggregates)."""
        for stage, seconds in other.stages.items():
            self.add(stage, seconds)

    def as_dict(self) -> Dict[str, float]:
        """A plain ``{stage: seconds}`` copy (JSON-friendly)."""
        return dict(self.stages)
