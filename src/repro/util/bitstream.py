"""Bit-level packing helpers.

The ColorBars pipeline moves between three representations of the payload:

* ``bytes`` at the application boundary,
* flat bit lists (MSB-first) between the FEC layer and the CSK mapper,
* fixed-width bit groups (one group per CSK symbol).

These helpers centralize the conversions so every layer agrees on bit order.
All functions treat bits as Python ints equal to 0 or 1, MSB-first within a
byte or integer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.exceptions import ConfigurationError
from repro.util.validation import require


def bytes_to_bits(data: bytes) -> List[int]:
    """Expand ``data`` into a flat list of bits, MSB-first per byte.

    >>> bytes_to_bits(b"\\xA0")
    [1, 0, 1, 0, 0, 0, 0, 0]
    """
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int], strict: bool = True) -> bytes:
    """Pack bits (MSB-first) into bytes.

    With ``strict=True`` the bit count must be a multiple of 8; otherwise the
    trailing partial byte is zero-padded on the right.
    """
    _check_bits(bits)
    remainder = len(bits) % 8
    if remainder and strict:
        raise ConfigurationError(
            f"bit count {len(bits)} is not a multiple of 8; "
            "pass strict=False to zero-pad"
        )
    padded = list(bits)
    if remainder:
        padded.extend([0] * (8 - remainder))
    out = bytearray()
    for offset in range(0, len(padded), 8):
        value = 0
        for bit in padded[offset : offset + 8]:
            value = (value << 1) | bit
        out.append(value)
    return bytes(out)


def int_to_bits(value: int, width: int) -> List[int]:
    """Encode ``value`` as exactly ``width`` bits, MSB-first.

    Raises :class:`ConfigurationError` if the value does not fit.
    """
    require(width > 0, f"width must be positive, got {width}")
    require(value >= 0, f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret ``bits`` (MSB-first) as an unsigned integer."""
    _check_bits(bits)
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


def chunk_bits(bits: Sequence[int], width: int) -> Iterator[List[int]]:
    """Yield consecutive groups of ``width`` bits.

    The final group is zero-padded to ``width``; callers that need exact
    framing should pad with :func:`pad_bits` first.
    """
    require(width > 0, f"width must be positive, got {width}")
    _check_bits(bits)
    for offset in range(0, len(bits), width):
        group = list(bits[offset : offset + width])
        if len(group) < width:
            group.extend([0] * (width - len(group)))
        yield group


def pad_bits(bits: Sequence[int], multiple: int) -> List[int]:
    """Zero-pad ``bits`` on the right to a multiple of ``multiple``."""
    require(multiple > 0, f"multiple must be positive, got {multiple}")
    _check_bits(bits)
    padded = list(bits)
    remainder = len(padded) % multiple
    if remainder:
        padded.extend([0] * (multiple - remainder))
    return padded


def _check_bits(bits: Iterable[int]) -> None:
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ConfigurationError(f"element {index} is {bit!r}, expected 0 or 1")


class BitWriter:
    """Incrementally build a bit sequence.

    Used by the packet layer to assemble headers field by field::

        writer = BitWriter()
        writer.write_int(packet_size, width=9)
        writer.write_bits(payload_bits)
        bits = writer.bits()
    """

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0 or 1, got {bit!r}")
        self._bits.append(bit)

    def write_bits(self, bits: Sequence[int]) -> None:
        _check_bits(bits)
        self._bits.extend(bits)

    def write_int(self, value: int, width: int) -> None:
        self._bits.extend(int_to_bits(value, width))

    def write_bytes(self, data: bytes) -> None:
        self._bits.extend(bytes_to_bits(data))

    def bits(self) -> List[int]:
        """Return a copy of the accumulated bits."""
        return list(self._bits)

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """Consume a bit sequence field by field; the mirror of :class:`BitWriter`."""

    def __init__(self, bits: Sequence[int]) -> None:
        _check_bits(bits)
        self._bits = list(bits)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        return self.read_bits(1)[0]

    def read_bits(self, count: int) -> List[int]:
        require(count >= 0, f"count must be non-negative, got {count}")
        if count > self.remaining:
            raise ConfigurationError(
                f"requested {count} bits but only {self.remaining} remain"
            )
        out = self._bits[self._pos : self._pos + count]
        self._pos += count
        return out

    def read_int(self, width: int) -> int:
        return bits_to_int(self.read_bits(width))

    def read_bytes(self, count: int) -> bytes:
        return bits_to_bytes(self.read_bits(count * 8))
