"""Shared utilities: bitstream packing, RNG plumbing, and validation helpers."""

from repro.util.bitstream import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    chunk_bits,
    int_to_bits,
    pad_bits,
)
from repro.util.rng import derive_rng, make_rng
from repro.util.stopwatch import StageTimings
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "chunk_bits",
    "int_to_bits",
    "pad_bits",
    "derive_rng",
    "make_rng",
    "StageTimings",
    "require",
    "require_in_range",
    "require_positive",
    "require_probability",
]
