"""Small validation helpers used across the library.

They exist so that precondition checks read as one line at the top of a
function and always raise :class:`~repro.exceptions.ConfigurationError` with a
message naming the offending value.
"""

from __future__ import annotations

from numbers import Real
from typing import Any

from repro.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: Any, name: str) -> None:
    """Require a strictly positive real number."""
    if not isinstance(value, Real) or not value > 0:
        raise ConfigurationError(f"{name} must be a positive number, got {value!r}")


def require_in_range(value: Any, name: str, low: float, high: float) -> None:
    """Require ``low <= value <= high``."""
    if not isinstance(value, Real) or not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )


def require_probability(value: Any, name: str) -> None:
    """Require a value usable as a probability or ratio in [0, 1]."""
    require_in_range(value, name, 0.0, 1.0)
