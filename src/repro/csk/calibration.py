"""Receiver-side calibration state (paper §6).

Different cameras perceive the same transmitted color differently (filter
technology, demosaicing, auto exposure/ISO).  The transmitter periodically
sends *calibration packets* — the full constellation in index order — and the
receiver stores each symbol's received CIELab chroma as the reference for
subsequent matching.  :class:`CalibrationTable` is that store, with
exponential smoothing across calibration packets so the receiver tracks
slowly drifting channel conditions (ambient light, AE adjustments).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.color.cielab import JND_DELTA_E
from repro.csk.constellation import Constellation
from repro.exceptions import CalibrationError


class CalibrationTable:
    """Per-symbol reference chroma learned from calibration packets.

    ``references`` is an ``(order, 2)`` array of (a, b) chroma values.  The
    table also stores the white reference — illumination symbols share the
    matching pipeline — while OFF is detected by lightness, not chroma.
    """

    def __init__(
        self,
        constellation: Constellation,
        smoothing: float = 0.35,
    ) -> None:
        if not 0 < smoothing <= 1:
            raise CalibrationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.constellation = constellation
        self.smoothing = smoothing
        self._references: Optional[np.ndarray] = None
        self._seen = np.zeros(constellation.order, dtype=bool)
        self._extrapolated = np.zeros(constellation.order, dtype=bool)
        self._observations = np.zeros(constellation.order, dtype=int)
        self._white_reference: Optional[np.ndarray] = None
        self.updates_applied = 0

    #: Minimum directly-observed references before affine extrapolation of
    #: the rest is trusted (an affine map has 6 parameters).
    MIN_SEEN_FOR_EXTRAPOLATION = 4

    @property
    def is_calibrated(self) -> bool:
        """Whether every constellation symbol has a usable reference.

        Calibration packets interrupted by the inter-frame gap deliver only
        some symbols (see :meth:`update_partial`).  A symbol's reference is
        usable once it has been observed directly, or extrapolated through
        the affine chromaticity fit after enough other symbols were seen.
        """
        return self._references is not None and bool(
            (self._seen | self._extrapolated).all()
        )

    @property
    def seen_count(self) -> int:
        """Number of symbols whose reference was observed directly."""
        return int(self._seen.sum())

    @property
    def references(self) -> np.ndarray:
        """``(order, 2)`` reference chroma; raises until fully calibrated."""
        if not self.is_calibrated:
            missing = (
                int((~self._seen).sum()) if self._references is not None else None
            )
            raise CalibrationError(
                "calibration incomplete; cannot demodulate"
                + (f" ({missing} symbols never seen)" if missing else "")
            )
        return self._references.copy()

    @property
    def white_reference(self) -> np.ndarray:
        if self._white_reference is None:
            raise CalibrationError("white reference not calibrated yet")
        return self._white_reference.copy()

    def update(
        self, symbol_chroma: np.ndarray, white_chroma: Optional[np.ndarray] = None
    ) -> None:
        """Absorb one calibration packet.

        ``symbol_chroma`` is ``(order, 2)`` — the received (a, b) of each
        constellation symbol in index order.  Subsequent packets are blended
        with weight ``smoothing`` so the table adapts without jumping on a
        single noisy packet.
        """
        chroma = np.asarray(symbol_chroma, dtype=float)
        expected = (self.constellation.order, 2)
        if chroma.shape != expected:
            raise CalibrationError(
                f"calibration chroma must have shape {expected}, got {chroma.shape}"
            )
        self.update_partial(
            list(range(self.constellation.order)), chroma, white_chroma
        )

    def update_partial(
        self,
        indices: Sequence[int],
        symbol_chroma: np.ndarray,
        white_chroma: Optional[np.ndarray] = None,
    ) -> None:
        """Absorb a calibration packet that lost some symbols to the gap.

        Calibration symbols are transmitted in index order, so the receiver
        knows *which* symbols the surviving bands correspond to even when the
        inter-frame gap cuts the packet (position accounting, §5).  Only the
        listed ``indices`` are updated; a table becomes fully calibrated once
        every index has been covered at least once.
        """
        chroma = np.asarray(symbol_chroma, dtype=float)
        if chroma.ndim != 2 or chroma.shape[1] != 2:
            raise CalibrationError(
                f"symbol chroma must be (n, 2), got {chroma.shape}"
            )
        if len(indices) != chroma.shape[0]:
            raise CalibrationError(
                f"{len(indices)} indices but {chroma.shape[0]} chroma rows"
            )
        if not np.all(np.isfinite(chroma)):
            raise CalibrationError("calibration chroma contains non-finite values")
        order = self.constellation.order
        for row, index in enumerate(indices):
            if not 0 <= index < order:
                raise CalibrationError(
                    f"calibration index {index} outside {order}-CSK constellation"
                )
        if self._references is None:
            self._references = np.zeros((order, 2))
        for row, index in enumerate(indices):
            if self._seen[index]:
                # Running mean while observations are few (fast convergence),
                # EWMA once established (drift tracking).
                count = self._observations[index]
                weight = max(self.smoothing, 1.0 / (count + 1))
                self._references[index] = (
                    (1 - weight) * self._references[index] + weight * chroma[row]
                )
            else:
                self._references[index] = chroma[row]
                self._seen[index] = True
                self._extrapolated[index] = False
            self._observations[index] += 1
        self._extrapolate_missing()
        if white_chroma is not None:
            white = np.asarray(white_chroma, dtype=float)
            if white.shape != (2,):
                raise CalibrationError(
                    f"white chroma must have shape (2,), got {white.shape}"
                )
            if self._white_reference is None:
                self._white_reference = white.copy()
            else:
                self._white_reference = (
                    (1 - self.smoothing) * self._white_reference
                    + self.smoothing * white
                )
        self.updates_applied += 1

    def _extrapolate_missing(self) -> None:
        """Fill unseen references via an affine chromaticity fit.

        The camera's net effect on chromaticity is approximately affine
        (channel mixing plus white-balance shift), so fitting
        ``ab = A @ xy + b`` on the directly-observed symbols predicts the
        received chroma of the unseen ones.  Extrapolated entries are
        replaced outright by the first direct observation.
        """
        missing = ~(self._seen | self._extrapolated)
        if not missing.any():
            return
        if self.seen_count < self.MIN_SEEN_FOR_EXTRAPOLATION:
            return
        xy = self.constellation.as_array()
        design = np.hstack([xy[self._seen], np.ones((self.seen_count, 1))])
        observed = self._references[self._seen]
        coeffs, *_ = np.linalg.lstsq(design, observed, rcond=None)
        unseen = ~self._seen
        predicted = (
            np.hstack([xy[unseen], np.ones((int(unseen.sum()), 1))]) @ coeffs
        )
        self._references[unseen] = predicted
        self._extrapolated[unseen] = True

    def affine_residual(
        self, indices: Sequence[int], symbol_chroma: np.ndarray
    ) -> Optional[float]:
        """RMS misfit (ΔE) of a calibration event against the affine model.

        A genuine calibration packet carries the constellation's xy targets
        pushed through the camera — approximately the affine map
        :meth:`_extrapolate_missing` fits — so its received chroma fits
        ``ab = A @ xy + b`` to within channel noise.  Colors that were
        misframed as a calibration packet (a damaged data preamble matching
        the calibration skeleton) sit at the wrong indices and fit badly,
        which makes the residual a credibility score.  Returns ``None``
        when fewer than :data:`MIN_SEEN_FOR_EXTRAPOLATION` symbols
        survived: the 6-parameter fit would be underdetermined.
        """
        if len(indices) < self.MIN_SEEN_FOR_EXTRAPOLATION:
            return None
        chroma = np.asarray(symbol_chroma, dtype=float)
        if chroma.shape != (len(indices), 2):
            raise CalibrationError(
                f"expected chroma shape {(len(indices), 2)}, got {chroma.shape}"
            )
        xy = self.constellation.as_array()[list(indices)]
        design = np.hstack([xy, np.ones((len(indices), 1))])
        coeffs, *_ = np.linalg.lstsq(design, chroma, rcond=None)
        residual = chroma - design @ coeffs
        return float(np.sqrt(np.mean(np.sum(residual**2, axis=1))))

    def distance_matrix(self, chroma: np.ndarray) -> np.ndarray:
        """ΔE from each chroma sample to *every* reference.

        ``chroma`` is ``(..., 2)``; returns ``(..., order)`` distances.  The
        full matrix is what margin estimation needs: the gap between the
        nearest and second-nearest reference is the decision margin the
        link-adaptation controller watches (:mod:`repro.link.adapt`).
        """
        refs = self.references  # raises if uncalibrated
        chroma = np.asarray(chroma, dtype=float)
        deltas = chroma[..., np.newaxis, :] - refs
        return np.sqrt(np.sum(deltas**2, axis=-1))

    def match(self, chroma: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Nearest reference for each chroma sample.

        ``chroma`` is ``(..., 2)``; returns ``(indices, distances)`` with the
        broadcast leading shape.  Callers compare distances against the ΔE
        acceptance threshold.
        """
        distances = self.distance_matrix(chroma)
        indices = np.argmin(distances, axis=-1)
        best = np.take_along_axis(
            distances, indices[..., np.newaxis], axis=-1
        )[..., 0]
        return indices, best

    def separation_margin(self) -> float:
        """Smallest pairwise distance between references.

        When this falls toward :data:`~repro.color.cielab.JND_DELTA_E`, the
        constellation order is too high for the current channel.
        """
        refs = self.references
        deltas = refs[:, np.newaxis, :] - refs[np.newaxis, :, :]
        distances = np.sqrt(np.sum(deltas**2, axis=-1))
        np.fill_diagonal(distances, np.inf)
        return float(distances.min())

    def is_reliable(self, factor: float = 2.0) -> bool:
        """Heuristic: references separated by at least ``factor`` JNDs."""
        return self.separation_margin() >= factor * JND_DELTA_E
