"""CSK demodulator: received CIELab samples -> symbol decisions (paper §7).

The receiver classifies each detected band by:

1. **OFF detection** — lightness L below a dark threshold (the LED was off);
2. **white/color matching** — nearest reference chroma in the ab-plane,
   where references come from a :class:`~repro.csk.calibration.CalibrationTable`
   (calibrated mode) or from the nominal constellation pushed through the
   ideal color pipeline (uncalibrated ablation mode).

A match farther than the acceptance threshold (a multiple of the ΔE = 2.3
just-noticeable difference) is flagged low-confidence; packet-level logic
decides whether to keep or drop it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from repro.color.cielab import JND_DELTA_E
from repro.csk.calibration import CalibrationTable
from repro.exceptions import DemodulationError


class DecisionKind(Enum):
    """What a received band was classified as."""

    DATA = "data"
    WHITE = "white"
    OFF = "off"


@dataclass(frozen=True)
class SymbolDecision:
    """One demodulated band: its class, index (DATA only), and confidence.

    ``margin`` is the ΔE gap between the nearest and second-nearest
    candidate reference (data references plus white) — the distance this
    decision sits from flipping to its runner-up.  It is the per-symbol
    channel-quality signal the link-adaptation controller aggregates
    (:mod:`repro.link.adapt`).  ``None`` for OFF decisions (settled by
    lightness alone, never matched against the table) and for bootstrap
    decisions made before any calibration exists — an undefined margin is
    *not* a zero margin.
    """

    kind: DecisionKind
    index: Optional[int]
    distance: float
    confident: bool
    margin: Optional[float] = None

    def to_char(self) -> str:
        """Compact notation matching :meth:`LogicalSymbol.to_char`."""
        if self.kind is DecisionKind.OFF:
            return "o"
        if self.kind is DecisionKind.WHITE:
            return "w"
        return str(self.index)


class CskDemodulator:
    """Classifies per-band Lab measurements into symbol decisions.

    Parameters
    ----------
    calibration:
        The reference table (must be calibrated before data demodulation).
    off_lightness:
        L* below which a band is the OFF symbol.  The paper notes OFF and
        white are distinguishable "with very high accuracy" — darkness is a
        lightness decision, independent of chroma.
    acceptance_delta_e:
        Maximum ab-plane distance for a *confident* match, as a multiple of
        the 2.3 JND (default 4x: automatic exposure moves received chroma by
        several JND between calibrations, so a tight threshold would discard
        recoverable symbols; RS coding cleans up the rest).
    """

    def __init__(
        self,
        calibration: CalibrationTable,
        off_lightness: float = 12.0,
        acceptance_delta_e: float = 4.0 * JND_DELTA_E,
    ) -> None:
        if off_lightness <= 0:
            raise DemodulationError(
                f"off_lightness must be positive, got {off_lightness}"
            )
        if acceptance_delta_e <= 0:
            raise DemodulationError(
                f"acceptance_delta_e must be positive, got {acceptance_delta_e}"
            )
        self.calibration = calibration
        self.off_lightness = off_lightness
        self.acceptance_delta_e = acceptance_delta_e

    def decide(self, lab: np.ndarray) -> SymbolDecision:
        """Classify a single band measurement ``(L, a, b)``."""
        return self.decide_stream(np.asarray(lab, dtype=float)[np.newaxis, :])[0]

    def decide_stream(self, lab: np.ndarray) -> List[SymbolDecision]:
        """Classify ``(N, 3)`` Lab band measurements in order.

        Fully vectorized: dark/OFF rows are settled by the lightness test
        alone — no calibration matching or white-distance work is ever done
        for them — and an all-dark stream (gap-straddling frames, occlusion
        faults) short-circuits before touching the reference table at all.
        The remaining lit rows get one batched nearest-reference match and
        one white-distance pass; decisions are materialized at the end.
        """
        lab = np.asarray(lab, dtype=float)
        if lab.ndim != 2 or lab.shape[1] != 3:
            raise DemodulationError(
                f"expected (N, 3) Lab array, got shape {lab.shape}"
            )
        dark = lab[:, 0] < self.off_lightness
        off_decision = SymbolDecision(DecisionKind.OFF, None, 0.0, True)
        decisions: List[SymbolDecision] = [off_decision] * lab.shape[0]
        lit = np.flatnonzero(~dark)
        if lit.size == 0:
            return decisions

        # Distances to data references and to the white reference, lit rows
        # only.
        chroma = lab[lit, 1:]
        matrix = self.calibration.distance_matrix(chroma)
        indices = np.argmin(matrix, axis=-1)
        data_dist = np.take_along_axis(
            matrix, indices[..., np.newaxis], axis=-1
        )[..., 0]
        white_ref = self.calibration.white_reference
        white_dist = np.sqrt(np.sum((chroma - white_ref) ** 2, axis=-1))
        is_white = white_dist < data_dist
        distance = np.where(is_white, white_dist, data_dist)
        confident = distance <= self.acceptance_delta_e
        # Margin to the runner-up over the full candidate set (data
        # references + white): how far each decision is from flipping.
        candidates = np.concatenate([matrix, white_dist[:, np.newaxis]], axis=1)
        nearest_two = np.partition(candidates, 1, axis=1)
        margin = nearest_two[:, 1] - nearest_two[:, 0]

        for row, white, dist, index, sure, gap in zip(
            lit.tolist(),
            is_white.tolist(),
            distance.tolist(),
            indices.tolist(),
            confident.tolist(),
            margin.tolist(),
        ):
            decisions[row] = SymbolDecision(
                DecisionKind.WHITE if white else DecisionKind.DATA,
                None if white else int(index),
                float(dist),
                bool(sure),
                float(gap),
            )
        return decisions

    def decision_string(self, lab: np.ndarray) -> str:
        """Compact 'o'/'w'/index rendering of a decision stream (debugging)."""
        return ",".join(d.to_char() for d in self.decide_stream(lab))


def nominal_calibration(
    constellation,
    modulator,
    camera_response=None,
) -> CalibrationTable:
    """Build a CalibrationTable from nominal emissions (no calibration packet).

    Used by the calibration-off ablation: references are the constellation
    emissions converted to Lab through an *ideal* pipeline (``camera_response``
    None) or through a device's color response when one is supplied.  This is
    exactly the mismatch the paper's §6 calibration mechanism exists to fix.
    """
    from repro.color.cielab import xyz_to_lab

    table = CalibrationTable(constellation)
    emissions = np.stack(modulator.reference_emissions())
    white = modulator.white_emission()
    if camera_response is not None:
        emissions = camera_response(emissions)
        white = camera_response(white[np.newaxis, :])[0]
    # Normalize luminance so Lab references sit at a stable lightness.
    peak = max(float(emissions[..., 1].max()), 1e-12)
    lab = xyz_to_lab(emissions / peak)
    white_lab = xyz_to_lab(white / peak)
    table.update(lab[:, 1:], white_lab[1:])
    return table
