"""Constellation optimization — the paper's stated future work (§10).

"In the future, we plan to optimize the CSK constellation design to
minimize the inter-symbol interference."  The standard-derived designs
maximize symbol separation in *transmit* (CIE xy) space, but the receiver
decides in its own *received* chroma space, where each camera's color
response stretches some directions and compresses others (Fig 6a).  The
right objective is therefore the minimum pairwise separation after the
channel — including separation from the white point, which illumination
and framing symbols occupy.

:func:`optimize_constellation` runs a balanced stochastic hill climb:

* points live in barycentric coordinates over the gamut triangle;
* every move perturbs a *pair* of points in opposite directions, so the
  equal-proportion mixture stays exactly white (the §4 flicker invariant);
* the objective is the minimum pairwise distance of the symbol set plus the
  white point, measured through a caller-supplied chromaticity map —
  identity for transmit-space optimization, or a device model from
  :func:`received_space_map` for camera-aware designs.

Deterministic given the seed; a few thousand iterations run in well under a
second for 32 points.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.color.chromaticity import ChromaticityPoint, GamutTriangle
from repro.csk.constellation import Constellation, design_constellation
from repro.exceptions import ConstellationError
from repro.util.rng import make_rng

#: Map from (N, 2) xy chromaticities to (N, d) decision-space coordinates.
SpaceMap = Callable[[np.ndarray], np.ndarray]


def _barycentric(points_xy: np.ndarray, gamut: GamutTriangle) -> np.ndarray:
    from repro.color.chromaticity import barycentric_coordinates

    return np.stack(
        [barycentric_coordinates(p, gamut.vertices) for p in points_xy]
    )


def _to_xy(weights: np.ndarray, gamut: GamutTriangle) -> np.ndarray:
    return weights @ gamut.vertices


def _min_separation(
    points_xy: np.ndarray, gamut: GamutTriangle, space_map: SpaceMap
) -> float:
    """Minimum pairwise distance of symbols + white in decision space."""
    centroid = gamut.centroid().as_array()
    augmented = np.vstack([points_xy, centroid])
    mapped = space_map(augmented)
    deltas = mapped[:, np.newaxis, :] - mapped[np.newaxis, :, :]
    distances = np.sqrt((deltas**2).sum(axis=-1))
    np.fill_diagonal(distances, np.inf)
    return float(distances.min())


def identity_map(xy: np.ndarray) -> np.ndarray:
    """Optimize in transmit (xy) space."""
    return np.asarray(xy, dtype=float)


def received_space_map(
    response, emitter, exposure_target: float = 0.45
) -> SpaceMap:
    """Decision-space map for one camera: xy -> received CIELab chroma.

    Chromaticities are emitted by the tri-LED at its symbol power and
    pushed through the device pipeline the way the simulator's camera does:

    * the device's 3x3 color response,
    * auto exposure — gain set so the *white point* (the frame's average,
      by the §4 balance property) sits at ``exposure_target``,
    * gray-world auto white balance — channel gains that neutralize white,
    * sensor saturation — channels clip at full scale,
    * conversion to the CIELab ab-plane the demodulator matches in.

    Modelling saturation matters: without it, optimization drifts symbols
    into fully-saturated corners whose apparent margin the real camera
    clips away.
    """
    from repro.color.cielab import xyz_to_lab
    from repro.color.srgb import linear_rgb_to_xyz

    white_xy = emitter.white_point
    white_rgb = response.scene_xyz_to_camera_linear(
        emitter.emit_chromaticity(white_xy, quantize=False)[np.newaxis, :]
    )[0]
    white_rgb = np.clip(white_rgb, 1e-9, None)
    exposure_gain = exposure_target / float(white_rgb.mean())
    awb_gains = float(white_rgb.mean()) / white_rgb

    def mapper(xy: np.ndarray) -> np.ndarray:
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        emissions = np.stack(
            [
                emitter.emit_chromaticity(
                    ChromaticityPoint(float(x), float(y)), quantize=False
                )
                for x, y in xy
            ]
        )
        camera_linear = response.scene_xyz_to_camera_linear(emissions)
        camera_linear = np.clip(
            camera_linear * exposure_gain * awb_gains, 0.0, 1.0
        )
        lab = xyz_to_lab(linear_rgb_to_xyz(camera_linear))
        return lab[:, 1:]

    return mapper


def optimize_constellation(
    order: int,
    gamut: GamutTriangle,
    space_map: Optional[SpaceMap] = None,
    iterations: int = 3000,
    step: float = 0.04,
    margin: float = 0.02,
    seed=0,
) -> Constellation:
    """Improve a constellation's worst-case separation in decision space.

    Starts from the standard design for ``order`` and hill-climbs with
    white-balance-preserving pair moves.  ``margin`` keeps every symbol at
    least that barycentric distance inside the triangle edges (full-edge
    symbols leave no headroom for PWM quantization).

    Returns a new :class:`Constellation`; the result's minimum decision-
    space separation is never below the starting design's.
    """
    if iterations < 1:
        raise ConstellationError(f"iterations must be >= 1, got {iterations}")
    if not 0 <= margin < 0.3:
        raise ConstellationError(f"margin must be in [0, 0.3), got {margin}")
    mapper = space_map if space_map is not None else identity_map
    rng = make_rng(seed)

    start = design_constellation(order, gamut)
    weights = _barycentric(start.as_array(), gamut)
    # Pull edge points inside by the margin (preserves the mean only
    # approximately; re-center with a uniform shift which keeps all inside
    # for small margins).
    weights = np.clip(weights, margin, None)
    weights /= weights.sum(axis=1, keepdims=True)
    weights += (1.0 / 3.0 - weights.mean(axis=0))[np.newaxis, :]

    best_score = _min_separation(_to_xy(weights, gamut), gamut, mapper)

    for _ in range(iterations):
        i, j = rng.choice(order, size=2, replace=False)
        delta = rng.normal(0.0, step, 3)
        delta -= delta.mean()  # stay on the simplex plane
        candidate = weights.copy()
        candidate[i] += delta
        candidate[j] -= delta
        if (candidate[[i, j]] < margin).any():
            continue
        score = _min_separation(_to_xy(candidate, gamut), gamut, mapper)
        if score > best_score:
            weights = candidate
            best_score = score

    points = [
        ChromaticityPoint(float(x), float(y))
        for x, y in _to_xy(weights, gamut)
    ]
    return Constellation(order, points, gamut)


def separation_report(
    constellation: Constellation, space_map: Optional[SpaceMap] = None
) -> dict:
    """Worst-case separations of a design, in transmit and decision space."""
    mapper = space_map if space_map is not None else identity_map
    xy = constellation.as_array()
    return {
        "transmit_min_distance": constellation.min_distance(),
        "decision_min_separation": _min_separation(
            xy, constellation.gamut, mapper
        ),
        "white_balanced": bool(
            constellation.mean_chromaticity().distance_to(
                constellation.gamut.centroid()
            )
            < 1e-6
        ),
    }
