"""CSK constellation designs for 4/8/16/32-CSK.

The designs follow the construction principles of the IEEE 802.15.7 CSK
constellations the paper adopts (Figs. 1e/1f): symbols live on a triangular
lattice inside the emitter's gamut triangle, are spread to maximize the
minimum pairwise chromaticity distance, and are balanced so that the equal-
proportion mixture of all symbols is the white point — the property §4 relies
on for flicker-free illumination.

One deliberate deviation from the verbatim standard layouts: ColorBars
reserves the white point for illumination and framing symbols ('w'), so no
*data* symbol may sit at the gamut centroid — otherwise white insertion and
white stripping become ambiguous at the receiver.  Our designs therefore
keep the centroid symbol-free while preserving the standard's two structural
properties: (i) the equal-proportion mixture of all symbols is exactly the
white point (§4's flicker argument), and (ii) symbols maximize the minimum
pairwise distance — here computed *including* the white point, since the
receiver must also separate data colors from illumination whites.  The
median-pair radii below were chosen by a max-min-distance grid search over
the barycentric parametrization (gamut-independent).

Concretely:

* **4-CSK** — two centroid-symmetric pairs along the red and green medians
  at radius 0.48 (a "cross" around white).
* **8-CSK** — the order-2 lattice (vertices + edge midpoints) plus a
  green-median pair at radius 0.25, mirroring the two interior points of
  the standard's 8-CSK layout.
* **16-CSK** — the order-4 lattice minus its inner triad (12 points) plus
  red- and green-median pairs at radii 0.24 / 0.26.
* **32-CSK** — the order-6 lattice minus the centroid (27 points) plus a
  vertex-pointing triad at radius 0.30 and a green-median pair at 0.14.

Every design's mean chromaticity equals the centroid exactly (verified by
unit tests), and minimum distance decreases with order — 0.176, 0.097,
0.088, 0.055 in xy for the typical LED gamut: more bits per symbol buy rate
at the cost of noise margin, which is exactly the SER trade the paper
evaluates in Fig. 9.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.color.chromaticity import ChromaticityPoint, GamutTriangle
from repro.exceptions import ConstellationError

#: Constellation orders the paper evaluates.
SUPPORTED_ORDERS: Tuple[int, ...] = (4, 8, 16, 32)


class Constellation:
    """An ordered set of chromaticity symbols inside a gamut triangle."""

    def __init__(
        self,
        order: int,
        points: Sequence[ChromaticityPoint],
        gamut: GamutTriangle,
    ) -> None:
        if order < 2 or order & (order - 1):
            raise ConstellationError(f"order must be a power of two >= 2, got {order}")
        if len(points) != order:
            raise ConstellationError(
                f"{order}-CSK needs exactly {order} points, got {len(points)}"
            )
        seen: Dict[Tuple[float, float], int] = {}
        for index, point in enumerate(points):
            key = (round(point.x, 9), round(point.y, 9))
            if key in seen:
                raise ConstellationError(
                    f"duplicate constellation point at indices "
                    f"{seen[key]} and {index}: ({point.x:.4f}, {point.y:.4f})"
                )
            seen[key] = index
            if not gamut.contains(point, tolerance=1e-6):
                raise ConstellationError(
                    f"point {index} ({point.x:.4f}, {point.y:.4f}) lies outside "
                    "the gamut triangle"
                )
        self.order = order
        self.points: Tuple[ChromaticityPoint, ...] = tuple(points)
        self.gamut = gamut

    @property
    def bits_per_symbol(self) -> int:
        """C = log2(order) — the paper's symbol size in bits."""
        return self.order.bit_length() - 1

    def point(self, index: int) -> ChromaticityPoint:
        """Constellation entry ``index`` (the DATA symbol's chromaticity)."""
        if not 0 <= index < self.order:
            raise ConstellationError(
                f"symbol index {index} outside {self.order}-CSK constellation"
            )
        return self.points[index]

    def as_array(self) -> np.ndarray:
        """``(order, 2)`` array of xy coordinates."""
        return np.array([[p.x, p.y] for p in self.points])

    def mean_chromaticity(self) -> ChromaticityPoint:
        """Average of all symbols — equals the white point for valid designs."""
        mean = self.as_array().mean(axis=0)
        return ChromaticityPoint(float(mean[0]), float(mean[1]))

    def min_distance(self) -> float:
        """Smallest pairwise xy distance — the constellation's noise margin."""
        return self.gamut.min_pairwise_distance(self.points)

    def nearest(self, xy: np.ndarray) -> Tuple[int, float]:
        """Nearest symbol index and its distance for a chromaticity sample."""
        xy = np.asarray(xy, dtype=float)
        deltas = self.as_array() - xy
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        index = int(np.argmin(distances))
        return index, float(distances[index])

    def __len__(self) -> int:
        return self.order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constellation(order={self.order}, d_min={self.min_distance():.4f})"


def _lattice(gamut: GamutTriangle, subdivisions: int) -> List[ChromaticityPoint]:
    return gamut.grid_points(subdivisions)


def _barycentric_point(gamut: GamutTriangle, weights: Sequence[float]) -> ChromaticityPoint:
    return gamut.interpolate(weights)


def _median_pair(
    gamut: GamutTriangle, vertex: int, radius: float
) -> List[ChromaticityPoint]:
    """A centroid-symmetric pair along the median through ``vertex``.

    ``radius`` in (0, 0.5]: 0.5 puts the inner point on the opposite edge.
    The pair's mean is the centroid, so adding pairs never disturbs the
    equal-mixture white balance.
    """
    center = 1.0 / 3.0
    plus = [center - radius / 3.0] * 3
    minus = [center + radius / 3.0] * 3
    plus[vertex] = center + 2.0 * radius / 3.0
    minus[vertex] = center - 2.0 * radius / 3.0
    return [
        _barycentric_point(gamut, plus),
        _barycentric_point(gamut, minus),
    ]


def _vertex_triad(gamut: GamutTriangle, radius: float) -> List[ChromaticityPoint]:
    """Three points at ``radius`` from the centroid toward each vertex."""
    center = 1.0 / 3.0
    points = []
    for vertex in range(3):
        weights = [center - radius / 3.0] * 3
        weights[vertex] = center + 2.0 * radius / 3.0
        points.append(_barycentric_point(gamut, weights))
    return points


def _design_4csk(gamut: GamutTriangle) -> List[ChromaticityPoint]:
    # Two median pairs at radius 0.48 — the widest centroid-free cross.
    return _median_pair(gamut, 0, 0.48) + _median_pair(gamut, 1, 0.48)


def _design_8csk(gamut: GamutTriangle) -> List[ChromaticityPoint]:
    # Order-2 lattice (vertices + edge midpoints, mean = centroid) plus a
    # green-median interior pair, as in the standard's 8-CSK layout.
    return _lattice(gamut, 2) + _median_pair(gamut, 1, 0.25)


def _design_16csk(gamut: GamutTriangle) -> List[ChromaticityPoint]:
    # Order-4 lattice minus its inner triad (12 points, mean preserved by
    # symmetry) plus red- and green-median pairs filling the interior.
    inner_triad = _vertex_triad(gamut, 0.25)  # the lattice's (2,1,1)/4 points
    base = [
        p
        for p in _lattice(gamut, 4)
        if all(p.distance_to(t) > 1e-9 for t in inner_triad)
    ]
    return base + _median_pair(gamut, 0, 0.24) + _median_pair(gamut, 1, 0.26)


def _design_32csk(gamut: GamutTriangle) -> List[ChromaticityPoint]:
    # Order-6 lattice minus the centroid (27 points, mean preserved), a
    # vertex triad at radius 0.30 and a green-median pair at 0.14.
    centroid = gamut.centroid()
    base = [
        p for p in _lattice(gamut, 6) if p.distance_to(centroid) > 1e-12
    ]
    return base + _vertex_triad(gamut, 0.30) + _median_pair(gamut, 1, 0.14)


_DESIGNS = {
    4: _design_4csk,
    8: _design_8csk,
    16: _design_16csk,
    32: _design_32csk,
}


def design_constellation(order: int, gamut: GamutTriangle) -> Constellation:
    """Build the standard ColorBars constellation for ``order``-CSK.

    Supported orders are 4, 8, 16 and 32 (the paper's evaluation set).
    """
    if order not in _DESIGNS:
        raise ConstellationError(
            f"unsupported CSK order {order}; supported: {sorted(_DESIGNS)}"
        )
    points = _DESIGNS[order](gamut)
    return Constellation(order, points, gamut)
