"""Bit-group <-> constellation-index mapping.

Each CSK symbol carries ``C = log2(M)`` bits (paper §3.2: "when 8CSK is used,
the bits are split into pieces of 3 bits and each piece is mapped to a color
symbol").  The mapper also offers a neighbor-aware index assignment that
reduces the bit errors caused by a symbol being confused with its nearest
chromaticity neighbor — a 2-D analogue of Gray coding.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.csk.constellation import Constellation
from repro.exceptions import ModulationError
from repro.phy.symbols import LogicalSymbol, data_symbol
from repro.util.bitstream import bits_to_int, chunk_bits, int_to_bits


def _hamming(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


def neighbor_aware_assignment(constellation: Constellation) -> List[int]:
    """Permutation ``labels[i] -> bit pattern`` lowering neighbor Hamming cost.

    Greedy construction: walk symbols in order of mutual proximity and give
    each the unused label closest (in Hamming distance) to the labels of its
    already-assigned nearest neighbors.  Not optimal — optimal 2-D Gray
    labeling is NP-hard — but measurably better than identity labeling, and
    deterministic.
    """
    points = constellation.as_array()
    order = constellation.order
    distances = np.hypot(
        points[:, 0:1] - points[:, 0][np.newaxis, :],
        points[:, 1:2] - points[:, 1][np.newaxis, :],
    )
    np.fill_diagonal(distances, np.inf)

    labels = [-1] * order
    used = set()
    # Seed: first symbol gets label 0.
    visit_order = [0]
    seen = {0}
    while len(visit_order) < order:
        # Next symbol: the unvisited one closest to any visited symbol.
        best, best_dist = -1, np.inf
        for candidate in range(order):
            if candidate in seen:
                continue
            dist = min(distances[candidate][v] for v in visit_order)
            if dist < best_dist:
                best, best_dist = candidate, dist
        visit_order.append(best)
        seen.add(best)

    for symbol in visit_order:
        neighbor_labels = [
            labels[other]
            for other in np.argsort(distances[symbol])[:3]
            if labels[other] >= 0
        ]
        if not neighbor_labels:
            label = 0 if 0 not in used else min(set(range(order)) - used)
        else:
            candidates = [c for c in range(order) if c not in used]
            label = min(
                candidates,
                key=lambda c: sum(_hamming(c, n) for n in neighbor_labels),
            )
        labels[symbol] = label
        used.add(label)
    return labels


class SymbolMapper:
    """Maps bit streams to DATA symbols and back for one constellation.

    With ``gray=True`` (default) the neighbor-aware labeling is used so that
    the most likely symbol confusions flip few bits; ``gray=False`` keeps the
    identity labeling for ablation studies.
    """

    def __init__(self, constellation: Constellation, gray: bool = True) -> None:
        self.constellation = constellation
        self.bits_per_symbol = constellation.bits_per_symbol
        if gray:
            assignment = neighbor_aware_assignment(constellation)
        else:
            assignment = list(range(constellation.order))
        #: symbol index -> bit label
        self._label_of_index = assignment
        #: bit label -> symbol index
        self._index_of_label = [0] * constellation.order
        for index, label in enumerate(assignment):
            self._index_of_label[label] = index

    def bits_to_symbols(self, bits: Sequence[int]) -> List[LogicalSymbol]:
        """Map a bit sequence to DATA symbols (zero-padded to a full symbol)."""
        symbols: List[LogicalSymbol] = []
        for group in chunk_bits(bits, self.bits_per_symbol):
            label = bits_to_int(group)
            symbols.append(data_symbol(self._index_of_label[label]))
        return symbols

    def symbols_to_bits(self, symbols: Sequence[LogicalSymbol]) -> List[int]:
        """Recover the bit sequence from DATA symbols."""
        bits: List[int] = []
        for position, symbol in enumerate(symbols):
            if not symbol.is_data:
                raise ModulationError(
                    f"symbol at position {position} is {symbol.kind.name}, "
                    "expected DATA"
                )
            if symbol.index >= self.constellation.order:
                raise ModulationError(
                    f"symbol index {symbol.index} outside "
                    f"{self.constellation.order}-CSK constellation"
                )
            label = self._label_of_index[symbol.index]
            bits.extend(int_to_bits(label, self.bits_per_symbol))
        return bits

    def label_of_index(self, index: int) -> int:
        """The bit label assigned to a constellation index."""
        if not 0 <= index < self.constellation.order:
            raise ModulationError(
                f"index {index} outside {self.constellation.order}-CSK "
                "constellation"
            )
        return self._label_of_index[index]

    def index_of_label(self, label: int) -> int:
        """The constellation index carrying a bit label."""
        if not 0 <= label < self.constellation.order:
            raise ModulationError(
                f"label {label} outside {self.constellation.order}-CSK "
                "constellation"
            )
        return self._index_of_label[label]

    def symbols_for_payload(self, payload_bits: int) -> int:
        """How many DATA symbols a payload of ``payload_bits`` bits needs."""
        if payload_bits < 0:
            raise ModulationError(f"payload_bits must be >= 0, got {payload_bits}")
        return -(-payload_bits // self.bits_per_symbol)
