"""Color Shift Keying: constellations, bit mapping, modulation, demodulation.

The transmitter maps groups of ``log2(M)`` bits onto M chromaticity points
inside the tri-LED's gamut triangle (802.15.7-style designs, paper §2.2 and
Figs. 1e/1f); the receiver matches received CIELab chroma against reference
colors learned from calibration packets (paper §6-§7).
"""

from repro.csk.calibration import CalibrationTable
from repro.csk.constellation import (
    Constellation,
    design_constellation,
    SUPPORTED_ORDERS,
)
from repro.csk.demodulator import CskDemodulator, SymbolDecision
from repro.csk.mapping import SymbolMapper
from repro.csk.modulator import CskModulator

__all__ = [
    "CalibrationTable",
    "Constellation",
    "design_constellation",
    "SUPPORTED_ORDERS",
    "CskDemodulator",
    "SymbolDecision",
    "SymbolMapper",
    "CskModulator",
]
