"""CSK modulator: logical symbols -> emitted XYZ per symbol slot.

The modulator owns the translation from the packet layer's
:class:`~repro.phy.symbols.LogicalSymbol` stream to the per-symbol emission
array an :class:`~repro.phy.waveform.OpticalWaveform` is built from: DATA
symbols via the constellation and the tri-LED's duty solver, WHITE at the
gamut centroid, OFF as darkness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.csk.constellation import Constellation
from repro.exceptions import ModulationError
from repro.phy.led import TriLedEmitter
from repro.phy.symbols import LogicalSymbol
from repro.phy.waveform import EXTEND_OFF, OpticalWaveform


class CskModulator:
    """Maps logical symbol streams onto the tri-LED's light output."""

    def __init__(
        self,
        constellation: Constellation,
        emitter: TriLedEmitter,
        symbol_rate: float,
        power_sum: Optional[float] = None,
        quantize_pwm: bool = True,
    ) -> None:
        emitter.pwm.check_symbol_rate(symbol_rate)
        self.constellation = constellation
        self.emitter = emitter
        self.symbol_rate = float(symbol_rate)
        self.power_sum = (
            power_sum if power_sum is not None else emitter.default_symbol_power()
        )
        self.quantize_pwm = quantize_pwm
        # Precompute the emission of every constellation point and of white:
        # the modulator is called per packet, so table lookups keep it cheap.
        self._data_xyz = np.stack(
            [
                emitter.emit_chromaticity(
                    constellation.point(i), self.power_sum, quantize=quantize_pwm
                )
                for i in range(constellation.order)
            ]
        )
        self._white_xyz = emitter.emit_chromaticity(
            emitter.white_point, self.power_sum, quantize=quantize_pwm
        )
        self._off_xyz = emitter.off_xyz()

    @property
    def bits_per_symbol(self) -> int:
        return self.constellation.bits_per_symbol

    def symbol_xyz(self, symbol: LogicalSymbol) -> np.ndarray:
        """Emission for one logical symbol."""
        if symbol.is_off:
            return self._off_xyz.copy()
        if symbol.is_white:
            return self._white_xyz.copy()
        if symbol.index >= self.constellation.order:
            raise ModulationError(
                f"symbol index {symbol.index} outside "
                f"{self.constellation.order}-CSK constellation"
            )
        return self._data_xyz[symbol.index].copy()

    def emissions(self, symbols: Sequence[LogicalSymbol]) -> np.ndarray:
        """``(N, 3)`` XYZ array for a symbol stream."""
        if not symbols:
            raise ModulationError("cannot modulate an empty symbol stream")
        out = np.empty((len(symbols), 3))
        for row, symbol in enumerate(symbols):
            if symbol.is_off:
                out[row] = self._off_xyz
            elif symbol.is_white:
                out[row] = self._white_xyz
            else:
                if symbol.index >= self.constellation.order:
                    raise ModulationError(
                        f"symbol {row} index {symbol.index} outside "
                        f"{self.constellation.order}-CSK constellation"
                    )
                out[row] = self._data_xyz[symbol.index]
        return out

    def waveform(
        self, symbols: Sequence[LogicalSymbol], extend: str = EXTEND_OFF
    ) -> OpticalWaveform:
        """Build the on-air optical waveform for a symbol stream."""
        return OpticalWaveform(
            self.emissions(symbols), self.symbol_rate, extend=extend
        )

    def reference_emissions(self) -> List[np.ndarray]:
        """Nominal XYZ of every constellation point (for analysis/ablation)."""
        return [self._data_xyz[i].copy() for i in range(self.constellation.order)]

    def white_emission(self) -> np.ndarray:
        return self._white_xyz.copy()
