"""The declared import-layering DAG of the ``repro`` package.

Each layer names the layers it may import *directly*; the transitive closure
is computed (and the graph checked for cycles) at import time.  The intended
architecture is a strict bottom-up chain through the optical pipeline::

    exceptions -> util -> color -> phy -> {csk, fec, camera}
        -> {packet, flicker, video, faults} -> rx -> core -> link
        -> {analysis, baselines, perf, serve}

(``faults`` sits between ``camera`` and ``link``: injectors transform
captured frames, and only the link layer composes them into runs;
``perf`` sits above ``link`` — the executor/cache/bench orchestrate link
runs, while the link layer only *accepts* injected planners/runners and
never imports ``perf``; ``obs`` sits at the bottom next to ``util`` —
tracing/metrics are injected into camera/rx/link/perf, so instrumented
layers may import ``obs`` but ``obs`` sees nothing above ``util``)

with ``tooling`` off to the side (it may only see ``util``/``exceptions``)
and the application shell (``cli``, ``__main__``, the package root) allowed
to import anything.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.exceptions import LayeringError

#: Pseudo-layer for application entry points; exempt from layering checks.
APP_LAYER = "app"

#: Top-level modules of ``repro`` that are not packages, mapped to layers.
_TOP_LEVEL_MODULES = {
    "exceptions": "exceptions",
    "cli": APP_LAYER,
    "__main__": APP_LAYER,
    "__init__": APP_LAYER,
}

#: Direct (non-transitive) dependencies each layer is allowed.
LAYER_DEPS: Dict[str, FrozenSet[str]] = {
    "exceptions": frozenset(),
    "util": frozenset({"exceptions"}),
    "obs": frozenset({"util"}),
    "color": frozenset({"util"}),
    "phy": frozenset({"color"}),
    "fec": frozenset({"util"}),
    "csk": frozenset({"phy"}),
    "camera": frozenset({"phy", "obs"}),
    "packet": frozenset({"csk"}),
    "flicker": frozenset({"csk"}),
    "video": frozenset({"camera"}),
    "faults": frozenset({"camera"}),
    "rx": frozenset({"video", "packet", "fec", "obs"}),
    "core": frozenset({"rx", "flicker"}),
    "link": frozenset({"core", "faults", "obs"}),
    "analysis": frozenset({"link"}),
    "baselines": frozenset({"rx"}),
    "perf": frozenset({"link", "obs"}),
    "serve": frozenset({"link"}),
    "tooling": frozenset({"util"}),
}


def _closure(graph: Dict[str, FrozenSet[str]]) -> Dict[str, FrozenSet[str]]:
    """Transitive closure of the dependency graph; raises on cycles."""
    resolved: Dict[str, FrozenSet[str]] = {}
    visiting: Set[str] = set()

    def visit(layer: str) -> FrozenSet[str]:
        if layer in resolved:
            return resolved[layer]
        if layer in visiting:
            raise LayeringError(f"cycle in LAYER_DEPS through layer {layer!r}")
        visiting.add(layer)
        reach: Set[str] = set()
        for dep in graph[layer]:
            if dep not in graph:
                raise LayeringError(
                    f"layer {layer!r} depends on unknown layer {dep!r}"
                )
            reach.add(dep)
            reach.update(visit(dep))
        visiting.discard(layer)
        resolved[layer] = frozenset(reach)
        return resolved[layer]

    for name in graph:
        visit(name)
    return resolved


_ALLOWED: Dict[str, FrozenSet[str]] = _closure(LAYER_DEPS)


def allowed_imports(layer: str) -> FrozenSet[str]:
    """All layers ``layer`` may import (direct dependencies plus transitive)."""
    if layer == APP_LAYER:
        return frozenset(LAYER_DEPS)
    try:
        return _ALLOWED[layer]
    except KeyError:
        raise LayeringError(f"unknown layer {layer!r}") from None


def layer_of(module: str) -> Optional[str]:
    """Layer of a dotted module path, or ``None`` if it is not part of ``repro``.

    Accepts absolute names (``repro.camera.sensor``) and package-relative ones
    (``camera.sensor`` or just ``camera``).
    """
    parts = module.split(".")
    if parts[0] == "repro":
        parts = parts[1:]
    if not parts or not parts[0]:
        return APP_LAYER  # the package root itself
    head = parts[0]
    if head in LAYER_DEPS:
        return head
    return _TOP_LEVEL_MODULES.get(head)


def is_import_allowed(importer: str, imported: str) -> bool:
    """May layer ``importer`` import layer ``imported``?"""
    if importer == APP_LAYER or importer == imported:
        return True
    return imported in allowed_imports(importer)
