"""Drive lint rules over sources, files, and whole trees; format reports."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ToolingError
from repro.tooling.findings import Finding, apply_pragmas, parse_pragmas
from repro.tooling.rules import ALL_RULES, ModuleContext, Rule

#: Rule id used for files that do not parse at all.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class LintReport:
    """Outcome of linting a set of files."""

    findings: Tuple[Finding, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def format(self) -> str:
        return format_report(self.findings, self.files_checked)


def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name for a file under a ``repro`` package tree.

    Keeps the ``__init__`` component (``repro.camera.__init__``) so relative
    imports resolve against the right package.  Returns ``""`` when the path
    does not contain a ``repro`` component (e.g. scratch fixture files).
    """
    parts = Path(path).with_suffix("").parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return ""
    return ".".join(parts[start:])


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted, pragma-filtered findings."""
    path = str(path)
    if module is None:
        module = module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                rule_id=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = ModuleContext(path=path, module=module, tree=tree, source=source)
    findings: List[Finding] = []
    for rule in ALL_RULES if rules is None else rules:
        findings.extend(rule.check(context))
    return sorted(apply_pragmas(findings, parse_pragmas(source)))


def lint_file(
    path: Union[str, Path], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ToolingError(f"cannot read {file_path}: {exc}") from exc
    return lint_source(source, path=file_path, rules=rules)


def lint_tree(
    root: Union[str, Path], rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint every ``*.py`` file under ``root`` (or a single file)."""
    root_path = Path(root)
    if root_path.is_file():
        files = [root_path]
    elif root_path.is_dir():
        files = sorted(p for p in root_path.rglob("*.py") if p.is_file())
    else:
        raise ToolingError(f"lint target does not exist: {root_path}")
    findings: List[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules))
    return LintReport(findings=tuple(sorted(findings)), files_checked=len(files))


def format_report(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report: one ``file:line rule-id message`` line per finding."""
    lines = [finding.format() for finding in findings]
    noun = "file" if files_checked == 1 else "files"
    if not findings:
        lines.append(f"reprolint: {files_checked} {noun} checked, no violations")
    else:
        count = len(findings)
        lines.append(
            f"reprolint: {count} violation{'s' if count != 1 else ''}"
            f" in {files_checked} {noun}"
        )
    return "\n".join(lines)
