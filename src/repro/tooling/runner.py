"""Drive lint rules over sources, files, and whole trees; format reports.

File-level linting is memoized through the content-hash keyed
:class:`~repro.tooling.project.AnalysisCache`: ``lint_file``/``lint_tree``
default to the shared process-wide cache, so the repo-wide pytest gate and
repeated CLI runs inside one process re-parse only files whose bytes
changed.  Pass ``cache=AnalysisCache()`` for isolation or ``cache=False``
semantics via a fresh instance.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ToolingError
from repro.tooling.findings import Finding, apply_pragmas, parse_pragmas
from repro.tooling.project import (
    AnalysisCache,
    content_hash,
    module_name_for,
    shared_cache,
)
from repro.tooling.rules import ALL_RULES, ModuleContext, Rule

__all__ = [
    "LintReport",
    "SYNTAX_ERROR_RULE",
    "format_report",
    "lint_file",
    "lint_source",
    "lint_tree",
    "module_name_for",
]

#: Rule id used for files that do not parse at all.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class LintReport:
    """Outcome of linting a set of files."""

    findings: Tuple[Finding, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def format(self) -> str:
        return format_report(self.findings, self.files_checked)


def _rules_signature(rules: Optional[Sequence[Rule]]) -> str:
    """Cache-key component identifying which rule set produced the findings."""
    if rules is None:
        return "<all>"
    return ",".join(sorted(rule.rule_id for rule in rules))


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted, pragma-filtered findings.

    Only per-file rules (``scope == "file"``) run here; whole-program
    contract rules need a :class:`~repro.tooling.project.Project` and are
    driven by :func:`repro.tooling.reports.run_analysis`.
    """
    path = str(path)
    if module is None:
        module = module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                rule_id=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = ModuleContext(path=path, module=module, tree=tree, source=source)
    findings: List[Finding] = []
    for rule in ALL_RULES if rules is None else rules:
        if getattr(rule, "scope", "file") != "file":
            continue
        findings.extend(rule.check(context))
    return sorted(apply_pragmas(findings, parse_pragmas(source)))


def lint_file(
    path: Union[str, Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[AnalysisCache] = None,
) -> List[Finding]:
    """Lint one file on disk, memoized on its content hash."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ToolingError(f"cannot read {file_path}: {exc}") from exc
    if cache is None:
        cache = shared_cache()
    digest = content_hash(source)
    signature = _rules_signature(rules)
    cached = cache.findings(str(file_path), digest, signature)
    if cached is not None:
        return list(cached)
    findings = lint_source(source, path=file_path, rules=rules)
    cache.store_findings(str(file_path), digest, findings, signature)
    return findings


def lint_tree(
    root: Union[str, Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[AnalysisCache] = None,
) -> LintReport:
    """Lint every ``*.py`` file under ``root`` (or a single file)."""
    root_path = Path(root)
    if root_path.is_file():
        files = [root_path]
    elif root_path.is_dir():
        files = sorted(p for p in root_path.rglob("*.py") if p.is_file())
    else:
        raise ToolingError(f"lint target does not exist: {root_path}")
    findings: List[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules, cache=cache))
    return LintReport(findings=tuple(sorted(findings)), files_checked=len(files))


def format_report(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report: one ``file:line rule-id message`` line per finding."""
    lines = [finding.format() for finding in findings]
    noun = "file" if files_checked == 1 else "files"
    if not findings:
        lines.append(f"reprolint: {files_checked} {noun} checked, no violations")
    else:
        count = len(findings)
        lines.append(
            f"reprolint: {count} violation{'s' if count != 1 else ''}"
            f" in {files_checked} {noun}"
        )
    return "\n".join(lines)
