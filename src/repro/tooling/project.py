"""Whole-program symbol/import/call graph over the ``repro`` package.

The per-file rules of :mod:`repro.tooling.rules` can only see one module at
a time, but the contracts that carry the reproduction's claims are
*cross-module*: a ``link`` helper calling a ``util`` function that reads the
wall clock breaks determinism two hops away from the deterministic layer,
and a span name is only valid if ``repro.obs.schema`` declares it.  This
module extracts one :class:`ModuleSummary` of static facts per file —
imports, functions and their resolved call targets, classes and bases,
``raise`` sites, observability name references, executor-boundary payloads —
and assembles them into a :class:`Project` the contract rules
(:mod:`repro.tooling.contracts`) reason over.

Summaries are pure functions of the file's text, so they are memoized in an
:class:`AnalysisCache` keyed by ``(path, sha256(source))``.  Re-analyzing an
unchanged tree parses nothing; the repo-wide pytest gate and repeated CLI
runs stay fast (``tests/core/test_lint_clean.py`` asserts the second run is
cache-warm, ``tests/tooling/test_project.py`` pins the speedup bound).
"""

from __future__ import annotations

import ast
import builtins
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ToolingError
from repro.tooling.findings import Finding, parse_pragmas
from repro.tooling.layers import layer_of

#: Bump when the extraction below changes shape or semantics, so stale
#: in-memory cache entries from an older analyzer can never be replayed.
SUMMARY_VERSION = 1

#: Methods whose string argument names a span or metric (the obs contract).
OBS_METHODS = frozenset({"span", "counter", "gauge", "histogram"})

#: Functions whose callable arguments cross the process-pool boundary.
EXECUTOR_BOUNDARY_FUNCS = frozenset(
    {
        "repro.perf.executor.run_specs",
        "repro.perf.executor.make_runner",
        "repro.perf.runtime.run_specs_resilient",
        "repro.link.simulator.execute_specs",
        "repro.link.simulator.sweep_specs",
    }
)

#: Keyword arguments that inject callables into the sweep machinery; a
#: lambda here may end up pickled toward a worker process.
EXECUTOR_BOUNDARY_KWARGS = frozenset({"runner", "planner"})

#: Method names that submit work to a pool regardless of the receiver.
EXECUTOR_BOUNDARY_METHODS = frozenset({"submit"})


def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name for a file under a ``repro`` package tree.

    Keeps the ``__init__`` component (``repro.camera.__init__``) so relative
    imports resolve against the right package.  Returns ``""`` when the path
    does not contain a ``repro`` component (e.g. scratch fixture files).
    """
    parts = Path(path).with_suffix("").parts
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return ""
    return ".".join(parts[start:])


def normalize_module(module: str) -> str:
    """Importable name of a module: ``repro.x.__init__`` -> ``repro.x``."""
    if module.endswith(".__init__"):
        return module[: -len(".__init__")]
    return module


def resolve_relative_base(module: str, level: int) -> Optional[str]:
    """Package a ``level``-deep relative import resolves against, if known."""
    if not module:
        return None
    parts = module.split(".")
    # The module's own package is parts[:-1]; each extra level climbs once more.
    cut = len(parts) - level
    if cut < 1:
        return None
    return ".".join(parts[:cut])


def collect_aliases(tree: ast.Module, module: str = "") -> Dict[str, str]:
    """Map local names to the dotted module/object paths they were imported as.

    Relative imports resolve against ``module`` when it is known (the dotted
    name including a trailing ``__init__`` component), so package-boundary
    imports like ``from ..rx import receiver`` land on absolute targets.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    # ``import numpy.random`` binds the top-level name only.
                    head = item.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module
            else:
                base = resolve_relative_base(module, node.level)
                if base is None:
                    continue
                if node.module:
                    base = f"{base}.{node.module}"
            if not base:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{base}.{item.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an ``a.b.c`` expression to its imported dotted path, if any."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    parts[0] = aliases.get(parts[0], parts[0])
    return ".".join(parts)


@dataclass(frozen=True)
class CallSite:
    """One call inside a function body: resolved target and location."""

    target: str
    lineno: int


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method: where it lives and what it calls."""

    qualname: str
    module: str
    lineno: int
    #: Defined inside another function (closures are not picklable).
    nested: bool
    calls: Tuple[CallSite, ...]


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field: resolved annotation names and default shape."""

    name: str
    lineno: int
    #: Dotted names appearing anywhere in the annotation, alias-resolved.
    annotation_names: Tuple[str, ...]
    #: ``"lambda"`` when the default is a lambda literal, else ``None``.
    default_kind: Optional[str]


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases (alias-resolved) and dataclass fields."""

    qualname: str
    module: str
    lineno: int
    nested: bool
    bases: Tuple[str, ...]
    is_dataclass: bool
    fields: Tuple[FieldInfo, ...]


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise``: the resolved exception name, or ``None`` for re-raise."""

    lineno: int
    #: Dotted name of the raised callable/class; bare builtin names stay
    #: bare (``"RuntimeError"``); ``None`` means a bare ``raise`` or a
    #: re-raised local variable — both always legal.
    target: Optional[str]


@dataclass(frozen=True)
class ObsCall:
    """One ``.span()/.counter()/.gauge()/.histogram()`` name reference."""

    lineno: int
    method: str
    #: Literal name value, when resolvable inside the module.
    value: Optional[str]
    #: Dotted schema constant the name resolved through, when imported.
    const: Optional[str]


@dataclass(frozen=True)
class PayloadRef:
    """One callable argument crossing an executor boundary."""

    lineno: int
    boundary: str
    #: ``"lambda"`` | ``"nested-function"`` | ``"name"``.
    kind: str
    target: Optional[str] = None


@dataclass
class ModuleSummary:
    """Every static fact the contract rules need about one module."""

    path: str
    module: str
    layer: Optional[str]
    content_hash: str
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Tuple[FunctionInfo, ...] = ()
    classes: Tuple[ClassInfo, ...] = ()
    raises: Tuple[RaiseSite, ...] = ()
    obs_calls: Tuple[ObsCall, ...] = ()
    payloads: Tuple[PayloadRef, ...] = ()
    #: Line numbers iterating directly over a set literal/constructor.
    set_iterations: Tuple[int, ...] = ()
    #: Module-level ``NAME = "literal"`` assignments -> (value, lineno).
    string_constants: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)


def content_hash(source: str) -> str:
    """The cache key component: sha256 of the file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def _is_setish(node: ast.AST) -> bool:
    """Does this expression build a set (whose iteration order floats)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _local_def_names(body: Sequence[ast.stmt]) -> FrozenSet[str]:
    """Names of every ``def`` at any depth inside a function body."""
    names: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
    return frozenset(names)


class _ModuleWalker:
    """Single-pass recursive extraction of one module's summary facts."""

    def __init__(self, module: str, aliases: Dict[str, str]) -> None:
        self.module = normalize_module(module) if module else ""
        self.aliases = aliases
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassInfo] = []
        self.raises: List[RaiseSite] = []
        self.obs_calls: List[ObsCall] = []
        self.payloads: List[PayloadRef] = []
        self.set_iterations: List[int] = []
        self.string_constants: Dict[str, Tuple[str, int]] = {}
        #: Module-top-level symbols (functions/classes), for bare-name
        #: resolution within the module.
        self.top_level: Dict[str, str] = {}

    # -- name resolution ---------------------------------------------------

    def _qual(self, scope: Tuple[str, ...], name: str) -> str:
        base = self.module or "<file>"
        return ".".join((base,) + scope + (name,))

    def resolve_ref(self, node: ast.AST) -> Optional[str]:
        """Best-effort dotted name of an expression referencing a symbol."""
        if isinstance(node, ast.Name):
            if node.id in self.aliases:
                return self.aliases[node.id]
            if node.id in self.top_level:
                return self.top_level[node.id]
            return node.id
        return resolve_dotted(node, self.aliases)

    # -- extraction --------------------------------------------------------

    def walk_module(self, tree: ast.Module) -> None:
        # Pre-pass: module-level symbol table, so forward references to
        # later-defined functions/classes still resolve.
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.top_level[node.name] = self._qual((), node.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    self.string_constants[target.id] = (
                        node.value.value,
                        node.lineno,
                    )
        # Module-level statements form a pseudo-function "<module>" so
        # import-time calls participate in the determinism analysis.
        self._walk_callable(
            body=tree.body,
            scope=(),
            name="<module>",
            lineno=1,
            nested=False,
            in_function=False,
        )

    def _walk_callable(
        self,
        body: Sequence[ast.stmt],
        scope: Tuple[str, ...],
        name: str,
        lineno: int,
        nested: bool,
        in_function: bool,
    ) -> None:
        """Record one function (or the module body) and recurse into defs."""
        calls: List[CallSite] = []
        # Inside a real function, every def at any depth is a closure;
        # at module level the defs are importable top-level callables.
        local_defs = _local_def_names(body) if in_function else frozenset()
        inner_scope = scope + (name,) if name != "<module>" else scope
        for stmt in body:
            self._visit(stmt, inner_scope, calls, local_defs, in_function)
        self.functions.append(
            FunctionInfo(
                qualname=self._qual(scope, name),
                module=self.module,
                lineno=lineno,
                nested=nested,
                calls=tuple(calls),
            )
        )

    def _visit(
        self,
        node: ast.AST,
        scope: Tuple[str, ...],
        calls: List[CallSite],
        local_defs: FrozenSet[str],
        in_function: bool,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_callable(
                body=node.body,
                scope=scope,
                name=node.name,
                lineno=node.lineno,
                nested=in_function,
                in_function=True,
            )
            return
        if isinstance(node, ast.ClassDef):
            self._record_class(node, scope, nested=in_function)
            class_scope = scope + (node.name,)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Methods of a class are reachable as Class.method —
                    # nested only if the class itself is function-local.
                    self._walk_callable(
                        body=stmt.body,
                        scope=class_scope,
                        name=stmt.name,
                        lineno=stmt.lineno,
                        nested=in_function,
                        in_function=True,
                    )
                else:
                    self._visit(stmt, class_scope, calls, local_defs, in_function)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node)
        elif isinstance(node, ast.Call):
            self._record_call(node, calls, local_defs)
        elif isinstance(node, ast.For) and _is_setish(node.iter):
            self.set_iterations.append(node.iter.lineno)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                if _is_setish(gen.iter):
                    self.set_iterations.append(gen.iter.lineno)
        for child in ast.iter_child_nodes(node):
            self._visit(child, scope, calls, local_defs, in_function)

    def _record_class(
        self, node: ast.ClassDef, scope: Tuple[str, ...], nested: bool
    ) -> None:
        bases = tuple(
            dotted
            for dotted in (self.resolve_ref(base) for base in node.bases)
            if dotted is not None
        )
        is_dataclass = False
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if self.resolve_ref(target) in {"dataclass", "dataclasses.dataclass"}:
                is_dataclass = True
        fields: List[FieldInfo] = []
        if is_dataclass:
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                names = [
                    self.resolve_ref(sub)
                    for sub in ast.walk(stmt.annotation)
                    if isinstance(sub, ast.Name)
                ]
                fields.append(
                    FieldInfo(
                        name=stmt.target.id,
                        lineno=stmt.lineno,
                        annotation_names=tuple(n for n in names if n),
                        default_kind=(
                            "lambda"
                            if isinstance(stmt.value, ast.Lambda)
                            else None
                        ),
                    )
                )
        self.classes.append(
            ClassInfo(
                qualname=self._qual(scope, node.name),
                module=self.module,
                lineno=node.lineno,
                nested=nested,
                bases=bases,
                is_dataclass=is_dataclass,
                fields=tuple(fields),
            )
        )

    def _record_raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is None:
            self.raises.append(RaiseSite(lineno=node.lineno, target=None))
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        target: Optional[str] = None
        if isinstance(exc, ast.Name):
            if exc.id in self.aliases:
                target = self.aliases[exc.id]
            elif exc.id in self.top_level:
                target = self.top_level[exc.id]
            elif _is_builtin_exception(exc.id):
                target = exc.id
            # else: a local variable — a re-raise, always legal (None).
        elif isinstance(exc, ast.Attribute):
            target = resolve_dotted(exc, self.aliases)
        self.raises.append(RaiseSite(lineno=node.lineno, target=target))

    def _record_call(
        self, node: ast.Call, calls: List[CallSite], local_defs: FrozenSet[str]
    ) -> None:
        target = self.resolve_ref(node.func)
        if target is not None:
            calls.append(CallSite(target=target, lineno=node.lineno))
        self._record_obs_call(node)
        self._record_payloads(node, target, local_defs)

    def _record_obs_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in OBS_METHODS:
            return
        arg: Optional[ast.AST] = node.args[0] if node.args else None
        if arg is None:
            for kw in node.keywords:
                if kw.arg == "name":
                    arg = kw.value
        if arg is None:
            return
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self.obs_calls.append(
                ObsCall(
                    lineno=node.lineno, method=method, value=arg.value, const=None
                )
            )
            return
        if not isinstance(arg, (ast.Name, ast.Attribute)):
            return  # dynamic; the runtime registry still validates it
        dotted = self.resolve_ref(arg)
        if dotted is not None and dotted.startswith("repro.obs.schema."):
            self.obs_calls.append(
                ObsCall(lineno=node.lineno, method=method, value=None, const=dotted)
            )
        elif isinstance(arg, ast.Name) and arg.id in self.string_constants:
            value, _ = self.string_constants[arg.id]
            self.obs_calls.append(
                ObsCall(lineno=node.lineno, method=method, value=value, const=None)
            )

    def _record_payloads(
        self,
        node: ast.Call,
        target: Optional[str],
        local_defs: FrozenSet[str],
    ) -> None:
        boundary: Optional[str] = None
        inspect: List[ast.AST] = []
        if target in EXECUTOR_BOUNDARY_FUNCS:
            boundary = target
            inspect.extend(node.args)
            inspect.extend(kw.value for kw in node.keywords if kw.arg)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in EXECUTOR_BOUNDARY_METHODS
            and node.args
        ):
            boundary = f"<pool>.{node.func.attr}"
            inspect.append(node.args[0])
        for kw in node.keywords:
            if kw.arg in EXECUTOR_BOUNDARY_KWARGS:
                inspect.append(kw.value)
                if boundary is None:
                    boundary = target or f"<call>({kw.arg}=...)"
        if boundary is None:
            return
        seen_nodes: Set[int] = set()
        for arg in inspect:
            if id(arg) in seen_nodes:
                continue
            seen_nodes.add(id(arg))
            if isinstance(arg, ast.Lambda):
                self.payloads.append(
                    PayloadRef(lineno=arg.lineno, boundary=boundary, kind="lambda")
                )
            elif isinstance(arg, ast.Name):
                if arg.id in local_defs:
                    self.payloads.append(
                        PayloadRef(
                            lineno=arg.lineno,
                            boundary=boundary,
                            kind="nested-function",
                            target=arg.id,
                        )
                    )
                else:
                    dotted = self.resolve_ref(arg)
                    if dotted and "." in dotted:
                        self.payloads.append(
                            PayloadRef(
                                lineno=arg.lineno,
                                boundary=boundary,
                                kind="name",
                                target=dotted,
                            )
                        )


def summarize_module(
    path: Union[str, Path],
    source: str,
    module: Optional[str] = None,
) -> ModuleSummary:
    """Extract one module's :class:`ModuleSummary` (parses the source)."""
    path = str(path)
    if module is None:
        module = module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ToolingError(f"cannot summarize {path}: {exc.msg}") from exc
    aliases = collect_aliases(tree, module)
    walker = _ModuleWalker(module, aliases)
    walker.walk_module(tree)
    return ModuleSummary(
        path=path,
        module=walker.module,
        layer=layer_of(module) if module else None,
        content_hash=content_hash(source),
        aliases=aliases,
        functions=tuple(walker.functions),
        classes=tuple(walker.classes),
        raises=tuple(walker.raises),
        obs_calls=tuple(walker.obs_calls),
        payloads=tuple(walker.payloads),
        set_iterations=tuple(walker.set_iterations),
        string_constants=walker.string_constants,
        pragmas={
            lineno: frozenset(rules)
            for lineno, rules in parse_pragmas(source).items()
        },
    )


class AnalysisCache:
    """Content-hash keyed memo of per-file summaries and lint findings.

    Both maps key on ``(path, sha256(source), version)``: the hash makes a
    stale entry impossible (any edit changes the key), the path keeps
    findings — which embed their location — from leaking between identical
    files at different paths, and the version invalidates everything when
    the analyzer itself changes.  Purely in-memory: one cache serves one
    process (the pytest gate, one CLI invocation), which is where repeated
    re-analysis actually happens.
    """

    def __init__(self) -> None:
        self._summaries: Dict[Tuple[str, str, int], ModuleSummary] = {}
        self._findings: Dict[
            Tuple[str, str, str, int], Tuple[Finding, ...]
        ] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(path: str, digest: str) -> Tuple[str, str, int]:
        return (str(path), digest, SUMMARY_VERSION)

    def summary(self, path: str, source: str) -> ModuleSummary:
        """Memoized :func:`summarize_module`."""
        key = self._key(path, content_hash(source))
        cached = self._summaries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        summary = summarize_module(path, source)
        self._summaries[key] = summary
        return summary

    def findings(
        self, path: str, digest: str, signature: str = "<all>"
    ) -> Optional[Tuple[Finding, ...]]:
        """Cached per-file findings for this content + rule set, if present.

        ``signature`` identifies the rule subset that produced the findings
        (see ``runner._rules_signature``), so a ``--rules`` invocation can
        never replay findings computed for a different rule set.
        """
        cached = self._findings.get(
            (str(path), digest, signature, SUMMARY_VERSION)
        )
        if cached is not None:
            self.hits += 1
        else:
            self.misses += 1
        return cached

    def store_findings(
        self,
        path: str,
        digest: str,
        findings: Sequence[Finding],
        signature: str = "<all>",
    ) -> None:
        self._findings[(str(path), digest, signature, SUMMARY_VERSION)] = tuple(
            findings
        )

    def clear(self) -> None:
        self._summaries.clear()
        self._findings.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide cache the runner and CLI default to.
_SHARED_CACHE = AnalysisCache()


def shared_cache() -> AnalysisCache:
    """The default process-wide :class:`AnalysisCache`."""
    return _SHARED_CACHE


class Project:
    """The assembled whole-program view: summaries plus symbol indexes."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        #: Keyed by normalized module name (path when outside a repro tree).
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module or summary.path] = summary
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for summary in summaries:
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
            for cls in summary.classes:
                self.classes[cls.qualname] = cls

    def resolve(self, dotted: Optional[str], _depth: int = 0) -> Optional[str]:
        """Follow package re-exports to a defining qualname.

        ``repro.faults.FaultInjector`` resolves through the aliases of
        ``repro/faults/__init__.py`` to ``repro.faults.base.FaultInjector``.
        Unknown names come back unchanged.
        """
        if dotted is None or _depth > 8:
            return dotted
        if dotted in self.functions or dotted in self.classes:
            return dotted
        head, _, tail = dotted.rpartition(".")
        summary = self.modules.get(head)
        if summary is not None and tail in summary.aliases:
            resolved = summary.aliases[tail]
            if resolved != dotted:
                return self.resolve(resolved, _depth + 1)
        return dotted

    def function(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        resolved = self.resolve(dotted)
        return self.functions.get(resolved) if resolved else None

    def class_info(self, dotted: Optional[str]) -> Optional[ClassInfo]:
        resolved = self.resolve(dotted)
        return self.classes.get(resolved) if resolved else None


def project_files(roots: Sequence[Union[str, Path]]) -> List[Path]:
    """Every ``*.py`` file under the given roots, sorted and de-duplicated."""
    files: List[Path] = []
    seen = set()
    for root in roots:
        root_path = Path(root)
        if root_path.is_file():
            candidates = [root_path]
        elif root_path.is_dir():
            candidates = sorted(p for p in root_path.rglob("*.py") if p.is_file())
        else:
            raise ToolingError(f"analysis target does not exist: {root_path}")
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def build_project(
    roots: Union[str, Path, Sequence[Union[str, Path]]],
    cache: Optional[AnalysisCache] = None,
) -> Project:
    """Summarize every file under ``roots`` into one :class:`Project`.

    ``cache=None`` uses the shared process-wide cache; pass a fresh
    :class:`AnalysisCache` for isolation (tests) or ``clear()`` it to force
    a cold build.
    """
    if isinstance(roots, (str, Path)):
        roots = [roots]
    if cache is None:
        cache = shared_cache()
    summaries = []
    for file_path in project_files(roots):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ToolingError(f"cannot read {file_path}: {exc}") from exc
        try:
            summaries.append(cache.summary(str(file_path), source))
        except ToolingError:
            # Unparseable files are reported by the per-file linter as
            # syntax-error findings; the graph simply omits them.
            continue
    return Project(summaries)
