"""Named lint rules, each an independently testable AST check.

Every rule yields :class:`~repro.tooling.findings.Finding` objects from its
``check`` method.  Rules never print and never mutate the tree; the runner
(:mod:`repro.tooling.runner`) owns file IO, pragma filtering, and reporting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.exceptions import ToolingError
from repro.tooling.contracts import CONTRACT_RULES, ContractRule
from repro.tooling.findings import Finding
from repro.tooling.layers import (
    APP_LAYER,
    allowed_imports,
    is_import_allowed,
    layer_of,
)
from repro.tooling.project import (
    collect_aliases,
    resolve_dotted,
    resolve_relative_base,
)

#: The one module allowed to talk to ``numpy.random`` / ``random`` directly.
RNG_MODULE = "repro.util.rng"

#: ``from numpy.random import <name>`` stays legal for these (typing only).
_RNG_TYPE_NAMES = {"Generator", "BitGenerator", "SeedSequence"}

#: Builtin exception types library code must not raise raw.
_RAW_RAISE_NAMES = {"ValueError", "RuntimeError", "Exception"}

#: Calls producing a fresh mutable object, illegal as argument defaults.
_MUTABLE_FACTORY_NAMES = {"list", "dict", "set", "bytearray"}


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str
    module: str
    tree: ast.Module
    source: str
    layer: Optional[str] = None
    aliases: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer is None and self.module:
            self.layer = layer_of(self.module)
        if not self.aliases:
            self.aliases = collect_aliases(self.tree, self.module)

    @property
    def is_library(self) -> bool:
        """Application shells (``cli``, ``__main__``) are exempt from library rules."""
        return self.layer != APP_LAYER

    @property
    def is_rng_module(self) -> bool:
        return self.module == RNG_MODULE or self.path.replace("\\", "/").endswith(
            "repro/util/rng.py"
        )


class Rule:
    """Base class: subclasses set ``rule_id``/``description`` and ``check``.

    Per-file rules carry ``scope = "file"``; whole-program rules
    (:mod:`repro.tooling.contracts`) carry ``scope = "project"`` and are
    skipped by the per-file runner.
    """

    rule_id: str = ""
    description: str = ""
    scope: str = "file"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
        )


class RngDirectCallRule(Rule):
    """All randomness flows through ``repro.util.rng`` — nowhere else."""

    rule_id = "rng-direct-call"
    description = (
        "no numpy.random/<stdlib random> calls or imports outside repro/util/rng.py;"
        " accept an rng parameter and route through make_rng/derive_rng"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.is_rng_module:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        yield self.finding(
                            context, node,
                            "import of stdlib 'random'; use repro.util.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield self.finding(
                        context, node,
                        "import from stdlib 'random'; use repro.util.rng instead",
                    )
                elif node.module == "numpy.random":
                    banned = [
                        item.name
                        for item in node.names
                        if item.name not in _RNG_TYPE_NAMES
                    ]
                    if banned:
                        yield self.finding(
                            context, node,
                            f"direct import of numpy.random.{{{', '.join(banned)}}};"
                            " use repro.util.rng (make_rng/derive_rng)",
                        )
            elif isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, context.aliases)
                if dotted is None:
                    continue
                if dotted == "random" or dotted.startswith("random."):
                    yield self.finding(
                        context, node,
                        f"call to stdlib '{dotted}'; use repro.util.rng instead",
                    )
                elif dotted.startswith("numpy.random.") and dotted != (
                    "numpy.random.Generator"  # covered by rng-generator-ctor
                ):
                    yield self.finding(
                        context, node,
                        f"direct call to {dotted.replace('numpy', 'np', 1)};"
                        " route through repro.util.rng (make_rng/derive_rng)",
                    )


class RngGeneratorCtorRule(Rule):
    """``np.random.Generator`` must never be constructed by hand."""

    rule_id = "rng-generator-ctor"
    description = (
        "no direct np.random.Generator(...) construction; generators come from"
        " repro.util.rng.make_rng/derive_rng"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, context.aliases)
            if dotted == "numpy.random.Generator":
                detail = "argless " if not node.args and not node.keywords else ""
                yield self.finding(
                    context, node,
                    f"{detail}np.random.Generator construction;"
                    " use repro.util.rng.make_rng",
                )


class ImportLayeringRule(Rule):
    """Enforce the declared DAG over the optical-chain layers."""

    rule_id = "import-layering"
    description = (
        "intra-repro imports must follow the layering DAG declared in"
        " repro.tooling.layers (e.g. phy may never import rx)"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        importer = context.layer
        if importer is None or importer == APP_LAYER:
            return
        for node in ast.walk(context.tree):
            for target in self._targets(node, context):
                imported = layer_of(target)
                if imported is None:
                    # Only ``from repro import <reexported symbol>`` resolves to
                    # no layer; that is an import of the package root.
                    imported = APP_LAYER
                if not is_import_allowed(importer, imported):
                    allowed = ", ".join(sorted(allowed_imports(importer))) or "nothing"
                    yield self.finding(
                        context, node,
                        f"layer '{importer}' may not import '{target}'"
                        f" (layer '{imported}'); allowed layers: {allowed}",
                    )

    @staticmethod
    def _targets(node: ast.AST, context: ModuleContext) -> Iterator[str]:
        """Dotted repro-module targets named by an import statement."""
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "repro" or item.name.startswith("repro."):
                    yield item.name
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                base = resolve_relative_base(context.module, node.level)
                if base is None:
                    return
                yield f"{base}.{node.module}" if node.module else base
            elif node.module == "repro":
                # ``from repro import X``: X may itself be a subpackage/layer.
                for item in node.names:
                    yield f"repro.{item.name}"
            elif node.module and node.module.startswith("repro."):
                yield node.module


class BareExceptRule(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt and hides bugs."""

    rule_id = "bare-except"
    description = "no bare 'except:'; catch a ColorBarsError subclass or Exception"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    context, node,
                    "bare 'except:'; name the exception type"
                    " (prefer the ColorBarsError hierarchy)",
                )


class RawRaiseRule(Rule):
    """Library errors come from the ``ColorBarsError`` hierarchy."""

    rule_id = "raw-raise"
    description = (
        "library code must not raise raw ValueError/RuntimeError/Exception;"
        " use the ColorBarsError hierarchy or repro.util.validation helpers"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _RAW_RAISE_NAMES:
                yield self.finding(
                    context, node,
                    f"raw 'raise {exc.id}' in library code; raise a"
                    " ColorBarsError subclass or use util.validation",
                )


class MutableDefaultRule(Rule):
    """Mutable argument defaults are shared across calls — a classic trap."""

    rule_id = "mutable-default"
    description = "no mutable default arguments (list/dict/set literals or factories)"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        context, default,
                        f"mutable default argument in '{name}';"
                        " default to None and create inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORY_NAMES
        )


class NoPrintRule(Rule):
    """Library code reports through return values and exceptions, not stdout."""

    rule_id = "no-print"
    description = "no print() in library code (cli/__main__ are exempt)"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library:
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    context, node,
                    "print() in library code; return data or raise instead",
                )


class ModuleDocstringRule(Rule):
    """Every repro module states its purpose up front."""

    rule_id = "module-docstring"
    description = (
        "every repro module must open with a docstring"
        " (empty __init__.py files are exempt)"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.module or not context.tree.body:
            # Outside the repro package, or an empty (marker) module.
            return
        if ast.get_docstring(context.tree) is None:
            yield self.finding(
                context, context.tree.body[0],
                "module has no docstring; open with a summary of its purpose",
            )


#: Any registered rule: per-file (scope "file") or contract (scope "project").
LintRule = Union[Rule, ContractRule]

#: Registry of every rule, in report order: per-file rules first, then the
#: whole-program contract rules (run only under ``--strict``).
ALL_RULES: Tuple[LintRule, ...] = (
    RngDirectCallRule(),
    RngGeneratorCtorRule(),
    ImportLayeringRule(),
    BareExceptRule(),
    RawRaiseRule(),
    MutableDefaultRule(),
    NoPrintRule(),
    ModuleDocstringRule(),
) + CONTRACT_RULES


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> Tuple[LintRule, ...]:
    """Return all rules, or the named subset (unknown names raise)."""
    if rule_ids is None:
        return ALL_RULES
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = sorted(set(rule_ids) - set(by_id))
    if unknown:
        raise ToolingError(
            f"unknown reprolint rule(s): {', '.join(unknown)};"
            f" known rules: {', '.join(sorted(by_id))}"
        )
    return tuple(by_id[rule_id] for rule_id in rule_ids)
