"""Analysis orchestration: baselines, JSON/SARIF output, SARIF validation.

This module sits on top of the per-file runner and the whole-program
contract rules and owns everything about *reporting* them together:

* :class:`Baseline` — a committed ``baseline.json`` of grandfathered
  findings.  Entries match on ``(path-suffix, rule, message)`` rather than
  line numbers, so a baselined finding survives unrelated edits above it but
  dies the moment the offending code changes shape.  Every entry carries a
  human ``reason``; the repo gate asserts reasons are non-empty, so nothing
  gets grandfathered silently.
* :func:`run_analysis` — one entry point combining per-file rules, the
  optional strict contract pass, and baseline suppression into an
  :class:`AnalysisResult`.
* :func:`to_json` / :func:`to_sarif` — machine formats for the CLI; the
  SARIF document targets the 2.1.0 schema consumed by code-scanning UIs.
* :func:`validate_sarif` — a structural validator for the subset of SARIF
  2.1.0 we emit, so CI can assert validity without a jsonschema dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import BaselineError, ToolingError
from repro.tooling.contracts import ContractRule, run_contract_rules
from repro.tooling.findings import Finding
from repro.tooling.project import AnalysisCache, build_project, shared_cache
from repro.tooling.runner import lint_tree

#: Baseline file format version; bump on incompatible shape changes.
BASELINE_VERSION = 1

#: Reason recorded for entries added mechanically by ``--update-baseline``.
PLACEHOLDER_REASON = "TODO: justify this exception or fix the finding"

#: SARIF constants for the emitted document.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "reprolint"
TOOL_VERSION = "2.0.0"


def normalize_path(path: str) -> str:
    """Stable path key: the suffix from the last ``repro/`` component.

    Baselines are committed, but the analyzed tree may live at any absolute
    path (site-packages, a src checkout, CI workspace).  Keying on the
    ``repro/...`` suffix makes entries portable across all of them.
    """
    unified = path.replace("\\", "/")
    marker = "repro/"
    index = unified.rfind(marker)
    if index >= 0:
        return unified[index:]
    return unified


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, matched by (path, rule, message)."""

    rule: str
    path: str
    message: str
    reason: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (normalize_path(self.path), self.rule, self.message)


@dataclass
class Baseline:
    """A set of grandfathered findings loaded from ``baseline.json``."""

    entries: Tuple[BaselineEntry, ...] = ()
    source: Optional[str] = None

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls(entries=(), source=str(file_path))
        try:
            raw = json.loads(file_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot read baseline {file_path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {file_path} has unsupported shape/version;"
                f" expected {{'version': {BASELINE_VERSION}, 'entries': [...]}}"
            )
        entries = []
        for item in raw.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=item["rule"],
                        path=item["path"],
                        message=item["message"],
                        reason=item.get("reason", ""),
                    )
                )
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"baseline {file_path} entry missing field: {exc}"
                ) from exc
        return cls(entries=tuple(entries), source=str(file_path))

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    "reason": entry.reason,
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (kept, suppressed); also return stale entries."""
        by_key = {entry.key: entry for entry in self.entries}
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        matched = set()
        for finding in findings:
            key = (normalize_path(finding.path), finding.rule_id, finding.message)
            if key in by_key:
                matched.add(key)
                suppressed.append(finding)
            else:
                kept.append(finding)
        stale = [entry for entry in self.entries if entry.key not in matched]
        return kept, suppressed, stale


def default_baseline_path() -> Path:
    """The committed baseline shipped inside the package."""
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass
class AnalysisResult:
    """Combined per-file + contract analysis, after baseline suppression."""

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed: Tuple[Finding, ...] = ()
    stale_baseline_entries: Tuple[BaselineEntry, ...] = ()
    #: Pre-suppression findings, for ``--update-baseline``.
    raw_findings: Tuple[Finding, ...] = ()
    strict: bool = False
    rule_descriptions: Dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings


def run_analysis(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Any]] = None,
    strict: bool = False,
    baseline: Optional[Baseline] = None,
    cache: Optional[AnalysisCache] = None,
) -> AnalysisResult:
    """Lint ``paths`` with per-file rules, plus contract rules when strict.

    ``rules`` may mix per-file rules and contract rules (as ``get_rules``
    returns them); each pass picks out its own scope.  Baseline suppression
    applies to the combined finding set.
    """
    if cache is None:
        cache = shared_cache()
    file_rules = None
    contract_rules: Optional[List[ContractRule]] = None
    if rules is not None:
        file_rules = [r for r in rules if getattr(r, "scope", "file") == "file"]
        contract_rules = [
            r for r in rules if getattr(r, "scope", "file") == "project"
        ]
    findings: List[Finding] = []
    files_checked = 0
    descriptions: Dict[str, str] = {}
    for root in paths:
        report = lint_tree(root, rules=file_rules, cache=cache)
        findings.extend(report.findings)
        files_checked += report.files_checked
    if strict:
        project = build_project(list(paths), cache=cache)
        findings.extend(run_contract_rules(project, rules=contract_rules))
    for rule in rules if rules is not None else _registered_rules():
        descriptions[rule.rule_id] = rule.description
    raw = tuple(sorted(findings))
    if baseline is not None:
        kept, suppressed, stale = baseline.partition(raw)
    else:
        kept, suppressed, stale = list(raw), [], []
    return AnalysisResult(
        findings=tuple(sorted(kept)),
        files_checked=files_checked,
        suppressed=tuple(sorted(suppressed)),
        stale_baseline_entries=tuple(stale),
        raw_findings=raw,
        strict=strict,
        rule_descriptions=descriptions,
    )


def _registered_rules() -> Sequence[Any]:
    # Imported lazily: rules.py registers the contract rules, and importing
    # it at module scope would cycle through reports -> rules -> contracts.
    from repro.tooling.rules import ALL_RULES

    return ALL_RULES


def updated_baseline(result: AnalysisResult, previous: Baseline) -> Baseline:
    """A new baseline covering every current raw finding.

    Entries that still match keep their human-written reason; genuinely new
    entries get :data:`PLACEHOLDER_REASON` so review can't miss them.
    """
    by_key = {entry.key: entry for entry in previous.entries}
    entries = []
    for finding in result.raw_findings:
        path = normalize_path(finding.path)
        key = (path, finding.rule_id, finding.message)
        old = by_key.get(key)
        entries.append(
            BaselineEntry(
                rule=finding.rule_id,
                path=path,
                message=finding.message,
                reason=old.reason if old is not None else PLACEHOLDER_REASON,
            )
        )
    return Baseline(entries=tuple(entries), source=previous.source)


def to_json(result: AnalysisResult) -> str:
    """Machine-readable report: findings plus baseline bookkeeping."""
    payload = {
        "version": 1,
        "tool": TOOL_NAME,
        "strict": result.strict,
        "files_checked": result.files_checked,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in result.findings
        ],
        "suppressed": len(result.suppressed),
        "stale_baseline_entries": [
            {"rule": entry.rule, "path": entry.path, "message": entry.message}
            for entry in result.stale_baseline_entries
        ],
    }
    return json.dumps(payload, indent=2)


def to_sarif(result: AnalysisResult) -> str:
    """Render findings as a SARIF 2.1.0 document (one run, one driver)."""
    rule_ids = sorted(
        set(result.rule_descriptions)
        | {finding.rule_id for finding in result.findings}
    )
    sarif_rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": result.rule_descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": index_of[finding.rule_id],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": normalize_path(finding.path)
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://example.invalid/colorbars/reprolint"
                        ),
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ToolingError(f"invalid SARIF: {message}")


def validate_sarif(document: Union[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Structurally validate a SARIF 2.1.0 document; returns the parsed dict.

    Checks the properties the 2.1.0 schema marks required on the objects we
    emit (sarifLog: version+runs; run: tool; toolComponent: name; result:
    message; plus the location shapes code-scanning consumers index on).
    Raises :class:`~repro.exceptions.ToolingError` with the first problem.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except ValueError as exc:
            raise ToolingError(f"invalid SARIF: not JSON ({exc})") from exc
    _require(isinstance(document, dict), "top level must be an object")
    _require(
        document.get("version") == SARIF_VERSION,
        f"version must be '{SARIF_VERSION}'",
    )
    runs = document.get("runs")
    _require(isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array")
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        _require(isinstance(run, dict), f"{where} must be an object")
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        _require(isinstance(driver, dict), f"{where}.tool.driver is required")
        _require(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        declared_rules = driver.get("rules", [])
        _require(isinstance(declared_rules, list), f"{where} driver.rules must be an array")
        rule_ids = set()
        for rule in declared_rules:
            _require(
                isinstance(rule, dict) and isinstance(rule.get("id"), str),
                f"{where} driver rules need string ids",
            )
            rule_ids.add(rule["id"])
        results = run.get("results", [])
        _require(isinstance(results, list), f"{where}.results must be an array")
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            _require(isinstance(result, dict), f"{rwhere} must be an object")
            message = result.get("message")
            _require(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            rule_id = result.get("ruleId")
            if rule_id is not None:
                _require(isinstance(rule_id, str), f"{rwhere}.ruleId must be a string")
                if rule_ids:
                    _require(
                        rule_id in rule_ids,
                        f"{rwhere}.ruleId '{rule_id}' not declared by the driver",
                    )
            for loc_index, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                _require(isinstance(location, dict), f"{lwhere} must be an object")
                physical = location.get("physicalLocation")
                if physical is None:
                    continue
                _require(isinstance(physical, dict), f"{lwhere}.physicalLocation must be an object")
                artifact = physical.get("artifactLocation")
                if artifact is not None:
                    _require(
                        isinstance(artifact, dict)
                        and isinstance(artifact.get("uri"), str),
                        f"{lwhere} artifactLocation.uri must be a string",
                    )
                region = physical.get("region")
                if region is not None:
                    _require(isinstance(region, dict), f"{lwhere}.region must be an object")
                    start_line = region.get("startLine")
                    if start_line is not None:
                        _require(
                            isinstance(start_line, int) and start_line >= 1,
                            f"{lwhere}.region.startLine must be a positive integer",
                        )
    return document
