"""Structured lint findings and ``# reprolint: disable=`` pragma handling."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

#: Matches ``# reprolint: disable=rule-a,rule-b`` anywhere in a physical line.
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Sentinel rule name that suppresses every rule on the line.
DISABLE_ALL = "all"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Sort order is (path, line, rule_id) so reports are stable across runs.
    """

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``file:line rule-id message`` report line."""
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of rule ids disabled on that line.

    A pragma applies only to findings reported on its own physical line; use
    ``disable=all`` to suppress every rule there.  Unknown rule names are kept
    verbatim (they simply never match a finding), so a typo silently disables
    nothing rather than something unexpected.
    """
    pragmas: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group(1).split(",") if name.strip()}
        if rules:
            pragmas[lineno] = rules
    return pragmas


def apply_pragmas(
    findings: Iterable[Finding], pragmas: Dict[int, Set[str]]
) -> List[Finding]:
    """Drop findings whose line carries a pragma naming their rule (or ``all``)."""
    kept = []
    for finding in findings:
        disabled = pragmas.get(finding.line, ())
        if finding.rule_id in disabled or DISABLE_ALL in disabled:
            continue
        kept.append(finding)
    return kept
