"""``reprolint``: AST-based invariant linter for the ColorBars codebase.

The reproduction's correctness rests on conventions that the code states but
Python does not enforce: single-seed reproducibility through
:mod:`repro.util.rng`, a strict layering of the optical chain
(``util -> color -> phy -> ... -> rx -> link``), and the
:class:`~repro.exceptions.ColorBarsError` hierarchy.  This package turns those
conventions into named, individually testable static-analysis rules that run
over the package source with :mod:`ast`.

Three entry points consume it:

* ``colorbars lint`` — the CLI subcommand (see :mod:`repro.cli`);
* ``tests/core/test_lint_clean.py`` — the pytest gate asserting the tree is
  violation-free;
* ``.github/workflows/ci.yml`` — the CI job running both of the above.

Findings can be suppressed per line with ``# reprolint: disable=<rule-id>``.
"""

from repro.tooling.findings import Finding, parse_pragmas
from repro.tooling.layers import LAYER_DEPS, allowed_imports, layer_of
from repro.tooling.rules import ALL_RULES, Rule, get_rules
from repro.tooling.runner import (
    LintReport,
    format_report,
    lint_file,
    lint_source,
    lint_tree,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LAYER_DEPS",
    "LintReport",
    "Rule",
    "allowed_imports",
    "format_report",
    "get_rules",
    "layer_of",
    "lint_file",
    "lint_source",
    "lint_tree",
    "parse_pragmas",
]
