"""``reprolint``: AST-based invariant analyzer for the ColorBars codebase.

The reproduction's correctness rests on conventions that the code states but
Python does not enforce: single-seed reproducibility through
:mod:`repro.util.rng`, a strict layering of the optical chain
(``util -> color -> phy -> ... -> rx -> link``), and the
:class:`~repro.exceptions.ColorBarsError` hierarchy.  This package turns those
conventions into named, individually testable static-analysis rules that run
over the package source with :mod:`ast`.

Two rule scopes exist:

* **per-file rules** (:mod:`repro.tooling.rules`) see one parsed module;
* **contract rules** (:mod:`repro.tooling.contracts`) see the whole-program
  symbol/import/call graph built by :mod:`repro.tooling.project` and check
  cross-module invariants — determinism of the simulation layers,
  pickle-safety of executor payloads, span/metric schema agreement, and the
  exception taxonomy.  They run under ``colorbars lint --strict``, with
  grandfathered findings tracked in a committed ``baseline.json``
  (:mod:`repro.tooling.reports`).

Three entry points consume it:

* ``colorbars lint`` — the CLI subcommand (see :mod:`repro.cli`);
* ``tests/core/test_lint_clean.py`` — the pytest gate asserting the tree is
  violation-free (and strict-clean modulo the baseline);
* ``.github/workflows/ci.yml`` — the CI jobs running both, plus a SARIF
  export for code-scanning consumers.

Findings can be suppressed per line with ``# reprolint: disable=<rule-id>``;
this works identically for per-file and contract rules.
"""

from repro.tooling.contracts import CONTRACT_RULES, ContractRule, run_contract_rules
from repro.tooling.findings import Finding, parse_pragmas
from repro.tooling.layers import LAYER_DEPS, allowed_imports, layer_of
from repro.tooling.project import (
    AnalysisCache,
    ModuleSummary,
    Project,
    build_project,
    module_name_for,
    shared_cache,
    summarize_module,
)
from repro.tooling.reports import (
    AnalysisResult,
    Baseline,
    default_baseline_path,
    run_analysis,
    to_json,
    to_sarif,
    validate_sarif,
)
from repro.tooling.rules import ALL_RULES, Rule, get_rules
from repro.tooling.runner import (
    LintReport,
    format_report,
    lint_file,
    lint_source,
    lint_tree,
)

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "AnalysisResult",
    "Baseline",
    "CONTRACT_RULES",
    "ContractRule",
    "Finding",
    "LAYER_DEPS",
    "LintReport",
    "ModuleSummary",
    "Project",
    "Rule",
    "allowed_imports",
    "build_project",
    "default_baseline_path",
    "format_report",
    "get_rules",
    "layer_of",
    "lint_file",
    "lint_source",
    "lint_tree",
    "module_name_for",
    "parse_pragmas",
    "run_analysis",
    "run_contract_rules",
    "shared_cache",
    "summarize_module",
    "to_json",
    "to_sarif",
    "validate_sarif",
]
