"""Whole-program contract rules over the :class:`~repro.tooling.project.Project` graph.

Four cross-module invariants the per-file rules cannot see:

* **determinism** — the simulation layers (``color`` through ``perf``) must
  be pure functions of ``(config, seed)``; wall-clock reads, entropy pulls,
  and unordered set iteration are flagged, including calls that reach a
  banned primitive *transitively* through a helper defined in an
  unconstrained layer (``util``/``obs``).
* **pickle-safety** — callables crossing the executor boundary
  (``run_specs``/``make_runner``/``run_specs_resilient``/``pool.submit``)
  must be module-top-level, and the executor payload dataclass (``RunSpec``)
  must be built from picklable fields, transitively.
* **obs-schema** — every span/metric name reaching a tracer or registry must
  be declared in ``repro.obs.schema``; declared-but-unused names are flagged
  so the schema cannot drift above the code (the static twin of the runtime
  registry check).
* **exception-taxonomy** — every ``raise`` in library code resolves into the
  ``ColorBarsError`` hierarchy (or an explicitly allowed control-flow
  builtin, or a bare re-raise).

Contract rules carry ``scope = "project"`` so the per-file runner skips
them; :func:`run_contract_rules` is the entry point, and honours the same
``# reprolint: disable=<rule>`` pragmas as the per-file rules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.tooling.findings import Finding, apply_pragmas
from repro.tooling.layers import APP_LAYER
from repro.tooling.project import (
    FunctionInfo,
    ModuleSummary,
    Project,
)

#: Layers whose results must be pure functions of (config, seed).
DETERMINISTIC_LAYERS = frozenset(
    {
        "color",
        "phy",
        "csk",
        "fec",
        "camera",
        "packet",
        "flicker",
        "video",
        "faults",
        "rx",
        "core",
        "link",
        "analysis",
        "baselines",
        "perf",
        "serve",
    }
)

#: Dotted call targets that read the wall clock or pull entropy.  The
#: measurement clocks (``time.perf_counter``/``time.monotonic``) are *not*
#: here: they never feed results, only timings.
NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Dotted prefixes banned wholesale in deterministic layers.
NONDETERMINISTIC_PREFIXES = ("secrets.", "random.")

#: The executor payload dataclasses whose fields must stay picklable.
PAYLOAD_ROOTS = ("repro.link.simulator.RunSpec",)

#: The module declaring the span/metric catalog.
SCHEMA_MODULE = "repro.obs.schema"

#: Builtin exceptions library code may raise: control-flow protocols, not
#: error reporting.  Everything else comes from ``repro.exceptions``.
ALLOWED_BUILTIN_RAISES = frozenset(
    {"NotImplementedError", "StopIteration", "StopAsyncIteration", "KeyboardInterrupt"}
)

#: Roots of the sanctioned taxonomy, for base-chain resolution.
_TAXONOMY_PREFIX = "repro.exceptions."


class ContractRule:
    """Base class for whole-program rules: set ``rule_id``/``description``."""

    rule_id: str = ""
    description: str = ""
    scope: str = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, summary: ModuleSummary, lineno: int, message: str) -> Finding:
        return Finding(
            path=summary.path, line=lineno, rule_id=self.rule_id, message=message
        )


def _banned_call(target: str) -> bool:
    if target in NONDETERMINISTIC_CALLS:
        return True
    return any(target.startswith(prefix) for prefix in NONDETERMINISTIC_PREFIXES)


class DeterminismRule(ContractRule):
    """Nothing nondeterministic feeds results in the simulation layers."""

    rule_id = "determinism"
    description = (
        "deterministic layers (color..perf) must not call wall-clock/entropy"
        " primitives (time.time, datetime.now, os.urandom, uuid, random.*,"
        " secrets.*) or iterate sets, directly or through helpers in"
        " unconstrained layers"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        reach = _BannedReachability(project)
        for summary in project.modules.values():
            if summary.layer not in DETERMINISTIC_LAYERS:
                continue
            for fn in summary.functions:
                for call in fn.calls:
                    target = project.resolve(call.target)
                    if target is None:
                        continue
                    if _banned_call(target):
                        yield self.finding(
                            summary,
                            call.lineno,
                            f"call to {target}() in deterministic layer"
                            f" '{summary.layer}'; results must be pure"
                            " functions of (config, seed)",
                        )
                        continue
                    callee = project.functions.get(target)
                    if callee is None:
                        continue
                    callee_layer = _layer_of_function(project, callee)
                    if callee_layer in DETERMINISTIC_LAYERS:
                        # The callee's own module is constrained; its direct
                        # finding already covers the violation — don't cascade.
                        continue
                    banned = reach.banned_target(callee.qualname)
                    if banned is not None:
                        yield self.finding(
                            summary,
                            call.lineno,
                            f"call to {target}() transitively reaches"
                            f" {banned}() from deterministic layer"
                            f" '{summary.layer}'",
                        )
            for lineno in summary.set_iterations:
                yield self.finding(
                    summary,
                    lineno,
                    "iteration over an unordered set in deterministic layer"
                    f" '{summary.layer}'; sort first (sorted(...)) so"
                    " traversal order is reproducible",
                )


def _layer_of_function(project: Project, fn: FunctionInfo) -> Optional[str]:
    summary = project.modules.get(fn.module)
    return summary.layer if summary is not None else None


class _BannedReachability:
    """Memoized 'does this function transitively call a banned primitive?'"""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._memo: Dict[str, Optional[str]] = {}

    def banned_target(self, qualname: str) -> Optional[str]:
        return self._walk(qualname, set())

    def _walk(self, qualname: str, visiting: Set[str]) -> Optional[str]:
        if qualname in self._memo:
            return self._memo[qualname]
        if qualname in visiting:
            return None  # recursion cycle — already being evaluated above
        fn = self.project.functions.get(qualname)
        if fn is None:
            return None
        visiting.add(qualname)
        result: Optional[str] = None
        for call in fn.calls:
            target = self.project.resolve(call.target)
            if target is None:
                continue
            if _banned_call(target):
                result = target
                break
            found = self._walk(target, visiting)
            if found is not None:
                result = found
                break
        visiting.discard(qualname)
        self._memo[qualname] = result
        return result


class PickleSafetyRule(ContractRule):
    """Everything crossing the executor boundary must pickle."""

    rule_id = "pickle-safety"
    description = (
        "callables handed to the sweep executor (run_specs/make_runner/"
        "run_specs_resilient/pool.submit) must be module-top-level, and"
        " executor payload dataclasses (RunSpec) must have picklable fields"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for summary in project.modules.values():
            for payload in summary.payloads:
                if payload.kind == "lambda":
                    yield self.finding(
                        summary,
                        payload.lineno,
                        f"lambda passed to executor boundary {payload.boundary};"
                        " lambdas do not pickle — use a module-top-level"
                        " function",
                    )
                elif payload.kind == "nested-function":
                    yield self.finding(
                        summary,
                        payload.lineno,
                        f"nested function '{payload.target}' passed to executor"
                        f" boundary {payload.boundary}; closures do not pickle"
                        " — move it to module top level",
                    )
                elif payload.kind == "name":
                    fn = project.function(payload.target)
                    if fn is not None and fn.nested:
                        yield self.finding(
                            summary,
                            payload.lineno,
                            f"function '{fn.qualname}' passed to executor"
                            f" boundary {payload.boundary} is defined inside"
                            " another function and will not pickle",
                        )
        for root in PAYLOAD_ROOTS:
            for finding in self._check_dataclass(project, root, set()):
                yield finding

    def _check_dataclass(
        self, project: Project, dotted: str, visited: Set[str]
    ) -> Iterator[Finding]:
        resolved = project.resolve(dotted)
        if resolved is None or resolved in visited:
            return
        visited.add(resolved)
        cls = project.classes.get(resolved)
        if cls is None or not cls.is_dataclass:
            return
        summary = project.modules.get(cls.module)
        if summary is None:
            return
        if cls.nested:
            yield self.finding(
                summary,
                cls.lineno,
                f"executor payload dataclass '{cls.qualname}' is defined"
                " inside another scope and will not pickle",
            )
        for field_info in cls.fields:
            if field_info.default_kind == "lambda":
                yield self.finding(
                    summary,
                    field_info.lineno,
                    f"field '{field_info.name}' of executor payload"
                    f" '{cls.qualname}' defaults to a lambda, which does"
                    " not pickle",
                )
            for name in field_info.annotation_names:
                resolved_name = project.resolve(name)
                if resolved_name is None:
                    continue
                tail = resolved_name.rpartition(".")[2]
                if tail == "Callable":
                    yield self.finding(
                        summary,
                        field_info.lineno,
                        f"field '{field_info.name}' of executor payload"
                        f" '{cls.qualname}' is annotated Callable; arbitrary"
                        " callables are not reliably picklable — carry data,"
                        " not code",
                    )
                    continue
                inner = project.classes.get(resolved_name)
                if inner is None:
                    continue
                if inner.nested:
                    yield self.finding(
                        summary,
                        field_info.lineno,
                        f"field '{field_info.name}' of executor payload"
                        f" '{cls.qualname}' references nested class"
                        f" '{inner.qualname}', which will not pickle",
                    )
                elif inner.is_dataclass and resolved_name.startswith("repro."):
                    for finding in self._check_dataclass(
                        project, resolved_name, visited
                    ):
                        yield finding


class ObsSchemaRule(ContractRule):
    """Span/metric names and ``repro.obs.schema`` must agree both ways."""

    rule_id = "obs-schema"
    description = (
        "every span/metric name reaching a Tracer/MetricsRegistry must be"
        " declared as a SPAN_*/M_* constant in repro.obs.schema, and every"
        " declared constant must be used somewhere"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        schema = project.modules.get(SCHEMA_MODULE)
        if schema is None:
            return  # fixture projects without an obs layer: nothing to check
        spans = {
            value: (name, lineno)
            for name, (value, lineno) in schema.string_constants.items()
            if name.startswith("SPAN_")
        }
        metrics = {
            value: (name, lineno)
            for name, (value, lineno) in schema.string_constants.items()
            if name.startswith("M_")
        }
        used: Set[str] = set()
        for summary in project.modules.values():
            if summary.module == SCHEMA_MODULE:
                continue
            for target in summary.aliases.values():
                if target.startswith(SCHEMA_MODULE + "."):
                    used.add(target[len(SCHEMA_MODULE) + 1 :])
            for obs_call in summary.obs_calls:
                catalog = spans if obs_call.method == "span" else metrics
                kind = "span" if obs_call.method == "span" else "metric"
                if obs_call.const is not None:
                    const_name = obs_call.const[len(SCHEMA_MODULE) + 1 :]
                    if const_name not in schema.string_constants:
                        yield self.finding(
                            summary,
                            obs_call.lineno,
                            f"{kind} name references"
                            f" {SCHEMA_MODULE}.{const_name}, which is not a"
                            " declared string constant",
                        )
                        continue
                    used.add(const_name)
                    value = schema.string_constants[const_name][0]
                else:
                    value = obs_call.value
                if value is None:
                    continue
                if value in catalog:
                    used.add(catalog[value][0])
                else:
                    yield self.finding(
                        summary,
                        obs_call.lineno,
                        f"{kind} name '{value}' is not declared in"
                        f" {SCHEMA_MODULE}; add a"
                        f" {'SPAN_*' if kind == 'span' else 'M_*'} constant"
                        " there and import it",
                    )
        for catalog in (spans, metrics):
            for value, (name, lineno) in catalog.items():
                if name not in used:
                    yield self.finding(
                        schema,
                        lineno,
                        f"schema constant {name} ('{value}') is declared but"
                        " never used by any instrumented module",
                    )


class ExceptionTaxonomyRule(ContractRule):
    """Library errors come from ``repro.exceptions`` — no raw builtins."""

    rule_id = "exception-taxonomy"
    description = (
        "every raise in library code must resolve to the ColorBarsError"
        " taxonomy (repro.exceptions), a control-flow builtin"
        " (NotImplementedError/StopIteration), or a bare re-raise"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for summary in project.modules.values():
            if summary.layer in (None, APP_LAYER):
                continue
            if summary.module == "repro.exceptions":
                continue
            for raise_site in summary.raises:
                target = raise_site.target
                if target is None:
                    continue  # bare re-raise or local variable: always legal
                if target.startswith(_TAXONOMY_PREFIX):
                    continue
                if "." not in target:
                    if target in ALLOWED_BUILTIN_RAISES:
                        continue
                    yield self.finding(
                        summary,
                        raise_site.lineno,
                        f"raise of builtin {target} outside the taxonomy;"
                        " raise a ColorBarsError subclass from"
                        " repro.exceptions",
                    )
                    continue
                head = target.split(".", 1)[0]
                if head in ("self", "cls"):
                    continue  # attribute on an instance: not statically known
                if self._reaches_taxonomy(project, target, set()):
                    continue
                cls = project.class_info(target)
                if cls is not None:
                    yield self.finding(
                        summary,
                        raise_site.lineno,
                        f"raise of {project.resolve(target)}, whose base"
                        " chain never reaches repro.exceptions; derive it"
                        " from ColorBarsError",
                    )
                elif not target.startswith("repro."):
                    yield self.finding(
                        summary,
                        raise_site.lineno,
                        f"raise of foreign exception {target}; wrap it in a"
                        " ColorBarsError subclass from repro.exceptions",
                    )

    def _reaches_taxonomy(
        self, project: Project, dotted: str, visited: Set[str]
    ) -> bool:
        resolved = project.resolve(dotted)
        if resolved is None or resolved in visited:
            return False
        visited.add(resolved)
        if resolved.startswith(_TAXONOMY_PREFIX):
            return True
        cls = project.classes.get(resolved)
        if cls is None:
            return False
        return any(
            self._reaches_taxonomy(project, base, visited) for base in cls.bases
        )


#: Registry of every contract rule, in report order.
CONTRACT_RULES: Tuple[ContractRule, ...] = (
    DeterminismRule(),
    PickleSafetyRule(),
    ObsSchemaRule(),
    ExceptionTaxonomyRule(),
)


def run_contract_rules(
    project: Project, rules: Optional[Sequence[ContractRule]] = None
) -> List[Finding]:
    """Run contract rules over a project; pragma-filtered, sorted findings."""
    raw: List[Finding] = []
    for rule in CONTRACT_RULES if rules is None else rules:
        raw.extend(rule.check_project(project))
    by_path: Dict[str, ModuleSummary] = {
        summary.path: summary for summary in project.modules.values()
    }
    kept: List[Finding] = []
    for finding in raw:
        summary = by_path.get(finding.path)
        if summary is not None and summary.pragmas:
            pragmas = {line: set(names) for line, names in summary.pragmas.items()}
            if not apply_pragmas([finding], pragmas):
                continue
        kept.append(finding)
    return sorted(kept)
