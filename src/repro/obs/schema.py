"""The single source of truth for every span and metric name.

Everything the observability layer can emit is declared here — span names
with their emitting module and nesting position, and metric names with
their instrument type and unit.  :class:`repro.obs.metrics.MetricsRegistry`
validates every instrument request against this catalog, and
``colorbars trace --schema`` renders :func:`render_reference` as
``docs/METRICS.md``, so the committed reference physically cannot drift
from the code: CI regenerates and diffs it.

Grow the catalog by adding entries (and regenerating the doc); never
rename an existing name in place — downstream dashboards key on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Version of the exported metrics payload; bump when the shape changes.
METRICS_SCHEMA_VERSION = 1

#: Version of the JSONL trace record; bump when the record shape changes.
TRACE_SCHEMA_VERSION = 1

#: Instrument kinds a metric may declare.
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

# -- span names ------------------------------------------------------------

SPAN_SWEEP = "sweep"
SPAN_SHARD = "shard"
SPAN_CELL = "cell"
SPAN_TX_PLAN = "tx-plan"
SPAN_WAVEFORM = "waveform"
SPAN_RECORD = "record"
SPAN_CAPTURE = "capture"
SPAN_INJECT = "inject"
SPAN_DECODE = "decode"
SPAN_SEGMENT = "segment"
SPAN_CALIBRATE = "calibrate"
SPAN_DEMOD = "demod"
SPAN_ASSEMBLE = "assemble"
SPAN_FEC = "fec"
SPAN_METRICS = "metrics"
SPAN_SERVE_PUMP = "serve-pump"
SPAN_SERVE_CLOSE = "serve-close"
SPAN_ADAPT_SEGMENT = "adapt-segment"
SPAN_ADAPT_DECISION = "adapt-decision"

# -- metric names ----------------------------------------------------------

M_RUNS_COMPLETED = "colorbars.runs.completed"
M_FAULTS_INJECTED = "colorbars.faults.injected"
M_FRAMES_RECORDED = "colorbars.frames.recorded"
M_FRAMES_FAILED = "colorbars.frames.failed"
M_SYMBOLS_DETECTED = "colorbars.symbols.detected"
M_SYMBOLS_LOST = "colorbars.symbols.lost_in_gaps"
M_PACKETS_SEEN = "colorbars.packets.seen"
M_PACKETS_DECODED = "colorbars.packets.decoded"
M_PACKETS_FAILED_FEC = "colorbars.packets.failed_fec"
M_CALIBRATION_UPDATES = "colorbars.calibration.updates"
M_CALIBRATION_REJECTED = "colorbars.calibration.rejected"
M_PLAN_CACHE_HITS = "colorbars.plan_cache.hits"
M_PLAN_CACHE_MISSES = "colorbars.plan_cache.misses"
M_CELLS_COMPLETED = "colorbars.cells.completed"
M_CELLS_FAILED = "colorbars.cells.failed"
M_CELLS_RETRIED = "colorbars.cells.retried"
M_CELLS_RESUMED = "colorbars.cells.resumed"
M_SWEEP_WORKERS = "colorbars.sweep.workers"
M_RUN_WALL_SECONDS = "colorbars.run.wall_seconds"
M_FRAME_BANDS = "colorbars.frame.bands"
M_PACKET_ERASURES = "colorbars.packet.erasures"
M_SESSIONS_ADMITTED = "colorbars.sessions.admitted"
M_SESSIONS_REJECTED = "colorbars.sessions.rejected"
M_SESSIONS_EVICTED = "colorbars.sessions.evicted"
M_SESSIONS_QUARANTINED = "colorbars.sessions.quarantined"
M_SESSIONS_CLOSED = "colorbars.sessions.closed"
M_SESSIONS_ACTIVE = "colorbars.sessions.active"
M_SESSION_FRAMES_DROPPED = "colorbars.sessions.frames_dropped"
M_SESSION_QUEUE_PEAK = "colorbars.sessions.queue_peak"
M_ADAPT_DECISIONS = "colorbars.adapt.decisions"
M_ADAPT_UPSHIFTS = "colorbars.adapt.upshifts"
M_ADAPT_DOWNSHIFTS = "colorbars.adapt.downshifts"
M_ADAPT_RUNG = "colorbars.adapt.rung"
M_ADAPT_MARGIN = "colorbars.adapt.margin_delta_e"
M_ADAPT_QUARANTINES_AVERTED = "colorbars.adapt.quarantines_averted"
M_BACKEND_SHARDS = "colorbars.backend.shards"
M_BACKEND_CELLS = "colorbars.backend.cells"
M_BACKEND_LANES = "colorbars.backend.lanes"
M_BACKEND_WORKER_RESTARTS = "colorbars.backend.worker_restarts"
M_BACKEND_MERGED_CELLS = "colorbars.backend.merged_cells"


@dataclass(frozen=True)
class SpanEntry:
    """One span name in the catalog: where it nests and who emits it."""

    name: str
    parent: str
    module: str
    description: str


@dataclass(frozen=True)
class MetricEntry:
    """One metric name in the catalog: instrument kind, unit, emitter."""

    name: str
    kind: str
    unit: str
    module: str
    description: str


#: Every span the pipeline can emit, in nesting/appearance order.
SPANS: Tuple[SpanEntry, ...] = (
    SpanEntry(
        SPAN_SWEEP, "(root)", "repro.obs.trace",
        "One assembled sweep trace; every per-cell trace is re-parented "
        "under it in spec order (a `colorbars run` is a one-cell sweep).",
    ),
    SpanEntry(
        SPAN_SHARD, SPAN_SWEEP, "repro.obs.trace",
        "One backend shard of a sweep: the cells assigned to one parallel "
        "lane, adopted in spec order (in backend-driven sweeps `cell` "
        "spans nest here instead of directly under the sweep root); "
        "backend name, shard index, and cell count as attributes.",
    ),
    SpanEntry(
        SPAN_CELL, SPAN_SWEEP, "repro.link.simulator",
        "One end-to-end link run (one sweep cell): device, CSK order, "
        "symbol rate, seed, cell index, and attempt number as attributes.",
    ),
    SpanEntry(
        SPAN_TX_PLAN, SPAN_CELL, "repro.link.simulator",
        "Transmitter plan construction (RS encode, packetize, modulate); "
        "`cache_hit` records the PlanCache outcome when a planner is "
        "injected.",
    ),
    SpanEntry(
        SPAN_WAVEFORM, SPAN_TX_PLAN, "repro.link.simulator",
        "Optical waveform synthesis; present only when no planner is "
        "injected (a memoizing planner builds plan and waveform together).",
    ),
    SpanEntry(
        SPAN_RECORD, SPAN_CELL, "repro.link.simulator",
        "The full camera recording: every captured frame nests below.",
    ),
    SpanEntry(
        SPAN_CAPTURE, SPAN_RECORD, "repro.camera.sensor",
        "One rolling-shutter frame exposure+readout; `frame` attribute "
        "is the frame index.",
    ),
    SpanEntry(
        SPAN_INJECT, SPAN_CELL, "repro.link.simulator",
        "Fault injection over the recording; fault-schedule counts as "
        "attributes.",
    ),
    SpanEntry(
        SPAN_DECODE, SPAN_CELL, "repro.link.simulator",
        "The complete receive chain over the recording.",
    ),
    SpanEntry(
        SPAN_SEGMENT, SPAN_DECODE, "repro.rx.receiver",
        "One frame through preprocess -> segment (calibration-independent "
        "front half); `frame` attribute is the frame index.",
    ),
    SpanEntry(
        SPAN_CALIBRATE, SPAN_DECODE, "repro.rx.receiver",
        "Bootstrap calibration pass (present only when the receiver "
        "starts uncalibrated).",
    ),
    SpanEntry(
        SPAN_DEMOD, SPAN_DECODE, "repro.rx.receiver",
        "Calibrated symbol classification over every segmented frame.",
    ),
    SpanEntry(
        SPAN_ASSEMBLE, SPAN_DECODE, "repro.rx.receiver",
        "Cross-frame stitching and packet extraction.",
    ),
    SpanEntry(
        SPAN_FEC, SPAN_DECODE, "repro.rx.receiver",
        "Reed-Solomon decode of every seen packet; decoded/failed counts "
        "as attributes.",
    ),
    SpanEntry(
        SPAN_METRICS, SPAN_CELL, "repro.link.simulator",
        "Ground-truth alignment and link-metric computation.",
    ),
    SpanEntry(
        SPAN_SERVE_PUMP, "(root)", "repro.serve.manager",
        "One SessionManager pump pass: queued frames fed to their "
        "streaming receivers; sessions/frames/quarantines as attributes.",
    ),
    SpanEntry(
        SPAN_SERVE_CLOSE, "(root)", "repro.serve.manager",
        "One session teardown (close or idle eviction): the streaming "
        "flush plus its final packet accounting as attributes.",
    ),
    SpanEntry(
        SPAN_ADAPT_SEGMENT, "(root)", "repro.link.adapt",
        "One trajectory segment of an adaptive (or fixed-baseline) run: "
        "the rung in force, its CSK order, and the measured window stats "
        "as attributes.",
    ),
    SpanEntry(
        SPAN_ADAPT_DECISION, SPAN_SERVE_PUMP, "repro.serve.manager",
        "One controller decision applied to a session at a packet "
        "boundary (or on a failure streak): action, rung transition and "
        "reason as attributes.",
    ),
)

#: Every metric the pipeline can record.
METRICS: Tuple[MetricEntry, ...] = (
    MetricEntry(
        M_RUNS_COMPLETED, KIND_COUNTER, "runs", "repro.link.simulator",
        "Completed end-to-end link runs.",
    ),
    MetricEntry(
        M_FAULTS_INJECTED, KIND_COUNTER, "events", "repro.link.simulator",
        "Fault events recorded on the run's FaultSchedule.",
    ),
    MetricEntry(
        M_FRAMES_RECORDED, KIND_COUNTER, "frames", "repro.camera.sensor",
        "Frames captured by the rolling-shutter camera.",
    ),
    MetricEntry(
        M_FRAMES_FAILED, KIND_COUNTER, "frames", "repro.rx.receiver",
        "Frames whose receive pipeline raised and was contained.",
    ),
    MetricEntry(
        M_SYMBOLS_DETECTED, KIND_COUNTER, "symbols", "repro.rx.receiver",
        "Symbols detected across all processed frames.",
    ),
    MetricEntry(
        M_SYMBOLS_LOST, KIND_COUNTER, "symbols", "repro.rx.receiver",
        "Symbols lost to inter-frame readout gaps (assembler estimate).",
    ),
    MetricEntry(
        M_PACKETS_SEEN, KIND_COUNTER, "packets", "repro.rx.receiver",
        "Packets extracted by the assembler (decoded or not).",
    ),
    MetricEntry(
        M_PACKETS_DECODED, KIND_COUNTER, "packets", "repro.rx.receiver",
        "Packets whose RS decode succeeded.",
    ),
    MetricEntry(
        M_PACKETS_FAILED_FEC, KIND_COUNTER, "packets", "repro.rx.receiver",
        "Packets that failed FEC (see fec_failures for the reason taxonomy).",
    ),
    MetricEntry(
        M_CALIBRATION_UPDATES, KIND_COUNTER, "events", "repro.rx.receiver",
        "Credible calibration events folded into the calibration table.",
    ),
    MetricEntry(
        M_CALIBRATION_REJECTED, KIND_COUNTER, "events", "repro.rx.receiver",
        "Calibration events rejected by the poison gates.",
    ),
    MetricEntry(
        M_PLAN_CACHE_HITS, KIND_COUNTER, "lookups", "repro.perf.cache",
        "PlanCache lookups served from memory (recorded by the link layer "
        "off the injected planner).",
    ),
    MetricEntry(
        M_PLAN_CACHE_MISSES, KIND_COUNTER, "lookups", "repro.perf.cache",
        "PlanCache lookups that rebuilt the plan and waveform.",
    ),
    MetricEntry(
        M_CELLS_COMPLETED, KIND_COUNTER, "cells", "repro.perf.runtime",
        "Sweep cells that produced a result (including resumed cells).",
    ),
    MetricEntry(
        M_CELLS_FAILED, KIND_COUNTER, "cells", "repro.perf.runtime",
        "Sweep cells recorded as CellFailure after all attempts.",
    ),
    MetricEntry(
        M_CELLS_RETRIED, KIND_COUNTER, "attempts", "repro.perf.runtime",
        "Retry attempts consumed across all cells (excludes innocent "
        "pool-mate resubmissions).",
    ),
    MetricEntry(
        M_CELLS_RESUMED, KIND_COUNTER, "cells", "repro.perf.runtime",
        "Cells satisfied from the resume journal without re-execution.",
    ),
    MetricEntry(
        M_SWEEP_WORKERS, KIND_GAUGE, "processes", "repro.perf.runtime",
        "Resolved worker count of the sweep that recorded into this "
        "registry (last sweep wins).",
    ),
    MetricEntry(
        M_RUN_WALL_SECONDS, KIND_HISTOGRAM, "seconds", "repro.link.simulator",
        "Wall-clock of one end-to-end run (sum of its stage timings).",
    ),
    MetricEntry(
        M_FRAME_BANDS, KIND_HISTOGRAM, "bands", "repro.rx.receiver",
        "Classified bands per processed frame.",
    ),
    MetricEntry(
        M_PACKET_ERASURES, KIND_HISTOGRAM, "symbols", "repro.rx.receiver",
        "Erasure positions per seen packet, before the FEC budget check.",
    ),
    MetricEntry(
        M_SESSIONS_ADMITTED, KIND_COUNTER, "sessions", "repro.serve.manager",
        "Sessions admitted by the session manager.",
    ),
    MetricEntry(
        M_SESSIONS_REJECTED, KIND_COUNTER, "sessions", "repro.serve.manager",
        "Session admissions refused (capacity or duplicate id).",
    ),
    MetricEntry(
        M_SESSIONS_EVICTED, KIND_COUNTER, "sessions", "repro.serve.manager",
        "Sessions evicted after exceeding the idle timeout.",
    ),
    MetricEntry(
        M_SESSIONS_QUARANTINED, KIND_COUNTER, "sessions", "repro.serve.manager",
        "Poison sessions quarantined as SessionFailure records.",
    ),
    MetricEntry(
        M_SESSIONS_CLOSED, KIND_COUNTER, "sessions", "repro.serve.manager",
        "Sessions closed cleanly (explicit close, streaming flush ran).",
    ),
    MetricEntry(
        M_SESSIONS_ACTIVE, KIND_GAUGE, "sessions", "repro.serve.manager",
        "Currently admitted, not yet closed/evicted/quarantined sessions.",
    ),
    MetricEntry(
        M_SESSION_FRAMES_DROPPED, KIND_COUNTER, "frames", "repro.serve.manager",
        "Frames shed by backpressure (drop-oldest or reject) plus frames "
        "discarded when their session was quarantined.",
    ),
    MetricEntry(
        M_SESSION_QUEUE_PEAK, KIND_GAUGE, "frames", "repro.serve.manager",
        "Deepest per-session frame queue observed since the manager "
        "started (never exceeds the configured cap).",
    ),
    MetricEntry(
        M_ADAPT_DECISIONS, KIND_COUNTER, "decisions", "repro.link.adapt",
        "Link-adaptation controller decisions taken (every action, both "
        "execution shapes).",
    ),
    MetricEntry(
        M_ADAPT_UPSHIFTS, KIND_COUNTER, "decisions", "repro.link.adapt",
        "Decisions that moved one rung faster after the clean-window "
        "streak.",
    ),
    MetricEntry(
        M_ADAPT_DOWNSHIFTS, KIND_COUNTER, "decisions", "repro.link.adapt",
        "Decisions that moved one rung more robust (margin/SER/erasure "
        "breach, or a serve-side failure streak).",
    ),
    MetricEntry(
        M_ADAPT_RUNG, KIND_GAUGE, "rung", "repro.link.adapt",
        "Modulation-ladder rung in force after the latest decision "
        "(0 = fastest).",
    ),
    MetricEntry(
        M_ADAPT_MARGIN, KIND_HISTOGRAM, "delta-e", "repro.link.adapt",
        "Per-window mean ΔE margin to the runner-up reference (observed "
        "only for windows where the margin is defined).",
    ),
    MetricEntry(
        M_ADAPT_QUARANTINES_AVERTED, KIND_COUNTER, "sessions",
        "repro.serve.manager",
        "Failure streaks absorbed by a controller downshift instead of "
        "quarantine (quarantine is the ladder's last rung).",
    ),
    MetricEntry(
        M_BACKEND_SHARDS, KIND_COUNTER, "shards", "repro.perf.backends.driver",
        "Shards submitted to the sweep backend (one per parallel lane "
        "with work).",
    ),
    MetricEntry(
        M_BACKEND_CELLS, KIND_COUNTER, "cells", "repro.perf.backends.driver",
        "Cells executed through the sweep backend (excludes cells spliced "
        "from a resume journal).",
    ),
    MetricEntry(
        M_BACKEND_LANES, KIND_GAUGE, "lanes", "repro.perf.backends.driver",
        "Parallel lanes of the backend that ran the sweep (1 for "
        "inprocess; the worker count for pool/remote).",
    ),
    MetricEntry(
        M_BACKEND_WORKER_RESTARTS, KIND_COUNTER, "workers",
        "repro.perf.backends.driver",
        "Remote workers the backend killed and respawned after a crash, "
        "partition, or watchdog timeout.",
    ),
    MetricEntry(
        M_BACKEND_MERGED_CELLS, KIND_COUNTER, "cells",
        "repro.perf.backends.driver",
        "Cells spliced from shard journals into the sweep journal by the "
        "post-drain merge.",
    ),
)

#: ``{metric name: instrument kind}`` — the registry's validation table.
METRIC_TYPES: Dict[str, str] = {entry.name: entry.kind for entry in METRICS}

#: Every declared span name.
SPAN_NAMES = frozenset(entry.name for entry in SPANS)


def render_reference() -> str:
    """The markdown span/metric reference committed as ``docs/METRICS.md``.

    Regenerate with ``colorbars trace --schema > docs/METRICS.md``; CI
    diffs the two and fails on drift.
    """
    lines = [
        "# ColorBars observability reference",
        "",
        "<!-- GENERATED FILE — do not edit by hand. -->",
        "<!-- Regenerate: colorbars trace --schema > docs/METRICS.md -->",
        "",
        "Every span and metric the pipeline can emit, as declared in",
        "`repro.obs.schema` (the registry rejects undeclared names, and CI",
        "diffs this file against `colorbars trace --schema`).",
        "",
        f"Trace record schema version: {TRACE_SCHEMA_VERSION}."
        f" Metrics export schema version: {METRICS_SCHEMA_VERSION}.",
        "",
        "## Spans",
        "",
        "| span | child of | emitted by | description |",
        "|---|---|---|---|",
    ]
    for span in SPANS:
        lines.append(
            f"| `{span.name}` | `{span.parent}` | `{span.module}` "
            f"| {span.description} |"
        )
    lines += [
        "",
        "## Metrics",
        "",
        "| metric | type | unit | emitted by | description |",
        "|---|---|---|---|---|",
    ]
    for metric in METRICS:
        lines.append(
            f"| `{metric.name}` | {metric.kind} | {metric.unit} "
            f"| `{metric.module}` | {metric.description} |"
        )
    lines += [
        "",
        "## Export formats",
        "",
        "A trace file (`--trace out.jsonl`) is JSON Lines, one span per",
        "line, parents before children:",
        "",
        "```json",
        '{"schema": 1, "span": 2, "parent": 1, "name": "cell",'
        ' "start_s": 0.0, "duration_s": 1.93, "attrs": {"device": "nexus-5"}}',
        "```",
        "",
        "A metrics dump (`--metrics out.json`, or `-` for stdout) is one",
        "JSON object:",
        "",
        "```json",
        '{"schema": 1, "counters": {"colorbars.packets.decoded": 12},',
        ' "gauges": {"colorbars.sweep.workers": 2},',
        ' "histograms": {"colorbars.frame.bands":'
        ' {"count": 60, "sum": 840.0, "min": 0.0, "max": 17.0}}}',
        "```",
        "",
        "Histograms export count/sum/min/max (dependency-free aggregation",
        "that merges exactly across worker processes).",
        "",
    ]
    return "\n".join(lines)
