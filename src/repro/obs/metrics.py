"""Counters, gauges, and histograms behind one schema-validated registry.

A :class:`MetricsRegistry` hands out instruments by *declared* name only —
every name must appear in :data:`repro.obs.schema.METRIC_TYPES` with the
matching kind, which is what keeps ``docs/METRICS.md`` (generated from the
same schema module) truthful about everything the code can record.

Exports are plain dicts (:meth:`MetricsRegistry.export`) designed to merge
exactly: counters add, gauges last-write-wins, histograms combine their
count/sum/min/max.  Worker processes therefore record into a local
registry, ship the export back on the result, and the collecting side
folds everything into the caller's injected registry with
:meth:`MetricsRegistry.merge_export`.

:data:`NULL_METRICS` is the no-op default: every instrument it returns
discards its updates, so uninstrumented call sites cost one method call.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import ObservabilityError
from repro.obs.schema import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    METRIC_TYPES,
    METRICS_SCHEMA_VERSION,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; the last ``set`` wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Dependency-free distribution summary: count, sum, min, max.

    Deliberately bucket-free — count/sum/min/max merge exactly across
    processes, which is the property sweep collection relies on.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def export(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class _NullInstrument:
    """One object standing in for every disabled counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def export(self) -> Dict[str, object]:
        """A null registry never recorded anything."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


#: The module-wide default injected wherever no registry is supplied.
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Instruments by declared name, with mergeable exports."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @staticmethod
    def _require(name: str, kind: str) -> None:
        declared = METRIC_TYPES.get(name)
        if declared is None:
            raise ObservabilityError(
                f"metric {name!r} is not declared in repro.obs.schema; "
                "add it to METRICS before recording it"
            )
        if declared != kind:
            raise ObservabilityError(
                f"metric {name!r} is declared as a {declared}, not a {kind}"
            )

    def counter(self, name: str) -> Counter:
        self._require(name, KIND_COUNTER)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        self._require(name, KIND_GAUGE)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        self._require(name, KIND_HISTOGRAM)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def export(self) -> Dict[str, object]:
        """Everything recorded so far, as a JSON-ready mergeable dict."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {name: gauge.value for name, gauge in self._gauges.items()},
            "histograms": {
                name: histogram.export()
                for name, histogram in self._histograms.items()
            },
        }

    def merge_export(self, exported: Dict[str, object]) -> None:
        """Fold another registry's :meth:`export` into this one.

        Counters add; gauges take the incoming value; histograms combine
        count/sum/min/max.  The merge is associative and commutative over
        counters/histograms, so collection order across workers cannot
        change the totals.
        """
        if not isinstance(exported, dict):
            raise ObservabilityError(
                f"metrics export must be a dict, got {type(exported).__name__}"
            )
        if exported.get("schema") != METRICS_SCHEMA_VERSION:
            raise ObservabilityError(
                f"metrics export schema {exported.get('schema')!r}, "
                f"expected {METRICS_SCHEMA_VERSION}"
            )
        for name, value in (exported.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (exported.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, summary in (exported.get("histograms") or {}).items():
            histogram = self.histogram(name)
            count = int(summary.get("count", 0))
            if count <= 0:
                continue
            histogram.count += count
            histogram.total += float(summary.get("sum", 0.0))
            histogram.min = min(histogram.min, float(summary["min"]))
            histogram.max = max(histogram.max, float(summary["max"]))

    def format_lines(self) -> List[str]:
        """Human-readable dump lines (the CLI prints them for ``-``)."""
        exported = self.export()
        lines: List[str] = []
        for name, value in sorted(exported["counters"].items()):
            lines.append(f"{name} = {value}")
        for name, value in sorted(exported["gauges"].items()):
            lines.append(f"{name} = {value:g}")
        for name, summary in sorted(exported["histograms"].items()):
            lines.append(
                f"{name} = count {summary['count']}, sum {summary['sum']:g}, "
                f"min {summary['min']:g}, max {summary['max']:g}"
            )
        return lines
