"""Observability: spans, metrics, and trace export for the pipeline.

Dependency-free (stdlib only, below every pipeline layer but ``util``)
and injection-only: a :class:`Tracer`/:class:`MetricsRegistry` pair is
handed to ``LinkSimulator``/``RunSpec.execute(observe=...)`` explicitly,
never discovered through a global.  The defaults (:data:`NULL_TRACER`,
:data:`NULL_METRICS`) are shared no-ops, so uninstrumented runs pay one
method call per would-be span.

See ``docs/METRICS.md`` (generated from :mod:`repro.obs.schema`) for the
full span/metric catalog, and ``DESIGN.md`` §5f for the injection and
worker re-parenting contracts.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.schema import (
    METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    render_reference,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    assemble_trace,
    format_span_tree,
    read_trace,
    summarize_spans,
    tree_signature,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "render_reference",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "assemble_trace",
    "format_span_tree",
    "read_trace",
    "summarize_spans",
    "tree_signature",
    "write_trace",
]
