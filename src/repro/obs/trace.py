"""Nested spans: the tracer, the no-op default, and trace assembly/IO.

A :class:`Tracer` records a tree of :class:`Span` records via a
context-manager API; the pipeline is handed one by explicit injection
(``LinkSimulator(tracer=...)``) and never reaches for a global.  The
default is :data:`NULL_TRACER`, whose ``span`` returns a shared no-op —
the disabled hot path costs one method call and stays within measurement
noise (asserted by ``tests/obs/test_overhead.py``).

Worker processes cannot share a tracer, so each observed cell records
into its own local :class:`Tracer` and ships the finished span tuple back
on the result (``LinkResult.trace``); :func:`assemble_trace` then adopts
every cell's spans under one synthetic root *in spec order*, renumbering
ids, so serial, parallel, degraded, and resumed sweeps of the same specs
produce identical span trees (:func:`tree_signature` is the equality the
tests assert).

Traces serialize as JSON Lines, one span per line, parents before
children (:func:`write_trace` / :func:`read_trace`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TraceError
from repro.obs.schema import SPAN_SHARD, SPAN_SWEEP, TRACE_SCHEMA_VERSION


@dataclass
class Span:
    """One traced operation: name, tree position, wall clock, attributes."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    duration_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (JSON-friendly values; others are str()ed)."""
        self.attributes[key] = value


class _NullSpan:
    """The do-nothing span every :class:`NullTracer` call returns."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The shared no-op span; safe because it holds no state.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span`` is the shared no-op.

    Stateless and picklable, so specs executed in worker processes can
    default to it without shipping anything.
    """

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        """Return the shared no-op context manager."""
        return NULL_SPAN

    def spans(self) -> Tuple[Span, ...]:
        """A null tracer never recorded anything."""
        return ()


#: The module-wide default injected wherever no tracer is supplied.
NULL_TRACER = NullTracer()


class Tracer:
    """Records a tree of spans through a context-manager API.

    Spans are appended at *entry*, so parents always precede children in
    :meth:`spans` — the ordering invariant trace IO and assembly rely on.
    Not thread-safe by design: one tracer per cell, per process.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._clock = time.perf_counter
        self._origin = self._clock()

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of the innermost open span (or a new root)."""
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_s=self._clock() - self._origin,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._spans.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.duration_s = (
                self._clock() - self._origin - record.start_s
            )
            self._stack.pop()

    def spans(self) -> Tuple[Span, ...]:
        """Everything recorded so far, parents before children."""
        return tuple(self._spans)

    def adopt(
        self, spans: Sequence[Span], parent: Optional[Span] = None
    ) -> List[Span]:
        """Graft a foreign span batch (e.g. from a worker) into this tracer.

        Ids are renumbered into this tracer's sequence and the batch's
        roots are re-parented under ``parent`` (or left as roots), so
        traces recorded in other processes merge without collisions.
        Returns the adopted copies, in the batch's order.
        """
        mapping: Dict[int, int] = {}
        adopted: List[Span] = []
        for span in spans:
            new_id = self._next_id
            self._next_id += 1
            mapping[span.span_id] = new_id
            if span.parent_id is None:
                new_parent = parent.span_id if parent is not None else None
            else:
                try:
                    new_parent = mapping[span.parent_id]
                except KeyError:
                    raise TraceError(
                        f"span {span.span_id} ({span.name!r}) references "
                        f"parent {span.parent_id} outside its own batch"
                    ) from None
            copy = Span(
                name=span.name,
                span_id=new_id,
                parent_id=new_parent,
                start_s=span.start_s,
                duration_s=span.duration_s,
                attributes=dict(span.attributes),
            )
            self._spans.append(copy)
            adopted.append(copy)
        return adopted


def assemble_trace(
    cell_traces: Iterable[Optional[Sequence[Span]]],
    root_name: str = SPAN_SWEEP,
    root_attributes: Optional[Dict[str, object]] = None,
) -> List[Span]:
    """One coherent trace from per-cell span batches, in the given order.

    ``cell_traces`` is iterated in *spec order* (the caller passes
    ``RuntimeResult.results`` order, never completion order), so the
    assembled tree is identical for serial and parallel executions of the
    same specs.  ``None`` entries (failed or unobserved cells) contribute
    nothing.  The synthetic root's duration is the sum of the adopted
    roots' durations — cells may have run concurrently, so their wall
    clocks add, they do not nest.
    """
    tracer = Tracer()
    root = Span(
        name=root_name,
        span_id=1,
        parent_id=None,
        start_s=0.0,
        attributes=dict(root_attributes or {}),
    )
    tracer._spans.append(root)
    tracer._next_id = 2
    cells = 0
    total = 0.0
    for trace in cell_traces:
        if not trace:
            continue
        cells += 1
        adopted = tracer.adopt(list(trace), parent=root)
        total += sum(s.duration_s for s in adopted if s.parent_id == root.span_id)
    root.duration_s = total
    root.set("cells", cells)
    return list(tracer.spans())


def assemble_sharded_trace(
    shard_groups: Sequence[
        Tuple[Dict[str, object], Sequence[Optional[Sequence[Span]]]]
    ],
    root_name: str = SPAN_SWEEP,
    root_attributes: Optional[Dict[str, object]] = None,
    shard_name: str = SPAN_SHARD,
) -> List[Span]:
    """One trace from a backend-driven sweep: root -> shard spans -> cells.

    ``shard_groups`` is ``(shard attributes, cell traces)`` per shard, in
    shard order, each group's traces in *spec order* — so the assembled
    tree depends only on the sharding plan, never on which lane finished
    first.  Cells adopt under their shard's synthetic span instead of
    directly under the sweep root; durations sum upward (shards and cells
    may run concurrently, so wall clocks add, they do not nest).
    """
    tracer = Tracer()
    root = Span(
        name=root_name,
        span_id=1,
        parent_id=None,
        start_s=0.0,
        attributes=dict(root_attributes or {}),
    )
    tracer._spans.append(root)
    tracer._next_id = 2
    total_cells = 0
    total = 0.0
    for shard_attributes, cell_traces in shard_groups:
        shard_span = Span(
            name=shard_name,
            span_id=tracer._next_id,
            parent_id=root.span_id,
            start_s=0.0,
            attributes=dict(shard_attributes or {}),
        )
        tracer._next_id += 1
        tracer._spans.append(shard_span)
        cells = 0
        shard_total = 0.0
        for trace in cell_traces:
            if not trace:
                continue
            cells += 1
            adopted = tracer.adopt(list(trace), parent=shard_span)
            shard_total += sum(
                s.duration_s
                for s in adopted
                if s.parent_id == shard_span.span_id
            )
        shard_span.duration_s = shard_total
        shard_span.set("cells", cells)
        total_cells += cells
        total += shard_total
    root.duration_s = total
    root.set("cells", total_cells)
    return list(tracer.spans())


# -- serialization ---------------------------------------------------------


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace(path, spans: Sequence[Span]) -> None:
    """Write spans as JSON Lines (one span per line, parents first)."""
    lines = []
    for span in spans:
        lines.append(
            json.dumps(
                {
                    "schema": TRACE_SCHEMA_VERSION,
                    "span": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start_s": round(span.start_s, 6),
                    "duration_s": round(span.duration_s, 6),
                    "attrs": {
                        k: _jsonable(v) for k, v in span.attributes.items()
                    },
                },
                sort_keys=True,
            )
        )
    try:
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    except OSError as exc:
        raise TraceError(f"cannot write trace {path}: {exc}") from exc


def read_trace(path) -> List[Span]:
    """Parse a JSONL trace file back into spans (strictly validated)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    spans: List[Span] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise TraceError(f"{path}:{number}: span record must be an object")
        if record.get("schema") != TRACE_SCHEMA_VERSION:
            raise TraceError(
                f"{path}:{number}: trace schema {record.get('schema')!r}, "
                f"expected {TRACE_SCHEMA_VERSION}"
            )
        try:
            spans.append(
                Span(
                    name=record["name"],
                    span_id=int(record["span"]),
                    parent_id=(
                        None if record["parent"] is None else int(record["parent"])
                    ),
                    start_s=float(record["start_s"]),
                    duration_s=float(record["duration_s"]),
                    attributes=dict(record.get("attrs") or {}),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"{path}:{number}: malformed span record: {exc}"
            ) from exc
    return spans


# -- analysis --------------------------------------------------------------


def _children_map(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    children: Dict[Optional[int], List[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    return children


def tree_signature(spans: Sequence[Span]):
    """The structure of a trace — names and parentage, nothing else.

    A nested tuple ``(name, (child signatures...))`` per root, children in
    appearance order.  Durations, ids, and attributes are excluded, so two
    traces compare equal exactly when their span trees (names, parentage,
    counts) match — the serial-vs-parallel identity the acceptance
    criteria assert.
    """
    children = _children_map(spans)

    def signature(span: Span):
        return (
            span.name,
            tuple(signature(child) for child in children.get(span.span_id, [])),
        )

    return tuple(signature(root) for root in children.get(None, []))


def summarize_spans(spans: Sequence[Span]) -> List[str]:
    """Per-name rollup lines: count, total seconds, share of the root(s)."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    order: List[str] = []
    for span in spans:
        if span.name not in totals:
            order.append(span.name)
            totals[span.name] = 0.0
            counts[span.name] = 0
        totals[span.name] += span.duration_s
        counts[span.name] += 1
    roots = [span for span in spans if span.parent_id is None]
    base = sum(span.duration_s for span in roots) or 1.0
    lines = [
        f"{len(spans)} span(s), {len(roots)} root(s), "
        f"{base if roots else 0.0:.3f} s total",
        f"{'span':>10} | {'count':>6} | {'seconds':>8} | {'share':>6}",
        "-" * 40,
    ]
    for name in order:
        lines.append(
            f"{name:>10} | {counts[name]:>6} | {totals[name]:8.3f} "
            f"| {totals[name] / base:5.1%}"
        )
    return lines


def format_span_tree(spans: Sequence[Span], max_spans: int = 200) -> List[str]:
    """Indented tree lines (depth-first, appearance order), capped."""
    children = _children_map(spans)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{span.name} ({span.duration_s:.3f}s){attrs}"
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(spans)} spans total; tree capped)")
    return lines
