"""Seeded, composable fault injection for the simulated optical link.

The paper's evaluation only exercises the happy optical path; this package
supplies the messier realities — occlusion, saturation, exposure spikes,
dropped/torn frames, clock drift — as :class:`FaultInjector` objects that
wrap the recording between camera and receiver.  Every injector is driven
by a generator derived through :mod:`repro.util.rng`, logs its ground truth
in a :class:`FaultSchedule`, and is a byte-exact no-op at intensity zero.

Use via :class:`~repro.link.simulator.LinkSimulator`::

    from repro.faults import FrameDropInjector
    LinkSimulator(config, device, faults=[FrameDropInjector(0.3)]).run()

or from the shell: ``colorbars simulate --fault frame-drop:0.3``.
"""

from repro.faults.base import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    validate_intensity,
)
from repro.faults.chaos import (
    CHAOS_REGISTRY,
    CellHangChaos,
    ProcessChaos,
    SlowCellChaos,
    WorkerCrashChaos,
    WorkerPartitionChaos,
    make_chaos,
    parse_chaos_spec,
    parse_chaos_specs,
)
from repro.faults.injectors import (
    FAULT_REGISTRY,
    DriftInjector,
    FrameDropInjector,
    OcclusionInjector,
    SaturationInjector,
    ScanlineCorruptionInjector,
    TimingJitterInjector,
    make_injector,
    parse_fault_spec,
    parse_fault_specs,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "validate_intensity",
    "CHAOS_REGISTRY",
    "CellHangChaos",
    "ProcessChaos",
    "SlowCellChaos",
    "WorkerCrashChaos",
    "WorkerPartitionChaos",
    "make_chaos",
    "parse_chaos_spec",
    "parse_chaos_specs",
    "FAULT_REGISTRY",
    "DriftInjector",
    "FrameDropInjector",
    "OcclusionInjector",
    "SaturationInjector",
    "ScanlineCorruptionInjector",
    "TimingJitterInjector",
    "make_injector",
    "parse_fault_spec",
    "parse_fault_specs",
]
