"""The built-in fault injectors and the name registry behind ``--fault``.

Each injector models one impairment class real LED-to-camera links exhibit
(occlusion, saturation, exposure spikes, dropped/corrupted frames, clock
drift, slow channel drift) as a seeded transform over the captured-frame
list.  See
:mod:`repro.faults.base` for the two contract rules every injector obeys
(zero-is-a-no-op, fixed per-frame random budget).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple, Type

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.exceptions import FaultInjectionError
from repro.faults.base import FaultInjector, FaultSchedule


class FrameDropInjector(FaultInjector):
    """Whole frames vanish from the recording (camera-stack drops).

    ``intensity`` is the per-frame drop probability.  Dropped frames simply
    never reach the receiver: the assembler sees a wider inter-frame gap and
    turns the missing symbols into known-position erasures.
    """

    name = "frame-drop"

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        draws = rng.random(len(frames))
        kept: List[CapturedFrame] = []
        for frame, draw in zip(frames, draws):
            if draw < self.intensity:
                schedule.record(self.name, frame.index, 1.0, "frame dropped")
            else:
                kept.append(frame)
        return kept


class ScanlineCorruptionInjector(FaultInjector):
    """A burst of torn rows: contiguous scanlines replaced by sensor garbage.

    ``intensity`` scales the burst length; up to half of a frame's rows are
    replaced with uniform noise at full intensity.  The burst position and a
    per-frame length factor come from the fixed random budget, so sweeps at
    different intensities tear the same frames at the same rows.
    """

    name = "scanline-corruption"

    #: Fraction of a frame's rows the burst may reach at intensity 1.0.
    max_burst_fraction = 0.5

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        # Fixed budget first (intensity-independent), noise content after.
        budget = rng.random((len(frames), 2))
        out: List[CapturedFrame] = []
        for frame, (start_draw, length_draw) in zip(frames, budget):
            burst = int(
                round(
                    frame.rows
                    * self.max_burst_fraction
                    * self.intensity
                    * (0.5 + 0.5 * length_draw)
                )
            )
            if burst <= 0:
                out.append(frame)
                continue
            start = int(start_draw * (frame.rows - burst))
            pixels = frame.pixels.copy()
            noise = rng.integers(
                0, 256, size=(burst,) + frame.pixels.shape[1:], dtype=np.int64
            )
            pixels[start : start + burst] = noise.astype(np.uint8)
            schedule.record(
                self.name,
                frame.index,
                float(burst),
                f"rows {start}..{start + burst - 1} torn",
            )
            out.append(replace(frame, pixels=pixels))
        return out


class OcclusionInjector(FaultInjector):
    """A static occluder blocks part of the band region in every frame.

    ``intensity`` is (proportional to) the fraction of rows blocked: the
    occluded scanlines go dark, demodulate as OFF, and become in-body
    erasures at known positions.  The occluder position is drawn once and
    held, as a real obstruction would be.
    """

    name = "occlusion"

    #: Fraction of the frame occluded at intensity 1.0.
    max_cover_fraction = 0.6
    #: 8-bit value occluded pixels take (dark, below any OFF threshold).
    blocked_level = 2

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        center_draw = float(rng.random())
        out: List[CapturedFrame] = []
        for frame in frames:
            cover = int(round(frame.rows * self.max_cover_fraction * self.intensity))
            if cover <= 0:
                out.append(frame)
                continue
            center = center_draw * frame.rows
            start = int(np.clip(center - cover / 2, 0, frame.rows - cover))
            pixels = frame.pixels.copy()
            pixels[start : start + cover] = self.blocked_level
            schedule.record(
                self.name,
                frame.index,
                cover / frame.rows,
                f"rows {start}..{start + cover - 1} occluded",
            )
            out.append(replace(frame, pixels=pixels))
        return out


class SaturationInjector(FaultInjector):
    """Exposure spikes: some frames are captured hot and clip to white.

    ``intensity`` is the per-frame spike probability; a spiked frame's
    pixels are scaled by a fixed hot gain and clipped, washing chroma out of
    the highlights so colored bands collapse toward white.
    """

    name = "saturation"

    #: Radiometric gain applied to a spiked frame before clipping.
    spike_gain = 2.5

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        draws = rng.random(len(frames))
        out: List[CapturedFrame] = []
        for frame, draw in zip(frames, draws):
            if draw >= self.intensity:
                out.append(frame)
                continue
            hot = np.clip(
                frame.pixels.astype(np.float64) * self.spike_gain, 0, 255
            ).astype(np.uint8)
            clipped = float(np.mean(hot == 255))
            schedule.record(
                self.name,
                frame.index,
                self.spike_gain,
                f"exposure spike x{self.spike_gain} ({clipped:.0%} clipped)",
            )
            out.append(replace(frame, pixels=hot))
        return out


class TimingJitterInjector(FaultInjector):
    """Readout clock drift: frame timestamps random-walk away from truth.

    ``intensity`` scales the per-frame drift step (a zero-mean random walk,
    up to ``max_step_s`` std per frame at intensity 1.0).  The pixels are
    untouched — only the frame's claimed ``start_time`` moves — so the
    receiver's band clock slowly disagrees with what is actually on air,
    corrupting slot indexing once the accumulated drift approaches a symbol
    period.
    """

    name = "timing-jitter"

    #: Per-frame drift-step standard deviation at intensity 1.0, seconds.
    max_step_s = 4e-4

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        steps = rng.normal(0.0, 1.0, size=len(frames))
        drift = np.cumsum(steps) * self.max_step_s * self.intensity
        out: List[CapturedFrame] = []
        for frame, offset in zip(frames, drift):
            schedule.record(
                self.name,
                frame.index,
                float(offset),
                f"start_time shifted {offset * 1e3:+.3f} ms",
            )
            out.append(replace(frame, start_time=frame.start_time + float(offset)))
        return out


class DriftInjector(FaultInjector):
    """Slow channel drift: a multiplicative gain fade plus an ambient ramp.

    Models the time-varying channel of a walk-away-while-the-lights-come-up
    scenario: the LED's apparent gain fades linearly over the recording
    (inverse-square loss as distance grows) while a warm ambient level ramps
    up, washing chroma out of the bands.  ``intensity`` scales the depth of
    both ramps; the ramp itself is a deterministic function of frame
    position, with a small per-frame gain ripple drawn from the fixed random
    budget so two intensities wobble the same frames the same way (common
    random numbers).  This is the impairment the link-adaptation controller
    (:mod:`repro.link.adapt`) is built to survive.
    """

    name = "drift"

    #: Fraction of gain lost by the final frame at intensity 1.0.
    max_gain_fade = 0.7
    #: 8-bit counts of ambient light added by the final frame at intensity 1.0.
    max_ambient_level = 80.0
    #: Relative channel weights of the ambient cast (warm indoor light).
    ambient_rgb = (1.0, 0.93, 0.82)
    #: Std of the per-frame multiplicative gain ripple at intensity 1.0.
    gain_ripple = 0.02

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        # Fixed budget first (intensity-independent), then deterministic
        # scaling: the ramp depth moves with intensity, the ripple pattern
        # does not.
        ripple = rng.normal(0.0, 1.0, size=len(frames))
        span = max(len(frames) - 1, 1)
        cast = np.asarray(self.ambient_rgb, dtype=np.float64)
        out: List[CapturedFrame] = []
        for position, (frame, wobble) in enumerate(zip(frames, ripple)):
            progress = position / span
            gain = 1.0 - self.max_gain_fade * self.intensity * progress
            gain *= 1.0 + self.gain_ripple * self.intensity * wobble
            gain = float(np.clip(gain, 0.05, 1.0))
            ambient = self.max_ambient_level * self.intensity * progress
            pixels = frame.pixels.astype(np.float64) * gain + ambient * cast
            pixels = np.clip(pixels, 0, 255).astype(np.uint8)
            schedule.record(
                self.name,
                frame.index,
                gain,
                f"gain x{gain:.3f}, ambient +{ambient:.1f}",
            )
            out.append(replace(frame, pixels=pixels))
        return out


#: Canonical name -> injector class, the vocabulary of ``--fault NAME:INTENSITY``.
FAULT_REGISTRY: Dict[str, Type[FaultInjector]] = {
    injector.name: injector
    for injector in (
        FrameDropInjector,
        ScanlineCorruptionInjector,
        OcclusionInjector,
        SaturationInjector,
        TimingJitterInjector,
        DriftInjector,
    )
}


def make_injector(name: str, intensity: float) -> FaultInjector:
    """Instantiate a registered injector by its canonical name."""
    try:
        cls = FAULT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_REGISTRY))
        raise FaultInjectionError(
            f"unknown fault injector {name!r}; known injectors: {known}"
        ) from None
    return cls(intensity)


def parse_fault_spec(spec: str) -> FaultInjector:
    """Parse a ``NAME:INTENSITY`` CLI spec into an injector instance."""
    name, separator, raw_intensity = spec.partition(":")
    if not separator or not name or not raw_intensity:
        raise FaultInjectionError(
            f"fault spec must look like NAME:INTENSITY, got {spec!r}"
        )
    try:
        intensity = float(raw_intensity)
    except ValueError:
        raise FaultInjectionError(
            f"fault intensity must be a number, got {raw_intensity!r} in {spec!r}"
        ) from None
    return make_injector(name.strip(), intensity)


def parse_fault_specs(specs) -> Tuple[FaultInjector, ...]:
    """Parse a sequence of CLI fault specs (order preserved)."""
    return tuple(parse_fault_spec(spec) for spec in specs or ())
