"""Fault-injection contract: injector protocol, schedule, intensity rules.

Injectors wrap the simulated recording between camera and receiver: each one
consumes a list of :class:`~repro.camera.frame.CapturedFrame` and returns a
(possibly shorter, possibly perturbed) list, recording exactly what it did in
a :class:`FaultSchedule` — the ground truth the robustness tests assert
against.

Two contract rules make fault sweeps meaningful:

* **Zero is a no-op.**  ``inject`` at ``intensity == 0.0`` returns the input
  frames unchanged, so a zero-intensity run is byte-identical to a no-fault
  run.
* **Common random numbers.**  An injector draws a *fixed* per-frame random
  budget that does not depend on its intensity, then scales the damage
  deterministically.  Two runs that differ only in intensity therefore
  damage the same frames at the same places, just harder — which is what
  makes the resilience matrix's monotonic-degradation assertion structural
  rather than statistical.

All randomness flows through generators built by :mod:`repro.util.rng`
(``make_rng``/``derive_rng``); injectors never touch ``np.random`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.camera.frame import CapturedFrame
from repro.exceptions import FaultInjectionError


@dataclass(frozen=True)
class FaultEvent:
    """One recorded act of injected damage.

    ``magnitude`` is injector-specific (rows corrupted, gain applied, seconds
    of drift...); ``detail`` is a human-readable description of the same.
    """

    injector: str
    frame_index: int
    magnitude: float
    detail: str


@dataclass
class FaultSchedule:
    """Ground-truth log of everything every injector did to a recording."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(
        self, injector: str, frame_index: int, magnitude: float, detail: str
    ) -> None:
        self.events.append(
            FaultEvent(
                injector=injector,
                frame_index=frame_index,
                magnitude=magnitude,
                detail=detail,
            )
        )

    def events_for(self, injector: str) -> List[FaultEvent]:
        return [e for e in self.events if e.injector == injector]

    def frames_affected(self, injector: Optional[str] = None) -> List[int]:
        """Sorted distinct frame indices touched (optionally by one injector)."""
        return sorted(
            {
                e.frame_index
                for e in self.events
                if injector is None or e.injector == injector
            }
        )

    def counts_by_injector(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.injector] = counts.get(event.injector, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)

    def summary(self) -> str:
        if not self.events:
            return "no faults injected"
        parts = [
            f"{name}={count}" for name, count in sorted(self.counts_by_injector().items())
        ]
        return (
            f"{len(self.events)} fault events over "
            f"{len(self.frames_affected())} frames ({', '.join(parts)})"
        )

    def span_attributes(self) -> Dict[str, object]:
        """Flat ``{key: value}`` attributes for an observability span.

        Shaped for :meth:`repro.obs.trace.Span.set` without this module
        importing ``obs`` (faults stay below the instrumented link layer):
        total event count, distinct frames touched, and a per-injector
        ``events.<name>`` count.
        """
        attributes: Dict[str, object] = {
            "events": len(self.events),
            "frames_affected": len(self.frames_affected()),
        }
        for name, count in sorted(self.counts_by_injector().items()):
            attributes[f"events.{name}"] = count
        return attributes


def validate_intensity(intensity: float, name: str) -> float:
    """Intensity knobs live in [0, 1]; anything else is a configuration bug."""
    value = float(intensity)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise FaultInjectionError(
            f"{name} intensity must be in [0, 1], got {intensity!r}"
        )
    return value


class FaultInjector:
    """Base class every injector extends.

    Subclasses set ``name`` and implement :meth:`_apply`; the public
    :meth:`inject` enforces the zero-is-a-no-op contract so subclasses never
    need to special-case it.
    """

    name: str = ""

    def __init__(self, intensity: float) -> None:
        self.intensity = validate_intensity(intensity, type(self).__name__)

    def inject(
        self,
        frames: Sequence[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        """Apply this fault to a recording; record ground truth in ``schedule``."""
        if self.intensity == 0.0:
            return list(frames)
        return self._apply(list(frames), rng, schedule)

    def _apply(
        self,
        frames: List[CapturedFrame],
        rng: np.random.Generator,
        schedule: FaultSchedule,
    ) -> List[CapturedFrame]:
        raise FaultInjectionError(
            f"{type(self).__name__} does not implement _apply"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(intensity={self.intensity})"
