"""Process-level chaos injectors: worker crashes, cell hangs, slow cells.

PR 2's frame-level injectors stress the *link*; these stress the *runtime*.
Each one fires inside a sweep worker immediately before a cell executes and
models one way a long-running fleet/grid run dies in practice:

* ``worker-crash`` — the worker process exits abruptly (OOM kill, segfault
  in a native dependency), which surfaces to the parent pool as
  ``BrokenProcessPool``;
* ``cell-hang`` — the cell blocks forever (deadlocked I/O, a wedged
  dependency), which only a watchdog deadline can clear;
* ``slow-cell`` — the cell is merely slow (CPU contention, throttling), and
  must complete normally as long as it stays under the deadline.

The frame-injector contract carries over (see :mod:`repro.faults.base`):

* **Zero is a no-op.**  ``intensity == 0.0`` never triggers, so a
  zero-intensity chaos run is byte-identical to a chaos-free run.
* **Seeded determinism.**  Whether a given ``(cell, attempt)`` triggers is
  a pure function of ``(chaos seed, injector name, cell index, attempt)``
  via :mod:`repro.util.rng` — two runs with the same seed strike the same
  cells on the same attempts, and a retried cell re-draws for its new
  attempt number, so bounded retry can deterministically outlast transient
  chaos.

Chaos objects are plain picklable values: the resilient runtime
(:mod:`repro.perf.runtime`) ships them to pool workers alongside each cell.
They are **never** applied to an in-process serial run — a ``worker-crash``
there would take the caller down with it — so the runtime forces process
isolation whenever chaos is configured.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple, Type

from repro.exceptions import FaultInjectionError
from repro.faults.base import validate_intensity
from repro.util.rng import derive_rng, make_rng

#: Exit status a chaos-crashed worker dies with (distinctive in CI logs).
CHAOS_CRASH_EXIT_CODE = 77


class ProcessChaos:
    """Base class for process-level chaos; subclasses implement :meth:`_strike`.

    ``intensity`` is the per-``(cell, attempt)`` trigger probability;
    ``seed`` roots the deterministic trigger draws.
    """

    name: str = ""

    def __init__(self, intensity: float, seed: int = 0) -> None:
        self.intensity = validate_intensity(intensity, type(self).__name__)
        self.seed = int(seed)

    def trigger_draw(self, cell_index: int, attempt: int) -> float:
        """The uniform [0, 1) draw deciding whether this cell/attempt fires.

        Exposed so tests (and callers predicting chaos) can recompute the
        exact schedule: the draw depends only on ``(seed, name, cell_index,
        attempt)``, never on intensity or execution order.
        """
        rng = derive_rng(
            make_rng(self.seed),
            f"chaos:{self.name}:cell:{cell_index}:attempt:{attempt}",
        )
        return float(rng.random())

    def triggers(self, cell_index: int, attempt: int) -> bool:
        """Deterministically decide whether this ``(cell, attempt)`` fires."""
        if self.intensity == 0.0:
            return False
        return self.trigger_draw(cell_index, attempt) < self.intensity

    def before_cell(self, cell_index: int, attempt: int) -> None:
        """Called in the worker immediately before the cell executes."""
        if self.triggers(cell_index, attempt):
            self._strike(cell_index, attempt)

    def _strike(self, cell_index: int, attempt: int) -> None:
        raise FaultInjectionError(
            f"{type(self).__name__} does not implement _strike"
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(intensity={self.intensity}, seed={self.seed})"
        )


class WorkerCrashChaos(ProcessChaos):
    """The worker process dies abruptly, as an OOM kill or segfault would.

    ``os._exit`` skips every cleanup handler — the parent pool sees exactly
    what a hard kill produces (``BrokenProcessPool``), which is the case the
    runtime's crash containment must absorb.
    """

    name = "worker-crash"

    def _strike(self, cell_index: int, attempt: int) -> None:
        os._exit(CHAOS_CRASH_EXIT_CODE)


class CellHangChaos(ProcessChaos):
    """The cell blocks far beyond any reasonable deadline (a wedged worker).

    ``hang_s`` defaults to an hour — effectively forever next to any sane
    ``cell_timeout`` — so an un-watchdogged sweep visibly stalls while a
    watchdogged one cancels the cell and moves on.
    """

    name = "cell-hang"

    def __init__(
        self, intensity: float, seed: int = 0, hang_s: float = 3600.0
    ) -> None:
        super().__init__(intensity, seed=seed)
        if not hang_s > 0:
            raise FaultInjectionError(
                f"hang_s must be positive, got {hang_s!r}"
            )
        self.hang_s = float(hang_s)

    def _strike(self, cell_index: int, attempt: int) -> None:
        time.sleep(self.hang_s)


class WorkerPartitionChaos(ProcessChaos):
    """The worker's connection to its parent goes dark (a network partition).

    Unlike ``worker-crash`` the process stays *alive*: its result channel
    (stdout for remote stdio workers) is closed and the worker then sleeps
    forever, which is what a severed link to a remote host looks like from
    the parent's side — EOF with no exit.  The containing runtime must
    detect the lost connection, kill the orphaned process itself, and
    contain the in-flight cell; a pool worker partitioned this way keeps
    its pipe to the parent (pools multiplex over dedicated queues), so the
    injector degenerates to a permanent hang there and needs a watchdog to
    clear, exactly like ``cell-hang``.
    """

    name = "worker-partition"

    def _strike(self, cell_index: int, attempt: int) -> None:
        try:
            os.close(1)  # sever the result channel: the parent sees EOF
        except OSError:
            pass
        while True:  # the process lingers, unreachable, until killed
            time.sleep(3600.0)


class SlowCellChaos(ProcessChaos):
    """The cell is delayed but completes: the watchdog must tolerate it.

    The delay scales with intensity (``max_delay_s`` at 1.0), mirroring the
    frame injectors' fixed-budget-scaled-damage rule; a slow cell under the
    deadline must produce byte-identical results to an undelayed run.
    """

    name = "slow-cell"

    def __init__(
        self, intensity: float, seed: int = 0, max_delay_s: float = 2.0
    ) -> None:
        super().__init__(intensity, seed=seed)
        if not max_delay_s > 0:
            raise FaultInjectionError(
                f"max_delay_s must be positive, got {max_delay_s!r}"
            )
        self.max_delay_s = float(max_delay_s)

    def _strike(self, cell_index: int, attempt: int) -> None:
        time.sleep(self.max_delay_s * self.intensity)


#: Canonical name -> chaos class, the vocabulary of ``--chaos NAME:INTENSITY``.
CHAOS_REGISTRY: Dict[str, Type[ProcessChaos]] = {
    chaos.name: chaos
    for chaos in (
        WorkerCrashChaos,
        CellHangChaos,
        SlowCellChaos,
        WorkerPartitionChaos,
    )
}


def make_chaos(name: str, intensity: float, seed: int = 0) -> ProcessChaos:
    """Instantiate a registered chaos injector by its canonical name."""
    try:
        cls = CHAOS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CHAOS_REGISTRY))
        raise FaultInjectionError(
            f"unknown chaos injector {name!r}; known injectors: {known}"
        ) from None
    return cls(intensity, seed=seed)


def parse_chaos_spec(spec: str, seed: int = 0) -> ProcessChaos:
    """Parse a ``NAME:INTENSITY`` CLI spec into a chaos instance."""
    name, separator, raw_intensity = spec.partition(":")
    if not separator or not name or not raw_intensity:
        raise FaultInjectionError(
            f"chaos spec must look like NAME:INTENSITY, got {spec!r}"
        )
    try:
        intensity = float(raw_intensity)
    except ValueError:
        raise FaultInjectionError(
            f"chaos intensity must be a number, got {raw_intensity!r} in {spec!r}"
        ) from None
    return make_chaos(name.strip(), intensity, seed=seed)


def parse_chaos_specs(specs, seed: int = 0) -> Tuple[ProcessChaos, ...]:
    """Parse a sequence of CLI chaos specs (order preserved)."""
    return tuple(parse_chaos_spec(spec, seed=seed) for spec in specs or ())
