"""CIELab conversion and ΔE color-difference metrics.

The ColorBars receiver converts every frame to CIELab and drops the lightness
channel, matching symbols by Euclidean distance in the ab-plane with the
just-noticeable-difference threshold ΔE ≈ 2.3 (paper §7).  CIE76 in the
ab-plane is therefore the primary metric; CIE94 and CIEDE2000 are provided
for analysis and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.color.illuminants import ILLUMINANT_D65, WhitePoint

#: ΔE at which two colors become distinguishable to a human observer, and the
#: matching threshold used by the ColorBars demodulator.
JND_DELTA_E = 2.3

_DELTA = 6.0 / 29.0
_DELTA_CUBED = _DELTA**3


def _f(t: np.ndarray) -> np.ndarray:
    """The CIELab compression function (cube root with a linear toe)."""
    return np.where(t > _DELTA_CUBED, np.cbrt(t), t / (3 * _DELTA**2) + 4.0 / 29.0)


def _f_inverse(t: np.ndarray) -> np.ndarray:
    return np.where(t > _DELTA, t**3, 3 * _DELTA**2 * (t - 4.0 / 29.0))


def xyz_to_lab(xyz: np.ndarray, white: WhitePoint = ILLUMINANT_D65) -> np.ndarray:
    """Convert XYZ to CIELab relative to ``white`` (default D65).

    Accepts ``(..., 3)`` arrays; returns the same shape with channels
    ``(L, a, b)``.
    """
    xyz = np.asarray(xyz, dtype=float)
    ratios = xyz / white.XYZ
    fx = _f(ratios[..., 0])
    fy = _f(ratios[..., 1])
    fz = _f(ratios[..., 2])
    L = 116.0 * fy - 16.0
    a = 500.0 * (fx - fy)
    b = 200.0 * (fy - fz)
    return np.stack([L, a, b], axis=-1)


def lab_to_xyz(lab: np.ndarray, white: WhitePoint = ILLUMINANT_D65) -> np.ndarray:
    """Convert CIELab back to XYZ relative to ``white``."""
    lab = np.asarray(lab, dtype=float)
    fy = (lab[..., 0] + 16.0) / 116.0
    fx = fy + lab[..., 1] / 500.0
    fz = fy - lab[..., 2] / 200.0
    xyz = np.stack([_f_inverse(fx), _f_inverse(fy), _f_inverse(fz)], axis=-1)
    return xyz * white.XYZ


def delta_e_ab(ab1: np.ndarray, ab2: np.ndarray) -> np.ndarray:
    """Euclidean distance in the ab-plane (lightness removed).

    This is the demodulation metric from paper §7: brightness variation across
    the frame is discarded and only chroma distance matters.
    """
    ab1 = np.asarray(ab1, dtype=float)
    ab2 = np.asarray(ab2, dtype=float)
    return np.sqrt(np.sum((ab1 - ab2) ** 2, axis=-1))


def delta_e_cie76(lab1: np.ndarray, lab2: np.ndarray) -> np.ndarray:
    """Classic ΔE*_76: Euclidean distance in full Lab space."""
    lab1 = np.asarray(lab1, dtype=float)
    lab2 = np.asarray(lab2, dtype=float)
    return np.sqrt(np.sum((lab1 - lab2) ** 2, axis=-1))


def delta_e_cie94(lab1: np.ndarray, lab2: np.ndarray) -> np.ndarray:
    """ΔE*_94 (graphic-arts weights) — perceptually flatter than CIE76."""
    lab1 = np.asarray(lab1, dtype=float)
    lab2 = np.asarray(lab2, dtype=float)
    dL = lab1[..., 0] - lab2[..., 0]
    c1 = np.hypot(lab1[..., 1], lab1[..., 2])
    c2 = np.hypot(lab2[..., 1], lab2[..., 2])
    dC = c1 - c2
    da = lab1[..., 1] - lab2[..., 1]
    db = lab1[..., 2] - lab2[..., 2]
    dH_sq = np.maximum(da**2 + db**2 - dC**2, 0.0)
    sC = 1.0 + 0.045 * c1
    sH = 1.0 + 0.015 * c1
    return np.sqrt(dL**2 + (dC / sC) ** 2 + dH_sq / sH**2)


def delta_e_ciede2000(lab1: np.ndarray, lab2: np.ndarray) -> np.ndarray:
    """ΔE_00 — the CIEDE2000 color difference (Sharma et al. formulation)."""
    lab1 = np.asarray(lab1, dtype=float)
    lab2 = np.asarray(lab2, dtype=float)
    L1, a1, b1 = lab1[..., 0], lab1[..., 1], lab1[..., 2]
    L2, a2, b2 = lab2[..., 0], lab2[..., 1], lab2[..., 2]

    c1 = np.hypot(a1, b1)
    c2 = np.hypot(a2, b2)
    c_bar = 0.5 * (c1 + c2)
    g = 0.5 * (1.0 - np.sqrt(c_bar**7 / (c_bar**7 + 25.0**7)))
    a1p = (1.0 + g) * a1
    a2p = (1.0 + g) * a2
    c1p = np.hypot(a1p, b1)
    c2p = np.hypot(a2p, b2)
    h1p = np.degrees(np.arctan2(b1, a1p)) % 360.0
    h2p = np.degrees(np.arctan2(b2, a2p)) % 360.0

    dLp = L2 - L1
    dCp = c2p - c1p

    h_diff = h2p - h1p
    dhp = np.where(
        np.abs(h_diff) <= 180.0,
        h_diff,
        np.where(h_diff > 180.0, h_diff - 360.0, h_diff + 360.0),
    )
    dhp = np.where(c1p * c2p == 0.0, 0.0, dhp)
    dHp = 2.0 * np.sqrt(c1p * c2p) * np.sin(np.radians(dhp) / 2.0)

    Lp_bar = 0.5 * (L1 + L2)
    Cp_bar = 0.5 * (c1p + c2p)
    h_sum = h1p + h2p
    hp_bar = np.where(
        c1p * c2p == 0.0,
        h_sum,
        np.where(
            np.abs(h1p - h2p) <= 180.0,
            0.5 * h_sum,
            np.where(h_sum < 360.0, 0.5 * (h_sum + 360.0), 0.5 * (h_sum - 360.0)),
        ),
    )

    t = (
        1.0
        - 0.17 * np.cos(np.radians(hp_bar - 30.0))
        + 0.24 * np.cos(np.radians(2.0 * hp_bar))
        + 0.32 * np.cos(np.radians(3.0 * hp_bar + 6.0))
        - 0.20 * np.cos(np.radians(4.0 * hp_bar - 63.0))
    )
    d_theta = 30.0 * np.exp(-(((hp_bar - 275.0) / 25.0) ** 2))
    rc = 2.0 * np.sqrt(Cp_bar**7 / (Cp_bar**7 + 25.0**7))
    sl = 1.0 + (0.015 * (Lp_bar - 50.0) ** 2) / np.sqrt(20.0 + (Lp_bar - 50.0) ** 2)
    sc = 1.0 + 0.045 * Cp_bar
    sh = 1.0 + 0.015 * Cp_bar * t
    rt = -np.sin(np.radians(2.0 * d_theta)) * rc

    return np.sqrt(
        (dLp / sl) ** 2
        + (dCp / sc) ** 2
        + (dHp / sh) ** 2
        + rt * (dCp / sc) * (dHp / sh)
    )
