"""CIE 1931 XYZ / xyY conversions.

All functions are vectorized: scalars, ``(3,)`` vectors, or ``(..., 3)``
arrays pass through with shape preserved.  Chromaticity ``(x, y)`` pairs are
``(..., 2)`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ColorSpaceError

#: Below this luminance/denominator magnitude a chromaticity is undefined.
_EPSILON = 1e-12


def XYZ_to_xyY(xyz: np.ndarray) -> np.ndarray:
    """Convert tristimulus XYZ to xyY (chromaticity + luminance).

    Black (X = Y = Z = 0) has no chromaticity; it maps to x = y = 0, Y = 0 so
    downstream code can treat it as an "OFF" sample.
    """
    xyz = np.asarray(xyz, dtype=float)
    total = xyz.sum(axis=-1, keepdims=True)
    safe = np.where(np.abs(total) < _EPSILON, 1.0, total)
    x = xyz[..., 0:1] / safe
    y = xyz[..., 1:2] / safe
    dark = np.abs(total) < _EPSILON
    x = np.where(dark, 0.0, x)
    y = np.where(dark, 0.0, y)
    return np.concatenate([x, y, xyz[..., 1:2]], axis=-1)


def xyY_to_XYZ(xyy: np.ndarray) -> np.ndarray:
    """Convert xyY back to tristimulus XYZ.

    Raises :class:`ColorSpaceError` for y = 0 with non-zero luminance, which
    has no finite XYZ representation.
    """
    xyy = np.asarray(xyy, dtype=float)
    x = xyy[..., 0]
    y = xyy[..., 1]
    Y = xyy[..., 2]
    invalid = (np.abs(y) < _EPSILON) & (np.abs(Y) > _EPSILON)
    if np.any(invalid):
        raise ColorSpaceError("xyY point with y=0 but Y>0 has no XYZ representation")
    safe_y = np.where(np.abs(y) < _EPSILON, 1.0, y)
    X = x * Y / safe_y
    Z = (1.0 - x - y) * Y / safe_y
    X = np.where(np.abs(y) < _EPSILON, 0.0, X)
    Z = np.where(np.abs(y) < _EPSILON, 0.0, Z)
    return np.stack([X, Y, Z], axis=-1)


def XYZ_to_xy(xyz: np.ndarray) -> np.ndarray:
    """Project XYZ onto the chromaticity plane, dropping luminance."""
    return XYZ_to_xyY(xyz)[..., :2]


def xy_to_XYZ(xy: np.ndarray, Y: float = 1.0) -> np.ndarray:
    """Lift a chromaticity point to XYZ at luminance ``Y`` (default 1)."""
    xy = np.asarray(xy, dtype=float)
    Y_arr = np.broadcast_to(np.asarray(Y, dtype=float), xy[..., 0].shape)
    xyy = np.concatenate(
        [xy, Y_arr[..., np.newaxis]], axis=-1
    )
    return xyY_to_XYZ(xyy)
