"""Standard illuminant white points.

The transmitter designs its constellation around the equal-energy illuminant E
(the chromaticity produced when the three LEDs emit in equal proportion is
close to it), while sRGB decoding on the camera side references D65.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WhitePoint:
    """A reference white: CIE xy chromaticity plus the implied XYZ at Y=1."""

    name: str
    x: float
    y: float

    @property
    def xy(self) -> tuple:
        """Chromaticity coordinates as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    @property
    def XYZ(self) -> np.ndarray:
        """Tristimulus values normalised to luminance Y = 1."""
        scale = 1.0 / self.y
        return np.array(
            [self.x * scale, 1.0, (1.0 - self.x - self.y) * scale], dtype=float
        )


#: CIE standard illuminant D65 — the sRGB reference white (average daylight).
ILLUMINANT_D65 = WhitePoint("D65", 0.31271, 0.32902)

#: CIE standard illuminant E — the equal-energy point (x = y = 1/3).
ILLUMINANT_E = WhitePoint("E", 1.0 / 3.0, 1.0 / 3.0)

#: CIE standard illuminant A — incandescent, used for ambient-light modelling.
ILLUMINANT_A = WhitePoint("A", 0.44757, 0.40745)
