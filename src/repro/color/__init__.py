"""CIE color science substrate.

ColorBars modulates data as chromaticity points in the CIE 1931 xy diagram
(transmitter side) and demodulates in CIELab's ab-plane (receiver side).
This package implements the full conversion chain used by both ends:

``xy + Y  <->  XYZ  <->  linear RGB  <->  sRGB``  and  ``XYZ -> CIELab``

plus the color-difference metrics (ΔE) and the gamut-triangle geometry used
for constellation design.
"""

from repro.color.chromaticity import (
    ChromaticityPoint,
    GamutTriangle,
    barycentric_coordinates,
    point_in_triangle,
)
from repro.color.cielab import (
    delta_e_ab,
    delta_e_cie76,
    delta_e_cie94,
    delta_e_ciede2000,
    lab_to_xyz,
    xyz_to_lab,
)
from repro.color.ciexyz import (
    xyY_to_XYZ,
    XYZ_to_xy,
    XYZ_to_xyY,
    xy_to_XYZ,
)
from repro.color.illuminants import (
    ILLUMINANT_D65,
    ILLUMINANT_E,
    WhitePoint,
)
from repro.color.srgb import (
    linear_to_srgb,
    srgb_to_linear,
    srgb_to_xyz,
    xyz_to_srgb,
)

__all__ = [
    "ChromaticityPoint",
    "GamutTriangle",
    "barycentric_coordinates",
    "point_in_triangle",
    "delta_e_ab",
    "delta_e_cie76",
    "delta_e_cie94",
    "delta_e_ciede2000",
    "lab_to_xyz",
    "xyz_to_lab",
    "xyY_to_XYZ",
    "XYZ_to_xy",
    "XYZ_to_xyY",
    "xy_to_XYZ",
    "ILLUMINANT_D65",
    "ILLUMINANT_E",
    "WhitePoint",
    "linear_to_srgb",
    "srgb_to_linear",
    "srgb_to_xyz",
    "xyz_to_srgb",
]
