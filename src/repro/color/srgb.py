"""sRGB <-> linear RGB <-> XYZ conversions.

The camera simulator produces linear sensor RGB which is gamma-encoded into
sRGB frames (what a phone's image pipeline hands to the app); the receiver
reverses the chain on its way to CIELab.  Matrices are the IEC 61966-2-1
sRGB/D65 primaries.
"""

from __future__ import annotations

import numpy as np

#: Linear RGB -> XYZ for sRGB primaries, D65 white.
SRGB_TO_XYZ_MATRIX = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ]
)

#: XYZ -> linear RGB; the inverse of :data:`SRGB_TO_XYZ_MATRIX`.
XYZ_TO_SRGB_MATRIX = np.linalg.inv(SRGB_TO_XYZ_MATRIX)


def srgb_to_linear(srgb: np.ndarray) -> np.ndarray:
    """Decode gamma: sRGB values in [0, 1] to linear-light RGB."""
    srgb = np.asarray(srgb, dtype=float)
    low = srgb <= 0.04045
    return np.where(low, srgb / 12.92, ((srgb + 0.055) / 1.055) ** 2.4)


def _byte_to_linear_table() -> np.ndarray:
    table = srgb_to_linear(np.arange(256) / 255.0)
    table.flags.writeable = False
    return table


#: ``SRGB_BYTE_TO_LINEAR[byte]`` == ``srgb_to_linear(byte / 255.0)`` exactly:
#: an 8-bit sRGB image has only 256 distinct channel values, so the receive
#: path decodes gamma by table lookup instead of evaluating the power law
#: per pixel — bitwise-identical by construction.
SRGB_BYTE_TO_LINEAR = _byte_to_linear_table()


def linear_to_srgb(linear: np.ndarray) -> np.ndarray:
    """Encode gamma: linear-light RGB to sRGB in [0, 1].

    Inputs are clipped to [0, 1] first — the camera pipeline saturates rather
    than producing out-of-range pixel values.
    """
    linear = np.clip(np.asarray(linear, dtype=float), 0.0, 1.0)
    low = linear <= 0.0031308
    return np.where(low, linear * 12.92, 1.055 * np.power(linear, 1.0 / 2.4) - 0.055)


def linear_rgb_to_xyz(rgb: np.ndarray) -> np.ndarray:
    """Linear sRGB-primary RGB to CIE XYZ."""
    rgb = np.asarray(rgb, dtype=float)
    return rgb @ SRGB_TO_XYZ_MATRIX.T


def xyz_to_linear_rgb(xyz: np.ndarray) -> np.ndarray:
    """CIE XYZ to linear sRGB-primary RGB (may be out of [0,1] gamut)."""
    xyz = np.asarray(xyz, dtype=float)
    return xyz @ XYZ_TO_SRGB_MATRIX.T


def srgb_to_xyz(srgb: np.ndarray) -> np.ndarray:
    """Gamma-encoded sRGB in [0, 1] to CIE XYZ."""
    return linear_rgb_to_xyz(srgb_to_linear(srgb))


def xyz_to_srgb(xyz: np.ndarray) -> np.ndarray:
    """CIE XYZ to gamma-encoded sRGB, clipped into [0, 1]."""
    return linear_to_srgb(xyz_to_linear_rgb(xyz))
