"""Chromaticity-plane geometry: points, gamut triangles, barycentric math.

A tri-LED can produce exactly the chromaticities inside the triangle whose
vertices are its red, green and blue primaries.  CSK constellation design and
the xy -> per-LED-intensity solver both reduce to barycentric coordinates in
this triangle, implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.exceptions import GamutError
from repro.util.validation import require

#: Tolerance used when deciding whether a point is inside the gamut triangle.
_EDGE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ChromaticityPoint:
    """A point in the CIE 1931 xy chromaticity plane."""

    x: float
    y: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    def distance_to(self, other: "ChromaticityPoint") -> float:
        """Euclidean distance in the xy plane."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def __iter__(self):
        return iter((self.x, self.y))


def barycentric_coordinates(
    point: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Barycentric coordinates of ``point`` w.r.t. a 2-D triangle.

    ``vertices`` is a ``(3, 2)`` array; returns ``(3,)`` weights summing to 1.
    Weights are negative when the point lies outside the triangle.
    """
    vertices = np.asarray(vertices, dtype=float)
    point = np.asarray(point, dtype=float)
    require(vertices.shape == (3, 2), f"vertices must be (3, 2), got {vertices.shape}")
    a, b, c = vertices
    v0 = b - a
    v1 = c - a
    v2 = point - a
    d00 = v0 @ v0
    d01 = v0 @ v1
    d11 = v1 @ v1
    d20 = v2 @ v0
    d21 = v2 @ v1
    denom = d00 * d11 - d01 * d01
    if abs(denom) < 1e-15:
        raise GamutError("degenerate gamut triangle: primaries are collinear")
    v = (d11 * d20 - d01 * d21) / denom
    w = (d00 * d21 - d01 * d20) / denom
    u = 1.0 - v - w
    return np.array([u, v, w])


def point_in_triangle(point: np.ndarray, vertices: np.ndarray) -> bool:
    """Whether ``point`` lies inside (or on the edge of) the triangle."""
    weights = barycentric_coordinates(point, vertices)
    return bool(np.all(weights >= -_EDGE_TOLERANCE))


class GamutTriangle:
    """The chromaticity gamut of a tri-LED emitter.

    Constructed from the red, green and blue primary chromaticities; provides
    containment tests, the centroid (the "white" the LED produces with equal
    per-primary luminance), and interpolation helpers used by constellation
    design.
    """

    def __init__(
        self,
        red: ChromaticityPoint,
        green: ChromaticityPoint,
        blue: ChromaticityPoint,
    ) -> None:
        self.red = red
        self.green = green
        self.blue = blue
        self._vertices = np.array(
            [red.as_array(), green.as_array(), blue.as_array()]
        )
        # Validate non-degeneracy up front.
        barycentric_coordinates(self.centroid().as_array(), self._vertices)

    @property
    def vertices(self) -> np.ndarray:
        """``(3, 2)`` array of (R, G, B) primary chromaticities."""
        return self._vertices.copy()

    def centroid(self) -> ChromaticityPoint:
        """The equal-weight mixture point of the three primaries."""
        center = self._vertices.mean(axis=0)
        return ChromaticityPoint(float(center[0]), float(center[1]))

    def contains(self, point: ChromaticityPoint, tolerance: float = _EDGE_TOLERANCE) -> bool:
        """Whether the chromaticity is reproducible by this emitter."""
        weights = barycentric_coordinates(point.as_array(), self._vertices)
        return bool(np.all(weights >= -tolerance))

    def mixing_weights(self, point: ChromaticityPoint) -> np.ndarray:
        """Relative luminance shares of (R, G, B) that reproduce ``point``.

        Raises :class:`GamutError` if the point is outside the triangle; the
        weights sum to 1.
        """
        weights = barycentric_coordinates(point.as_array(), self._vertices)
        if np.any(weights < -_EDGE_TOLERANCE):
            raise GamutError(
                f"chromaticity ({point.x:.4f}, {point.y:.4f}) is outside the "
                "emitter gamut triangle"
            )
        clipped = np.clip(weights, 0.0, None)
        return clipped / clipped.sum()

    def interpolate(self, weights: Iterable[float]) -> ChromaticityPoint:
        """Chromaticity produced by the given (R, G, B) luminance shares."""
        w = np.asarray(list(weights), dtype=float)
        require(w.shape == (3,), f"weights must have 3 entries, got {w.shape}")
        require(np.all(w >= 0), f"weights must be non-negative, got {w}")
        total = w.sum()
        require(total > 0, "weights must not all be zero")
        point = (w / total) @ self._vertices
        return ChromaticityPoint(float(point[0]), float(point[1]))

    def grid_points(self, subdivisions: int) -> List[ChromaticityPoint]:
        """Triangular lattice of points with ``subdivisions`` steps per edge.

        ``subdivisions = n`` yields the (n+1)(n+2)/2 barycentric lattice points;
        this is the scaffold the 802.15.7-style constellations are drawn from.
        """
        require(subdivisions >= 1, f"subdivisions must be >= 1, got {subdivisions}")
        points: List[ChromaticityPoint] = []
        n = subdivisions
        for i in range(n + 1):
            for j in range(n + 1 - i):
                k = n - i - j
                weights = np.array([i, j, k], dtype=float) / n
                xy = weights @ self._vertices
                points.append(ChromaticityPoint(float(xy[0]), float(xy[1])))
        return points

    def min_pairwise_distance(self, points: Iterable[ChromaticityPoint]) -> float:
        """Smallest inter-point xy distance — the constellation's noise margin."""
        pts = [p.as_array() for p in points]
        require(len(pts) >= 2, "need at least two points")
        best = float("inf")
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                dist = float(np.hypot(*(pts[i] - pts[j])))
                best = min(best, dist)
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GamutTriangle(R=({self.red.x:.3f},{self.red.y:.3f}), "
            f"G=({self.green.x:.3f},{self.green.y:.3f}), "
            f"B=({self.blue.x:.3f},{self.blue.y:.3f}))"
        )


def max_min_distance_subset(
    candidates: List[ChromaticityPoint],
    count: int,
    anchors: Tuple[ChromaticityPoint, ...] = (),
) -> List[ChromaticityPoint]:
    """Greedy max-min-distance selection of ``count`` points from ``candidates``.

    Starts from the ``anchors`` (always included, e.g. the three primaries)
    and repeatedly adds the candidate farthest from the current set.  Used to
    derive higher-order constellations on the triangular lattice.
    """
    require(count >= 1, f"count must be >= 1, got {count}")
    require(
        len(candidates) + len(anchors) >= count,
        f"cannot choose {count} points from {len(candidates)} candidates",
    )
    chosen: List[ChromaticityPoint] = list(anchors)
    remaining = [c for c in candidates if all(c.distance_to(a) > 1e-12 for a in chosen)]
    if not chosen and remaining:
        chosen.append(remaining.pop(0))
    while len(chosen) < count:
        best_idx = -1
        best_dist = -1.0
        for idx, candidate in enumerate(remaining):
            nearest = min(candidate.distance_to(p) for p in chosen)
            if nearest > best_dist:
                best_dist = nearest
                best_idx = idx
        chosen.append(remaining.pop(best_idx))
    return chosen[:count]
