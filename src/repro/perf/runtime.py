"""Resilient sweep runtime: watchdogs, crash containment, retry, journal.

The PR 3 executor (:mod:`repro.perf.executor`) made sweeps *fast*; this
module makes them *survivable*.  ``run_specs`` fans cells out through a
bare ``pool.map``, so one hung cell stalls a sweep forever, one dead worker
raises ``BrokenProcessPool`` and discards every finished result, and an
interrupted two-hour grid restarts from zero.  :func:`run_specs_resilient`
wraps the same seeded-cell model in four protections:

* **Watchdog timeouts** — every cell runs under a deadline
  (``cell_timeout_s``, or the ``COLORBARS_CELL_TIMEOUT`` environment
  switch).  An overdue cell is killed with its pool and recorded; the sweep
  never hangs.  Deadlines are measured from dispatch-to-worker, a
  conservative overestimate of pure compute time (in-flight submissions are
  capped at the pool width, so queueing never inflates a deadline by more
  than one cell).
* **Crash containment** — a dead worker (``BrokenProcessPool``) or a cell
  exception becomes a structured :class:`~repro.exceptions.CellFailure`
  (spec fingerprint, attempt count, cause taxonomy crash/timeout/error),
  the pool is rebuilt, and the remaining cells continue.  Sweeps return
  degraded results instead of dying.
* **Bounded retry with deterministic backoff** — failed cells retry up to
  ``max_attempts`` times.  The backoff schedule is seed-stable (a pure
  function of the cell's seed and the attempt number), and a retried cell
  re-derives *all* of its randomness from its own seed, so retries cannot
  change any result — the executor's bit-identical-to-serial contract holds
  by construction.
* **Journaled checkpoint/resume** — a JSONL :class:`RunJournal` keyed by
  :func:`spec_fingerprint` records each completed cell as it finishes;
  ``resume=True`` skips already-journaled cells, so a killed sweep resumes
  where it stopped and the resumed result set is byte-identical to an
  uninterrupted run.

Process-level chaos (:mod:`repro.faults.chaos`) tests all of this the way
PR 2's frame injectors tested the receiver: the runtime ships the chaos
tuple to each worker, and — because a ``worker-crash`` in-process would
take the caller down — forces process isolation whenever chaos, a timeout,
or ``workers > 1`` is configured.  A plain ``workers=1`` run with neither
stays fully in-process, exactly like the fast path.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.camera.devices import DeviceProfile
from repro.exceptions import CellFailure, ConfigurationError, JournalError
from repro.faults.chaos import ProcessChaos
from repro.link.multi import FleetReport, fleet_report_from_results, fleet_specs
from repro.link.simulator import LinkResult, RunSpec
from repro.obs.schema import (
    M_CELLS_COMPLETED,
    M_CELLS_FAILED,
    M_CELLS_RESUMED,
    M_CELLS_RETRIED,
    M_SWEEP_WORKERS,
)
from repro.perf.executor import _process_cache, resolve_workers
from repro.util.rng import derive_rng, make_rng

#: Environment switch: ``COLORBARS_CELL_TIMEOUT=120`` puts every sweep cell
#: under a two-minute watchdog unless the call pins an explicit policy.
CELL_TIMEOUT_ENV = "COLORBARS_CELL_TIMEOUT"

#: Journal record layout version; bump when the record shape changes.
JOURNAL_SCHEMA_VERSION = 1

#: Pickle protocol pinned for stable fingerprints and journal payloads.
_PICKLE_PROTOCOL = 4

#: Poll interval of the supervision loop, seconds.
_TICK_S = 0.1


def default_cell_timeout() -> Optional[float]:
    """Watchdog deadline from :data:`CELL_TIMEOUT_ENV`, or ``None`` (off)."""
    raw = os.environ.get(CELL_TIMEOUT_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{CELL_TIMEOUT_ENV} must be a positive number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"{CELL_TIMEOUT_ENV} must be a positive number of seconds, got {raw!r}"
        )
    return value


def spec_fingerprint(spec: RunSpec) -> str:
    """A stable content hash of one cell: the journal/failure identity.

    Two specs built from the same parameters fingerprint identically (the
    hash covers the pickled value object — config, device, channel, seed,
    columns, faults, payload, duration), so a resumed sweep recognizes its
    own cells across processes and sessions.
    """
    return hashlib.sha256(
        pickle.dumps(spec, protocol=_PICKLE_PROTOCOL)
    ).hexdigest()


@dataclass(frozen=True)
class RuntimePolicy:
    """Resilience knobs for one sweep execution.

    ``cell_timeout_s=None`` disables the watchdog; ``max_attempts=1``
    disables retry; an empty ``chaos`` tuple injects nothing.  The default
    policy is therefore exactly the PR 3 behavior plus containment.
    """

    cell_timeout_s: Optional[float] = None
    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    chaos: Tuple[ProcessChaos, ...] = ()

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and not self.cell_timeout_s > 0:
            raise ConfigurationError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s!r}"
            )
        if int(self.max_attempts) != self.max_attempts or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        if self.backoff_base_s < 0:
            raise ConfigurationError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s!r}"
            )
        if self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    def needs_isolation(self) -> bool:
        """Whether cells must run in worker processes even at ``workers=1``.

        A watchdog can only cancel a cell it can kill, and process chaos
        must never strike the caller's own process.
        """
        return self.cell_timeout_s is not None or bool(self.chaos)


def backoff_delay_s(policy: RuntimePolicy, spec_seed: int, attempt: int) -> float:
    """Seed-stable delay before retry ``attempt`` (attempt numbering from 2).

    Exponential in the attempt number with a deterministic jitter derived
    from the cell's own seed — two runs of the same sweep back off on the
    same schedule, and cells with different seeds desynchronize instead of
    thundering back in lockstep.
    """
    if policy.backoff_base_s <= 0.0:
        return 0.0
    delay = policy.backoff_base_s * policy.backoff_factor ** max(0, attempt - 2)
    jitter = derive_rng(
        make_rng(spec_seed), f"runtime:backoff:attempt:{attempt}"
    ).random()
    return float(delay * (1.0 + 0.25 * float(jitter)))


class RunJournal:
    """Append-only JSONL checkpoint of completed cells, keyed by fingerprint.

    Each line is a self-describing record::

        {"schema": 1, "fingerprint": "<sha256>", "result": "<base64 pickle>"}

    Appends flush per cell, so a killed sweep loses at most the cell that
    was mid-write; :meth:`load` skips unparseable (truncated) lines rather
    than failing resume — an unreadable cell simply reruns.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, LinkResult]:
        """Fingerprint -> result for every readable journaled cell."""
        entries: Dict[str, LinkResult] = {}
        if not self.path.exists():
            return entries
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated mid-write; the cell just reruns
            if not isinstance(record, dict):
                continue
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA_VERSION:
                raise JournalError(
                    f"journal {self.path} has schema {schema!r}, "
                    f"expected {JOURNAL_SCHEMA_VERSION}"
                )
            try:
                fingerprint = record["fingerprint"]
                result = pickle.loads(base64.b64decode(record["result"]))
            except Exception:  # corrupt payload: rerun that cell
                continue
            if isinstance(fingerprint, str) and isinstance(result, LinkResult):
                entries[fingerprint] = result
        return entries

    def append(self, fingerprint: str, result: LinkResult) -> None:
        """Record one completed cell (flushed immediately)."""
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "result": base64.b64encode(
                pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
            ).decode("ascii"),
        }
        try:
            with self.path.open("a", encoding="ascii") as handle:
                handle.write(json.dumps(record) + "\n")
                handle.flush()
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}") from exc

    def discard(self) -> None:
        """Delete the journal file (fresh non-resume runs start clean)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise JournalError(f"cannot reset journal {self.path}: {exc}") from exc


@dataclass
class RuntimeResult:
    """What a resilient sweep produced: results in spec order, plus damage.

    ``results[i]`` is ``None`` exactly when spec ``i`` has a matching entry
    in ``failures``; ``resumed`` counts cells satisfied from the journal
    without re-execution.
    """

    results: List[Optional[LinkResult]]
    failures: List[CellFailure] = field(default_factory=list)
    resumed: int = 0
    #: Backend-driven sweeps only: per spec, the shard that ran it (``None``
    #: for resumed cells); ``None`` altogether on the classic runtime path.
    shard_of: Optional[List[Optional[int]]] = None

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result is not None)

    def failure_summary(self) -> str:
        """One line for CLI/reports: how many cells failed, and why."""
        if not self.failures:
            return f"ok: {self.completed}/{len(self.results)} cells completed"
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.cause] = counts.get(failure.cause, 0) + 1
        causes = ", ".join(
            f"{cause}={count}" for cause, count in sorted(counts.items())
        )
        return (
            f"degraded: {len(self.failures)}/{len(self.results)} cells failed "
            f"({causes})"
        )


@dataclass
class _Cell:
    """Mutable supervision state for one spec while the runtime runs it."""

    index: int
    spec: RunSpec
    fingerprint: str
    attempt: int = 1
    #: Dispatch time of the current attempt (watchdog reference), or None.
    started_at: Optional[float] = None
    #: Earliest monotonic time the next attempt may be submitted (backoff).
    ready_at: float = 0.0


def _annotate_trace(result: LinkResult, index: int, attempt: int) -> LinkResult:
    """Stamp cell position/attempt onto an observed result's root span.

    Attributes only — span *structure* stays a pure function of the spec,
    which is what keeps serial and parallel trees identical.
    """
    trace = getattr(result, "trace", None)
    if trace:
        trace[0].set("cell_index", index)
        trace[0].set("attempt", attempt)
    return result


def _execute_cell(
    index: int,
    spec: RunSpec,
    attempt: int,
    chaos: Tuple[ProcessChaos, ...],
    observe: bool = False,
) -> LinkResult:
    """Worker-side cell entry point: chaos first, then the real run."""
    for injector in chaos:
        injector.before_cell(cell_index=index, attempt=attempt)
    result = spec.execute(planner=_process_cache(), observe=observe)
    return _annotate_trace(result, index, attempt)


def record_sweep_metrics(
    metrics,
    results: Sequence[Optional[LinkResult]],
    failures: Sequence[CellFailure],
    retried: int,
    resumed: int,
    workers: int,
) -> None:
    """Fold one sweep's runtime counters and per-cell exports into ``metrics``.

    Shared by the classic runtime path and the backend driver
    (:mod:`repro.perf.backends.driver`), so both report the same
    ``colorbars.sweep.*`` vocabulary for the same sweep.
    """
    metrics.gauge(M_SWEEP_WORKERS).set(workers)
    completed = sum(1 for result in results if result is not None)
    metrics.counter(M_CELLS_COMPLETED).inc(completed)
    metrics.counter(M_CELLS_FAILED).inc(len(failures))
    metrics.counter(M_CELLS_RETRIED).inc(retried)
    metrics.counter(M_CELLS_RESUMED).inc(resumed)
    for result in results:
        exported = getattr(result, "obs_metrics", None)
        if exported:
            metrics.merge_export(exported)


def run_specs_resilient(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
    journal=None,
    resume: bool = False,
    observe: bool = False,
    metrics=None,
    backend=None,
) -> RuntimeResult:
    """Execute ``specs`` with watchdogs, containment, retry, and journaling.

    ``workers=None`` consults ``COLORBARS_WORKERS`` (clamped to the cell
    count); ``policy=None`` builds a default whose watchdog comes from
    ``COLORBARS_CELL_TIMEOUT``.  ``journal`` is a path or :class:`RunJournal`;
    without ``resume`` an existing journal file is discarded first, with
    ``resume`` its cells are spliced into the results unrun.  Successful
    cells are byte-identical to :func:`repro.perf.executor.run_specs` —
    resilience only changes what happens to the unsuccessful ones.

    ``observe=True`` records each executed cell into a cell-local tracer
    and registry, attached to the results (``trace``/``obs_metrics``) —
    and therefore carried by the journal, so resumed cells keep their
    original traces.  Passing a :class:`repro.obs.metrics.MetricsRegistry`
    as ``metrics`` implies ``observe``: every cell's export is merged into
    it, plus the runtime's own counters (cells completed/failed/retried/
    resumed, worker gauge).

    ``backend`` swaps the execution engine for a distributed sweep
    backend (:mod:`repro.perf.backends`): a backend name spec
    (``"pool:workers=4"``, constructed and closed here) or a live
    :class:`~repro.perf.backends.base.SweepBackend` (caller keeps
    ownership).  ``backend=None`` is the classic supervised path,
    byte-identical to every release since PR 4.
    """
    specs = list(specs)
    if metrics is not None:
        observe = True
    if policy is None:
        policy = RuntimePolicy(cell_timeout_s=default_cell_timeout())
    if backend is not None:
        # Imported lazily: repro.perf.backends imports this module.
        from repro.perf.backends import make_backend, run_specs_sharded

        if isinstance(backend, str):
            with make_backend(
                backend, policy=policy, workers=workers, observe=observe
            ) as owned:
                return run_specs_sharded(
                    specs, owned, journal=journal, resume=resume,
                    observe=observe, metrics=metrics,
                )
        return run_specs_sharded(
            specs, backend, journal=journal, resume=resume,
            observe=observe, metrics=metrics,
        )
    workers = resolve_workers(workers, cell_count=len(specs))
    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)

    results: List[Optional[LinkResult]] = [None] * len(specs)
    failures: List[CellFailure] = []
    journaled: Dict[str, LinkResult] = {}
    if journal is not None:
        if resume:
            journaled = journal.load()
        else:
            journal.discard()

    resumed = 0
    cells: List[_Cell] = []
    for index, spec in enumerate(specs):
        fingerprint = spec_fingerprint(spec)
        prior = journaled.get(fingerprint)
        if prior is not None:
            results[index] = prior
            resumed += 1
        else:
            cells.append(_Cell(index=index, spec=spec, fingerprint=fingerprint))

    stats = {"retried": 0}
    if cells:
        if workers > 1 or policy.needs_isolation():
            _run_isolated(
                cells, workers, policy, journal, results, failures,
                observe=observe, stats=stats,
            )
        else:
            _run_inline(
                cells, policy, journal, results, failures,
                observe=observe, stats=stats,
            )

    if metrics is not None:
        record_sweep_metrics(
            metrics, results, failures,
            retried=stats["retried"], resumed=resumed, workers=workers,
        )
    return RuntimeResult(results=results, failures=failures, resumed=resumed)


def _record_success(
    cell: _Cell,
    result: LinkResult,
    journal: Optional[RunJournal],
    results: List[Optional[LinkResult]],
) -> None:
    results[cell.index] = result
    if journal is not None:
        journal.append(cell.fingerprint, result)


def _failure(cell: _Cell, cause: str, error_type: str, message: str) -> CellFailure:
    return CellFailure(
        fingerprint=cell.fingerprint,
        index=cell.index,
        cause=cause,
        attempts=cell.attempt,
        error_type=error_type,
        message=message,
    )


def _retry_or_fail(
    cell: _Cell,
    cause: str,
    error_type: str,
    message: str,
    pending: Deque[_Cell],
    failures: List[CellFailure],
    policy: RuntimePolicy,
    now: float,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """Requeue the cell for its next attempt, or record its final failure."""
    if cell.attempt < policy.max_attempts:
        cell.ready_at = now + backoff_delay_s(policy, cell.spec.seed, cell.attempt + 1)
        cell.attempt += 1
        cell.started_at = None
        pending.append(cell)
        if stats is not None:
            stats["retried"] = stats.get("retried", 0) + 1
    else:
        failures.append(_failure(cell, cause, error_type, message))


def _run_inline(
    cells: List[_Cell],
    policy: RuntimePolicy,
    journal: Optional[RunJournal],
    results: List[Optional[LinkResult]],
    failures: List[CellFailure],
    observe: bool = False,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """The fully in-process path: no pool, no watchdog, still contained."""
    cache = _process_cache()
    for cell in cells:
        while True:
            try:
                result = _annotate_trace(
                    cell.spec.execute(planner=cache, observe=observe),
                    cell.index,
                    cell.attempt,
                )
            except Exception as exc:
                if cell.attempt < policy.max_attempts:
                    time.sleep(
                        backoff_delay_s(policy, cell.spec.seed, cell.attempt + 1)
                    )
                    cell.attempt += 1
                    if stats is not None:
                        stats["retried"] = stats.get("retried", 0) + 1
                    continue
                failures.append(
                    _failure(cell, "error", type(exc).__name__, str(exc))
                )
                break
            _record_success(cell, result, journal, results)
            break


def _teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool hard: terminate every worker, then release the executor.

    ``shutdown`` alone cannot clear a hung worker — the hang *is* the
    running task — so the watchdog terminates the processes first; the
    executor's management thread then observes the deaths and unblocks.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=True, cancel_futures=True)


def _run_isolated(
    cells: List[_Cell],
    workers: int,
    policy: RuntimePolicy,
    journal: Optional[RunJournal],
    results: List[Optional[LinkResult]],
    failures: List[CellFailure],
    observe: bool = False,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """The supervised pool path: watchdog, crash containment, retry.

    In-flight submissions are capped at the pool width, so (a) a broken
    pool takes down at most ``workers`` attempts, and (b) a cell's deadline
    starts when a worker slot is actually dedicated to it.  Cells caught in
    a teardown they did not cause (pool-mates of a crasher or a hung cell
    observed before their own deadline) are resubmitted at the *same*
    attempt number — only a cell's own crash, timeout, or error consumes
    one of its attempts.
    """
    pending: Deque[_Cell] = deque(cells)
    active: Dict[Future, _Cell] = {}
    pool: Optional[ProcessPoolExecutor] = None
    pool_width = 0
    try:
        while pending or active:
            now = time.monotonic()
            if pool is None and any(c.ready_at <= now for c in pending):
                pool_width = max(1, min(workers, len(pending)))
                pool = ProcessPoolExecutor(max_workers=pool_width)
            while pool is not None and len(active) < pool_width:
                cell = next((c for c in pending if c.ready_at <= now), None)
                if cell is None:
                    break
                pending.remove(cell)
                cell.started_at = time.monotonic()
                future = pool.submit(
                    _execute_cell, cell.index, cell.spec, cell.attempt,
                    policy.chaos, observe,
                )
                active[future] = cell

            if not active:
                # Everything runnable is backing off; sleep to the gate.
                wake = min(c.ready_at for c in pending)
                time.sleep(max(0.0, min(wake - time.monotonic(), _TICK_S)))
                continue

            done, _ = futures_wait(
                set(active), timeout=_TICK_S, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broke = False
            for future in done:
                cell = active.pop(future)
                error = future.exception()
                if error is None:
                    _record_success(cell, future.result(), journal, results)
                elif isinstance(error, BrokenProcessPool):
                    pool_broke = True
                    _retry_or_fail(
                        cell, "crash", type(error).__name__,
                        "worker process died", pending, failures, policy, now,
                        stats,
                    )
                else:
                    _retry_or_fail(
                        cell, "error", type(error).__name__, str(error),
                        pending, failures, policy, now, stats,
                    )

            if pool_broke:
                # Every other in-flight attempt died with the pool; each
                # consumes an attempt (the crasher is indistinguishable
                # from its pool-mates once the pool is broken).
                for future, cell in list(active.items()):
                    _retry_or_fail(
                        cell, "crash", "BrokenProcessPool",
                        "worker process died", pending, failures, policy, now,
                        stats,
                    )
                active.clear()
                _teardown_pool(pool)
                pool = None
                continue

            if policy.cell_timeout_s is not None and active:
                overdue = [
                    (future, cell)
                    for future, cell in active.items()
                    if cell.started_at is not None
                    and now - cell.started_at > policy.cell_timeout_s
                ]
                if overdue:
                    for future, cell in overdue:
                        active.pop(future)
                        _retry_or_fail(
                            cell, "timeout", "TimeoutError",
                            f"cell exceeded {policy.cell_timeout_s:g}s watchdog "
                            f"deadline on attempt {cell.attempt}",
                            pending, failures, policy, now, stats,
                        )
                    for future, cell in list(active.items()):
                        # Innocent pool-mates: rerun at the same attempt.
                        cell.started_at = None
                        pending.append(cell)
                    active.clear()
                    _teardown_pool(pool)
                    pool = None
    finally:
        if pool is not None:
            _teardown_pool(pool)


def resilient_runner(
    workers: Optional[int] = None, policy: Optional[RuntimePolicy] = None
):
    """A :data:`~repro.link.simulator.Runner`-shaped resilient executor.

    Unlike :func:`repro.perf.executor.make_runner`, the returned callable
    yields ``RuntimeResult`` (results may contain ``None``); callers that
    need the plain ``Runner`` contract should keep using the fast path.
    """

    def runner(specs: Sequence[RunSpec]) -> RuntimeResult:
        return run_specs_resilient(specs, workers=workers, policy=policy)

    return runner


def resilient_fleet(
    devices: Sequence[DeviceProfile],
    workers: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
    journal=None,
    resume: bool = False,
    **fleet_kwargs,
) -> FleetReport:
    """The §8 fleet broadcast through the resilient runtime.

    Failed member runs surface as ``FleetReport.failures`` (and per-member
    ``failure`` records) instead of aborting the whole broadcast — the
    deployment question §8 asks survives a flaky worker.
    """
    compare_dedicated = fleet_kwargs.get("compare_dedicated", True)
    specs = fleet_specs(devices, **fleet_kwargs)
    outcome = run_specs_resilient(
        specs, workers=workers, policy=policy, journal=journal, resume=resume
    )
    return fleet_report_from_results(
        devices,
        specs,
        outcome.results,
        compare_dedicated=compare_dedicated,
        failures=outcome.failures,
    )
