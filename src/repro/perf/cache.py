"""Hot-path memoization: the transmitter plan and waveform per (config, payload).

Fleet broadcasts and resilience matrices run the *same* RS-encoded cycle
against many devices or fault cells; rebuilding the plan and waveform per
cell is pure waste.  :class:`PlanCache` memoizes both, keyed by a stable
fingerprint of every configuration field that influences the on-air cycle
plus the payload bytes.

Correctness rests on two facts:

* **Plan building is deterministic.**  The TX chain (RS encode, packetize,
  CSK modulate, PWM quantize) draws no randomness, so a cache hit returns a
  value the miss path would have rebuilt identically — memoization cannot
  change any run outcome, only skip work.
* **Cached values cannot leak mutable state.**  Each lookup returns a fresh
  shallow copy of the plan (its elements — symbols, codeword bytes — are
  immutable), and the shared waveform is frozen read-only
  (:meth:`~repro.phy.waveform.OpticalWaveform.freeze`), so one cell mutating
  its result cannot corrupt another cell's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter, TransmissionPlan
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.util.validation import require

#: A cache key: the config fingerprint plus the payload bytes.
CacheKey = Tuple[tuple, bytes]


def config_cache_key(config: SystemConfig) -> tuple:
    """A hashable fingerprint of everything that shapes the on-air cycle.

    Covers the packetizer inputs (order, rates, illumination ratio, gray
    mapping), the RS dimensioning inputs (loss ratio, frame rate), the
    constellation geometry, and the emitter's optical output (full-duty XYZ
    of each primary, symbol power, PWM quantization) — any field whose
    change would alter the plan or waveform changes the key.
    """
    emitter = config.emitter
    pwm = emitter.pwm
    return (
        config.csk_order,
        float(config.symbol_rate),
        float(config.design_loss_ratio),
        float(config.frame_rate),
        float(config.effective_illumination_ratio()),
        float(config.calibration_rate_hz),
        bool(config.gray_mapping),
        config.constellation.as_array().tobytes(),
        np.stack(
            [primary.xyz_at_full_duty for primary in emitter.primaries]
        ).tobytes(),
        float(emitter.default_symbol_power()),
        tuple(
            (channel.resolution_bits, float(channel.carrier_hz))
            for channel in pwm.channels
        ),
        float(pwm.max_update_hz),
    )


@dataclass
class _CacheEntry:
    plan: TransmissionPlan
    waveform: OpticalWaveform


class PlanCache:
    """Memoizes ``(config, payload) -> (TransmissionPlan, OpticalWaveform)``.

    Instances satisfy the :data:`repro.link.simulator.Planner` contract
    (they are callable), so one cache can be handed to many
    :class:`~repro.link.simulator.LinkSimulator` runs — the serial executor
    path shares one per sweep, the process-pool path one per worker.

    Entries are evicted FIFO beyond ``max_entries``, bounding memory for
    long heterogeneous sweeps.  ``hits``/``misses`` expose effectiveness.
    """

    def __init__(self, max_entries: int = 64) -> None:
        require(max_entries >= 1, f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: Whether the most recent lookup was a hit (``None`` before the
        #: first lookup).  The link layer reads this off the injected
        #: planner to annotate its ``tx-plan`` span without importing perf.
        self.last_hit: Optional[bool] = None
        self._entries: Dict[CacheKey, _CacheEntry] = {}

    def plan_and_waveform(
        self, config: SystemConfig, payload: bytes
    ) -> Tuple[TransmissionPlan, OpticalWaveform]:
        """The broadcast cycle for ``(config, payload)``, built at most once."""
        key: CacheKey = (config_cache_key(config), bytes(payload))
        entry = self._entries.get(key)
        self.last_hit = entry is not None
        if entry is None:
            self.misses += 1
            transmitter = ColorBarsTransmitter(config)
            plan = transmitter.plan(payload)
            waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE).freeze()
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            entry = _CacheEntry(plan=plan, waveform=waveform)
            self._entries[key] = entry
        else:
            self.hits += 1
        return _copy_plan(entry.plan), entry.waveform

    #: ``PlanCache`` instances are planners: ``planner(config, payload)``.
    __call__ = plan_and_waveform

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Effectiveness snapshot: hits, misses, and resident entries."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}


def _copy_plan(plan: TransmissionPlan) -> TransmissionPlan:
    """A fresh plan whose containers are private to the caller.

    Shallow copies suffice: the elements (``LogicalSymbol``, ``bytes``) are
    immutable, so list-level isolation is full isolation.
    """
    return TransmissionPlan(
        symbols=list(plan.symbols),
        codewords=list(plan.codewords),
        payload=plan.payload,
        calibration_packets=plan.calibration_packets,
        data_packets=plan.data_packets,
    )
