"""The process-pool backend: PR 3/4's supervised executor behind the interface.

This is the same supervised ``ProcessPoolExecutor`` loop the resilient
runtime has always used — watchdog deadlines, ``BrokenProcessPool``
containment, innocent-pool-mate resubmission, seed-stable retry — reused
verbatim (:func:`repro.perf.runtime._run_isolated` is the engine), with
two backend-contract adaptations:

* cells from *all* submitted shards feed one pool, so lanes stay busy
  even when shards are unevenly sized;
* journal appends are routed per cell back to the owning shard's journal
  (the runtime engine sees one duck-typed journal; the router fans out).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import CellFailure, ConfigurationError
from repro.link.simulator import LinkResult
from repro.perf.backends.base import (
    CellOutcome,
    Shard,
    SweepBackend,
    register_backend,
)
from repro.perf.executor import resolve_workers, validate_workers
from repro.perf.runtime import RunJournal, RuntimePolicy, _Cell, _run_isolated


class _ShardJournalRouter:
    """Duck-typed journal fanning each append out to its cell's shard journal.

    The runtime engine journals by calling ``journal.append(fingerprint,
    result)``; shards each own a separate journal file, so this maps the
    fingerprint back to the right one.  Cells of unjournaled shards are
    simply not checkpointed.
    """

    def __init__(self, routes: Dict[str, RunJournal]) -> None:
        self._routes = routes

    def append(self, fingerprint: str, result: LinkResult) -> None:
        journal = self._routes.get(fingerprint)
        if journal is not None:
            journal.append(fingerprint, result)


@register_backend
class PoolBackend(SweepBackend):
    """Supervised process-pool backend (``--backend pool[:workers=N]``)."""

    name = "pool"

    def __init__(
        self,
        policy: Optional[RuntimePolicy] = None,
        workers: Optional[int] = None,
        observe: bool = False,
    ) -> None:
        super().__init__(
            policy=policy, lanes=resolve_workers(workers), observe=observe
        )

    @classmethod
    def from_options(
        cls,
        options: Dict[str, str],
        policy: Optional[RuntimePolicy] = None,
        workers: Optional[int] = None,
        observe: bool = False,
    ) -> "PoolBackend":
        options = dict(options)
        raw = options.pop("workers", None)
        if options:
            raise ConfigurationError(
                f"backend {cls.name!r} only takes workers=N, "
                f"got {sorted(options)}"
            )
        if raw is not None:
            workers = validate_workers(raw, source="backend workers option")
        return cls(policy=policy, workers=workers, observe=observe)

    def _drain(self, shards: List[Shard]) -> List[CellOutcome]:
        cells: List[_Cell] = []
        routes: Dict[str, RunJournal] = {}
        for shard in shards:
            journal = shard.journal()
            for cell in shard.cells:
                cells.append(
                    _Cell(
                        index=cell.index,
                        spec=cell.spec,
                        fingerprint=cell.fingerprint,
                    )
                )
                if journal is not None:
                    routes[cell.fingerprint] = journal

        # The engine writes results keyed by cell index; a dict satisfies
        # the same subscript contract as the runtime's dense list.
        results: Dict[int, LinkResult] = {}
        failures: List[CellFailure] = []
        stats = {"retried": 0}
        _run_isolated(
            cells,
            self.lanes,
            self.policy,
            _ShardJournalRouter(routes) if routes else None,
            results,
            failures,
            observe=self.observe,
            stats=stats,
        )
        self.cells_retried += stats["retried"]

        failure_by_index = {failure.index: failure for failure in failures}
        outcomes: List[CellOutcome] = []
        for shard in shards:
            for cell in shard.cells:
                result = results.get(cell.index)
                failure = failure_by_index.get(cell.index)
                if result is None and failure is None:
                    continue  # a hole; the driver raises on it
                outcomes.append(
                    CellOutcome(
                        shard_id=shard.shard_id,
                        index=cell.index,
                        fingerprint=cell.fingerprint,
                        result=result,
                        failure=None if result is not None else failure,
                    )
                )
        return outcomes
