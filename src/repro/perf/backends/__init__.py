"""Pluggable distributed sweep backends (``--backend NAME[:OPTS]``).

The package splits distribution into two halves: backends
(:mod:`~repro.perf.backends.base`) only execute shards of cells, while
the driver (:mod:`~repro.perf.backends.driver`) owns fingerprints,
sharding, resume, journal merge, and observability — so every backend,
including third-party ones (see ``docs/BACKENDS.md``), inherits the
same byte-identical sweep semantics.

Importing this package registers the three built-in backends
(``inprocess``, ``pool``, ``remote``) with
:func:`~repro.perf.backends.base.make_backend`.
"""

from repro.perf.backends.base import (
    BACKEND_REGISTRY,
    CellOutcome,
    Shard,
    ShardCell,
    SweepBackend,
    make_backend,
    parse_backend_spec,
    register_backend,
)
from repro.perf.backends.driver import (
    MergeReport,
    assemble_backend_trace,
    existing_shard_journals,
    make_shards,
    merge_journals,
    run_specs_sharded,
    shard_journal_path,
)
from repro.perf.backends.inprocess import InProcessBackend
from repro.perf.backends.pool import PoolBackend
from repro.perf.backends.remote import RemoteBackend

__all__ = [
    "BACKEND_REGISTRY",
    "CellOutcome",
    "InProcessBackend",
    "MergeReport",
    "PoolBackend",
    "RemoteBackend",
    "Shard",
    "ShardCell",
    "SweepBackend",
    "assemble_backend_trace",
    "existing_shard_journals",
    "make_backend",
    "make_shards",
    "merge_journals",
    "parse_backend_spec",
    "register_backend",
    "run_specs_sharded",
    "shard_journal_path",
]
