"""The serial in-process backend: the reference every backend must match.

Cells run one shard at a time, one cell at a time, in the caller's own
process — no pool, no workers, no scheduling freedom — so its result
table *defines* correct output for the sweep.  ``pool`` and ``remote``
(and any third-party backend; see ``docs/BACKENDS.md``) are proven by
byte-comparing against this one.

Because there is no process boundary, this backend cannot enforce a
watchdog deadline and must never host process chaos (a ``worker-crash``
would take the caller down); policies that need isolation are rejected at
construction.  Per-cell exceptions are still contained and retried per
the policy, mirroring the runtime's inline path.
"""

from __future__ import annotations

import time
from typing import List

from repro.exceptions import CellFailure, ConfigurationError
from repro.perf.backends.base import (
    CellOutcome,
    Shard,
    SweepBackend,
    register_backend,
)
from repro.perf.executor import _process_cache
from repro.perf.runtime import RuntimePolicy, _annotate_trace, backoff_delay_s


@register_backend
class InProcessBackend(SweepBackend):
    """Serial reference backend (``--backend inprocess``); single lane."""

    name = "inprocess"

    def __init__(
        self, policy: RuntimePolicy = None, observe: bool = False
    ) -> None:
        super().__init__(policy=policy, lanes=1, observe=observe)
        if self.policy.needs_isolation():
            raise ConfigurationError(
                "the inprocess backend cannot enforce a watchdog or host "
                "process chaos (no process boundary); use the pool or "
                "remote backend for policies that need isolation"
            )

    def _drain(self, shards: List[Shard]) -> List[CellOutcome]:
        cache = _process_cache()
        outcomes: List[CellOutcome] = []
        for shard in shards:
            journal = shard.journal()
            for cell in shard.cells:
                attempt = 1
                while True:
                    try:
                        result = _annotate_trace(
                            cell.spec.execute(planner=cache, observe=self.observe),
                            cell.index,
                            attempt,
                        )
                    except Exception as exc:
                        if attempt < self.policy.max_attempts:
                            time.sleep(
                                backoff_delay_s(
                                    self.policy, cell.spec.seed, attempt + 1
                                )
                            )
                            attempt += 1
                            self.cells_retried += 1
                            continue
                        outcomes.append(
                            CellOutcome(
                                shard_id=shard.shard_id,
                                index=cell.index,
                                fingerprint=cell.fingerprint,
                                failure=CellFailure(
                                    fingerprint=cell.fingerprint,
                                    index=cell.index,
                                    cause="error",
                                    attempts=attempt,
                                    error_type=type(exc).__name__,
                                    message=str(exc),
                                ),
                            )
                        )
                        break
                    if journal is not None:
                        journal.append(cell.fingerprint, result)
                    outcomes.append(
                        CellOutcome(
                            shard_id=shard.shard_id,
                            index=cell.index,
                            fingerprint=cell.fingerprint,
                            result=result,
                        )
                    )
                    break
        return outcomes
