"""Sharded sweep driver: the half of distribution no backend has to write.

The driver owns everything above the ``submit_shard / drain / close``
line, so every backend gets the same semantics for free:

* **identity** — each spec's :func:`~repro.perf.runtime.spec_fingerprint`
  is computed here and rides the :class:`~repro.perf.backends.base.ShardCell`;
* **resume** — leftover shard journals from a killed run are merged into
  the sweep journal first, then journaled cells are spliced into the
  results unrun, exactly like the single-journal runtime path;
* **sharding** — pending cells round-robin across the backend's lanes
  (cell *i* of the pending list lands in shard ``i % lanes``), a pure
  function of the spec list and lane count, so two runs shard alike;
* **merge** — after ``drain``, :func:`merge_journals` splices the shard
  journals back into one sweep journal (byte-splicing records, never
  re-pickling) and the shard files are removed;
* **observability** — ``colorbars.backend.*`` metrics and the
  root -> shard -> cell trace via
  :func:`repro.obs.trace.assemble_sharded_trace`.

Backends only execute cells; the driver guarantees that whatever they
are, the sweep's results, journal, and failure records look the same.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import BackendError, CellFailure, JournalError
from repro.link.simulator import LinkResult, RunSpec
from repro.obs.schema import (
    M_BACKEND_CELLS,
    M_BACKEND_LANES,
    M_BACKEND_MERGED_CELLS,
    M_BACKEND_SHARDS,
    M_BACKEND_WORKER_RESTARTS,
)
from repro.obs.trace import Span, assemble_sharded_trace
from repro.perf.backends.base import Shard, ShardCell, SweepBackend
from repro.perf.runtime import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    RuntimeResult,
    record_sweep_metrics,
    spec_fingerprint,
)

# -- shard journals --------------------------------------------------------


def shard_journal_path(journal_path, shard_id: int) -> str:
    """Where shard ``shard_id`` of the sweep journal checkpoints."""
    return f"{Path(journal_path)}.shard-{int(shard_id)}"


def existing_shard_journals(journal_path) -> List[Path]:
    """Leftover shard journal files of a sweep journal, in shard order."""
    base = Path(journal_path)

    def shard_number(path: Path) -> Tuple[int, str]:
        suffix = path.name.rpartition("-")[2]
        return (int(suffix), "") if suffix.isdigit() else (1 << 30, path.name)

    return sorted(base.parent.glob(base.name + ".shard-*"), key=shard_number)


def _discard_file(path: Path) -> None:
    try:
        path.unlink()
    except FileNotFoundError:
        pass
    except OSError as exc:
        raise JournalError(
            f"cannot remove shard journal {path}: {exc}"
        ) from exc


def _load_raw_records(path: Path) -> List[Tuple[str, str, LinkResult]]:
    """(fingerprint, base64 payload, decoded result) per readable record.

    File order is preserved (so last-write-wins within a file behaves like
    :meth:`RunJournal.load`); unparseable or truncated records are skipped
    — the affected cell simply reruns — while a schema mismatch is a hard
    error, both matching the journal's own semantics.
    """
    records: List[Tuple[str, str, LinkResult]] = []
    if not path.exists():
        return records
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # truncated mid-write; the cell just reruns
        if not isinstance(record, dict):
            continue
        schema = record.get("schema")
        if schema != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"journal {path} has schema {schema!r}, "
                f"expected {JOURNAL_SCHEMA_VERSION}"
            )
        fingerprint = record.get("fingerprint")
        payload = record.get("result")
        if not (isinstance(fingerprint, str) and isinstance(payload, str)):
            continue
        try:
            result = pickle.loads(base64.b64decode(payload))
        except Exception:  # corrupt payload: rerun that cell
            continue
        if isinstance(result, LinkResult):
            records.append((fingerprint, payload, result))
    return records


def _append_raw(journal: RunJournal, fingerprint: str, payload: str) -> None:
    """Splice one record byte-for-byte (no decode/re-pickle round trip)."""
    record = {
        "schema": JOURNAL_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "result": payload,
    }
    try:
        with journal.path.open("a", encoding="ascii") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
    except OSError as exc:
        raise JournalError(
            f"cannot append to journal {journal.path}: {exc}"
        ) from exc


@dataclass
class MergeReport:
    """What :func:`merge_journals` did: the merged view, and how it got there."""

    #: Post-merge fingerprint -> result (what a subsequent resume loads).
    entries: Dict[str, LinkResult]
    #: Records spliced into the target (duplicates contribute nothing).
    appended: int
    #: Fingerprints where a shard disagreed with the already-merged bytes.
    conflicts: int


def merge_journals(shard_paths, target, on_conflict: str = "last") -> MergeReport:
    """Splice shard journals into one sweep journal, byte-identically.

    Records are copied with their original base64 payloads (never
    re-pickled), so the merged journal resolves each cell to exactly the
    bytes some shard wrote.  A record whose fingerprint is already merged
    with *identical* bytes is a no-op; differing bytes are a conflict:
    ``on_conflict="last"`` lets the later shard win (cells are pure
    functions of their specs, so a genuine conflict implies foul play or
    corruption — last-write matches the journal's own load semantics),
    ``"error"`` raises :class:`~repro.exceptions.JournalError` instead.
    """
    if on_conflict not in ("last", "error"):
        raise JournalError(
            f"on_conflict must be 'last' or 'error', got {on_conflict!r}"
        )
    if not isinstance(target, RunJournal):
        target = RunJournal(target)
    merged: Dict[str, str] = {}
    entries: Dict[str, LinkResult] = {}
    for fingerprint, payload, result in _load_raw_records(target.path):
        merged[fingerprint] = payload
        entries[fingerprint] = result
    appended = 0
    conflicts = 0
    for path in shard_paths:
        for fingerprint, payload, result in _load_raw_records(Path(path)):
            prior = merged.get(fingerprint)
            if prior == payload:
                continue
            if prior is not None:
                conflicts += 1
                if on_conflict == "error":
                    raise JournalError(
                        f"shard journal {path} disagrees with the merged "
                        f"sweep on cell {fingerprint[:12]}"
                    )
            _append_raw(target, fingerprint, payload)
            merged[fingerprint] = payload
            entries[fingerprint] = result
            appended += 1
    return MergeReport(entries=entries, appended=appended, conflicts=conflicts)


# -- sharding --------------------------------------------------------------


def make_shards(
    cells: Sequence[ShardCell], lanes: int, journal_path=None
) -> List[Shard]:
    """Round-robin ``cells`` into at most ``lanes`` non-empty shards.

    Cell *i* of the list lands in shard ``i % lanes`` — a pure function
    of (cell order, lane count), so two runs of the same sweep shard
    identically and a resumed run re-shards only what is still pending.
    """
    if not cells:
        return []
    lane_count = max(1, min(int(lanes), len(cells)))
    buckets: List[List[ShardCell]] = [[] for _ in range(lane_count)]
    for position, cell in enumerate(cells):
        buckets[position % lane_count].append(cell)
    return [
        Shard(
            shard_id=shard_id,
            cells=tuple(bucket),
            journal_path=(
                shard_journal_path(journal_path, shard_id)
                if journal_path is not None
                else None
            ),
        )
        for shard_id, bucket in enumerate(buckets)
    ]


# -- the drive -------------------------------------------------------------


def run_specs_sharded(
    specs: Sequence[RunSpec],
    backend: SweepBackend,
    journal=None,
    resume: bool = False,
    observe: bool = False,
    metrics=None,
) -> RuntimeResult:
    """Execute ``specs`` through a :class:`SweepBackend`, shard by shard.

    The contract mirrors :func:`repro.perf.runtime.run_specs_resilient`
    (journal path-or-object, ``resume`` splicing, ``metrics`` implies
    ``observe``) with the execution engine swapped for the backend; the
    returned :class:`RuntimeResult` additionally carries ``shard_of``
    (per spec, which shard ran it — ``None`` for resumed cells).  The
    caller keeps ownership of the backend (close it when done).
    """
    specs = list(specs)
    if metrics is not None:
        observe = True
    if observe:
        backend.observe = True
    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)

    merged_cells = 0
    journaled: Dict[str, LinkResult] = {}
    if journal is not None:
        leftovers = existing_shard_journals(journal.path)
        if resume:
            report = merge_journals(leftovers, journal)
            merged_cells += report.appended
            journaled = report.entries
        else:
            journal.discard()
        for path in leftovers:
            _discard_file(path)

    results: List[Optional[LinkResult]] = [None] * len(specs)
    failures: List[CellFailure] = []
    resumed = 0
    pending: List[ShardCell] = []
    for index, spec in enumerate(specs):
        fingerprint = spec_fingerprint(spec)
        prior = journaled.get(fingerprint)
        if prior is not None:
            results[index] = prior
            resumed += 1
        else:
            pending.append(
                ShardCell(index=index, fingerprint=fingerprint, spec=spec)
            )

    shard_of: List[Optional[int]] = [None] * len(specs)
    shards: List[Shard] = []
    retried_before = backend.cells_retried
    restarts_before = backend.worker_restarts
    if pending:
        shards = make_shards(
            pending,
            backend.lanes,
            journal_path=journal.path if journal is not None else None,
        )
        for shard in shards:
            backend.submit_shard(shard)
            for cell in shard.cells:
                shard_of[cell.index] = shard.shard_id
        for outcome in backend.drain():
            if outcome.result is not None:
                results[outcome.index] = outcome.result
            elif outcome.failure is not None:
                failures.append(outcome.failure)
        holes = [
            cell.index
            for cell in pending
            if results[cell.index] is None
            and not any(failure.index == cell.index for failure in failures)
        ]
        if holes:
            raise BackendError(
                f"backend {backend.name!r} returned no outcome for "
                f"cell(s) {holes[:5]}; the drain contract requires one "
                f"per submitted cell"
            )
        failures.sort(key=lambda failure: failure.index)
        if journal is not None:
            report = merge_journals(
                [shard.journal_path for shard in shards], journal
            )
            merged_cells += report.appended
            for shard in shards:
                _discard_file(Path(shard.journal_path))

    outcome = RuntimeResult(
        results=results, failures=failures, resumed=resumed, shard_of=shard_of
    )
    if metrics is not None:
        record_sweep_metrics(
            metrics,
            results,
            failures,
            retried=backend.cells_retried - retried_before,
            resumed=resumed,
            workers=backend.lanes,
        )
        metrics.gauge(M_BACKEND_LANES).set(backend.lanes)
        metrics.counter(M_BACKEND_SHARDS).inc(len(shards))
        metrics.counter(M_BACKEND_CELLS).inc(len(pending))
        metrics.counter(M_BACKEND_WORKER_RESTARTS).inc(
            backend.worker_restarts - restarts_before
        )
        metrics.counter(M_BACKEND_MERGED_CELLS).inc(merged_cells)
    return outcome


def assemble_backend_trace(
    outcome: RuntimeResult,
    backend_name: str,
    lanes: int,
    root_attributes: Optional[Dict[str, object]] = None,
) -> List[Span]:
    """The sweep's root -> shard -> cell trace, in sharding-plan order.

    Cells group by the shard that ran them (``outcome.shard_of``), in
    spec order within each group; cells satisfied from the resume journal
    carry no shard and group under a trailing ``shard: resumed`` span.
    """
    by_shard: Dict[Optional[int], List[Optional[Sequence[Span]]]] = {}
    shard_of = outcome.shard_of or [None] * len(outcome.results)
    for index, result in enumerate(outcome.results):
        trace = getattr(result, "trace", None) if result is not None else None
        by_shard.setdefault(shard_of[index], []).append(trace)
    groups = []
    for shard_id in sorted(
        by_shard, key=lambda s: (s is None, s if s is not None else 0)
    ):
        groups.append(
            (
                {
                    "backend": backend_name,
                    "shard": "resumed" if shard_id is None else shard_id,
                },
                by_shard[shard_id],
            )
        )
    root_attrs = dict(root_attributes or {})
    root_attrs.setdefault("backend", backend_name)
    root_attrs.setdefault("lanes", lanes)
    return assemble_sharded_trace(groups, root_attributes=root_attrs)
