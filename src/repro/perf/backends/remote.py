"""The remote backend: sweep cells on subprocess workers over stdio frames.

Each lane owns one worker process started as ``python -m
repro.perf.backends.remote_worker`` and speaks the length-prefixed
pickle-frame protocol documented there.  The workers stand in for other
hosts — the parent side only ever touches a byte stream, so swapping the
``subprocess`` pipes for TCP sockets changes nothing above the frame
reader — and tests/CI run them on localhost.

All policy lives on the parent side, which is what lets resilience
survive a *dead worker* rather than just a dead cell:

* **watchdog** — each dispatched cell gets a deadline; an overdue worker
  is killed outright (unlike a pool, there is no shared executor to
  break, so only the guilty lane pays) and the cell retries or fails
  with cause ``timeout``;
* **lost worker** — EOF on the worker's stdout before a response (crash,
  ``worker-crash`` chaos, or a ``worker-partition`` that closed the pipe
  while the process lingers) kills whatever is left of the worker,
  respawns the lane, and contains the cell with cause ``crash``;
* **cell error** — the worker stays alive and reports ``("err", ...)``;
  the cell retries on its seed-stable backoff schedule or fails with
  cause ``error``.

Retries requeue to the shared task list, so any lane may run the next
attempt; results cannot change (cells derive everything from their own
seed), which keeps the backend byte-identical to ``inprocess``.
"""

from __future__ import annotations

import os
import pickle
import select
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import BackendError, CellFailure, ConfigurationError
from repro.link.simulator import LinkResult
from repro.perf.backends.base import (
    CellOutcome,
    Shard,
    ShardCell,
    SweepBackend,
    register_backend,
)
from repro.perf.backends.remote_worker import FRAME_HEADER
from repro.perf.backends.remote_worker import write_frame as _write_frame
from repro.perf.executor import validate_workers
from repro.perf.runtime import RunJournal, RuntimePolicy, backoff_delay_s

#: Default lane count: two localhost workers, the smallest "distributed" run.
DEFAULT_REMOTE_WORKERS = 2

#: How long a freshly spawned worker gets to send its hello frame.
WORKER_STARTUP_TIMEOUT_S = 120.0

#: Poll interval of the parent-side frame reader, seconds.
_TICK_S = 0.1


class _WorkerTimeout(BackendError):
    """Control flow: the watchdog deadline passed before a response."""


class _WorkerLost(BackendError):
    """Control flow: the worker's stdout hit EOF before a response."""


def _read_exact(fd: int, count: int, deadline: Optional[float]) -> bytes:
    """``count`` bytes from ``fd``, polling so a deadline can interrupt."""
    data = b""
    while len(data) < count:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise _WorkerTimeout("watchdog deadline exceeded")
            timeout = min(_TICK_S, budget)
        else:
            timeout = _TICK_S
        ready, _, _ = select.select([fd], [], [], timeout)
        if not ready:
            continue
        chunk = os.read(fd, count - len(data))
        if not chunk:
            raise _WorkerLost("worker connection lost (EOF)")
        data += chunk
    return data


def _read_frame_fd(fd: int, deadline: Optional[float]) -> Any:
    """One protocol frame from a worker's stdout file descriptor."""
    header = _read_exact(fd, FRAME_HEADER.size, deadline)
    (length,) = FRAME_HEADER.unpack(header)
    try:
        return pickle.loads(_read_exact(fd, length, deadline))
    except (_WorkerTimeout, _WorkerLost):
        raise
    except Exception as exc:
        raise BackendError(
            f"unparseable frame from remote worker: {exc}"
        ) from exc


@dataclass
class _Task:
    """One cell's scheduling state while the drain runs it."""

    shard_id: int
    cell: ShardCell
    journal: Optional[RunJournal]
    attempt: int = 1
    #: Earliest monotonic time the next attempt may dispatch (backoff).
    not_before: float = 0.0


@dataclass
class _DrainState:
    """Shared work list and results of one drain, guarded by ``cond``."""

    policy: RuntimePolicy
    cond: threading.Condition = field(
        default_factory=lambda: threading.Condition(threading.Lock())
    )
    tasks: List[_Task] = field(default_factory=list)
    outcomes: List[CellOutcome] = field(default_factory=list)
    remaining: int = 0
    retried: int = 0
    restarts: int = 0

    def take(self) -> Optional[_Task]:
        """Next ready task, blocking through backoff gaps; ``None`` when done."""
        with self.cond:
            while True:
                if self.remaining <= 0:
                    return None
                now = time.monotonic()
                wake: Optional[float] = None
                for task in self.tasks:
                    if task.not_before <= now:
                        self.tasks.remove(task)
                        return task
                    wake = (
                        task.not_before
                        if wake is None
                        else min(wake, task.not_before)
                    )
                timeout = (
                    _TICK_S if wake is None else min(max(wake - now, 0.01), _TICK_S)
                )
                self.cond.wait(timeout)

    def resolve_success(self, task: _Task, result: LinkResult) -> None:
        with self.cond:
            if task.journal is not None:
                task.journal.append(task.cell.fingerprint, result)
            self.outcomes.append(
                CellOutcome(
                    shard_id=task.shard_id,
                    index=task.cell.index,
                    fingerprint=task.cell.fingerprint,
                    result=result,
                )
            )
            self.remaining -= 1
            self.cond.notify_all()

    def resolve_failure(
        self, task: _Task, cause: str, error_type: str, message: str
    ) -> None:
        """Requeue for the next attempt, or record the final failure."""
        with self.cond:
            if task.attempt < self.policy.max_attempts:
                task.not_before = time.monotonic() + backoff_delay_s(
                    self.policy, task.cell.spec.seed, task.attempt + 1
                )
                task.attempt += 1
                self.tasks.append(task)
                self.retried += 1
            else:
                self.outcomes.append(
                    CellOutcome(
                        shard_id=task.shard_id,
                        index=task.cell.index,
                        fingerprint=task.cell.fingerprint,
                        failure=CellFailure(
                            fingerprint=task.cell.fingerprint,
                            index=task.cell.index,
                            cause=cause,
                            attempts=task.attempt,
                            error_type=error_type,
                            message=message,
                        ),
                    )
                )
                self.remaining -= 1
            self.cond.notify_all()

    def note_restart(self) -> None:
        with self.cond:
            self.restarts += 1


@register_backend
class RemoteBackend(SweepBackend):
    """Stdio/subprocess worker backend (``--backend remote[:workers=N]``)."""

    name = "remote"

    def __init__(
        self,
        policy: Optional[RuntimePolicy] = None,
        workers: Optional[int] = None,
        observe: bool = False,
    ) -> None:
        lanes = (
            DEFAULT_REMOTE_WORKERS
            if workers is None
            else validate_workers(workers)
        )
        super().__init__(policy=policy, lanes=lanes, observe=observe)
        self._workers_lock = threading.Lock()
        self._live_workers: List[subprocess.Popen] = []

    @classmethod
    def from_options(
        cls,
        options: Dict[str, str],
        policy: Optional[RuntimePolicy] = None,
        workers: Optional[int] = None,
        observe: bool = False,
    ) -> "RemoteBackend":
        options = dict(options)
        raw = options.pop("workers", None)
        if options:
            raise ConfigurationError(
                f"backend {cls.name!r} only takes workers=N, "
                f"got {sorted(options)}"
            )
        if raw is not None:
            workers = validate_workers(raw, source="backend workers option")
        return cls(policy=policy, workers=workers, observe=observe)

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        env = dict(os.environ)
        # this file is src/repro/perf/backends/remote.py -> src is 4 up
        src_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        # -c instead of -m: runpy would re-execute a module the package
        # __init__ already imported and warn about the double import.
        worker = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; "
                "from repro.perf.backends.remote_worker import worker_main; "
                "sys.exit(worker_main())",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            hello = _read_frame_fd(
                worker.stdout.fileno(),
                time.monotonic() + WORKER_STARTUP_TIMEOUT_S,
            )
        except BackendError as exc:
            self._destroy_worker(worker)
            raise BackendError(
                f"remote worker failed its startup handshake: {exc}"
            ) from exc
        if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
            self._destroy_worker(worker)
            raise BackendError(
                f"remote worker sent {hello!r} instead of a hello frame"
            )
        with self._workers_lock:
            self._live_workers.append(worker)
        return worker

    def _destroy_worker(self, worker: subprocess.Popen) -> None:
        """Kill a worker hard and reap it (partitioned workers linger)."""
        with self._workers_lock:
            if worker in self._live_workers:
                self._live_workers.remove(worker)
        try:
            worker.kill()
        except OSError:
            pass
        try:
            worker.wait(timeout=10.0)
        except (subprocess.TimeoutExpired, OSError):
            pass
        for stream in (worker.stdin, worker.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass

    def _retire_worker(self, worker: subprocess.Popen) -> None:
        """Polite shutdown of an idle worker at end of drain/close."""
        try:
            _write_frame(worker.stdin, ("exit",))
        except (OSError, ValueError):
            pass
        self._destroy_worker(worker)

    def _close(self) -> None:
        with self._workers_lock:
            stragglers = list(self._live_workers)
        for worker in stragglers:
            self._retire_worker(worker)

    # -- drain -------------------------------------------------------------

    def _drain(self, shards: List[Shard]) -> List[CellOutcome]:
        state = _DrainState(policy=self.policy)
        for shard in shards:
            journal = shard.journal()
            for cell in shard.cells:
                state.tasks.append(
                    _Task(shard_id=shard.shard_id, cell=cell, journal=journal)
                )
        state.remaining = len(state.tasks)
        if not state.remaining:
            return []

        lane_count = min(self.lanes, state.remaining)
        lanes = [
            threading.Thread(
                target=self._lane_loop,
                args=(state,),
                name=f"colorbars-remote-lane-{lane}",
                daemon=True,
            )
            for lane in range(lane_count)
        ]
        for lane in lanes:
            lane.start()
        for lane in lanes:
            lane.join()
        self.cells_retried += state.retried
        self.worker_restarts += state.restarts
        return state.outcomes

    def _lane_loop(self, state: _DrainState) -> None:
        """One lane: own a worker, pull tasks until the drain is done."""
        worker: Optional[subprocess.Popen] = None
        try:
            while True:
                task = state.take()
                if task is None:
                    return
                if worker is not None and worker.poll() is not None:
                    self._destroy_worker(worker)
                    state.note_restart()
                    worker = None
                if worker is None:
                    try:
                        worker = self._spawn_worker()
                    except BackendError as exc:
                        state.resolve_failure(
                            task, "crash", type(exc).__name__, str(exc)
                        )
                        continue
                if not self._run_task(worker, task, state):
                    worker = None  # destroyed mid-task; lane respawns
        finally:
            if worker is not None:
                self._retire_worker(worker)

    def _run_task(
        self, worker: subprocess.Popen, task: _Task, state: _DrainState
    ) -> bool:
        """Dispatch one cell; returns whether the worker is still usable."""
        try:
            _write_frame(
                worker.stdin,
                (
                    "cell",
                    task.cell.index,
                    task.cell.spec,
                    task.attempt,
                    self.policy.chaos,
                    self.observe,
                ),
            )
        except (OSError, ValueError):
            self._destroy_worker(worker)
            state.note_restart()
            state.resolve_failure(
                task, "crash", "BrokenPipeError",
                "worker died before the cell could be dispatched",
            )
            return False

        deadline = (
            time.monotonic() + self.policy.cell_timeout_s
            if self.policy.cell_timeout_s is not None
            else None
        )
        try:
            response = _read_frame_fd(worker.stdout.fileno(), deadline)
        except _WorkerTimeout:
            self._destroy_worker(worker)
            state.note_restart()
            state.resolve_failure(
                task, "timeout", "TimeoutError",
                f"cell exceeded {self.policy.cell_timeout_s:g}s watchdog "
                f"deadline on attempt {task.attempt}",
            )
            return False
        except _WorkerLost as exc:
            self._destroy_worker(worker)
            state.note_restart()
            state.resolve_failure(task, "crash", type(exc).__name__, str(exc))
            return False
        except BackendError as exc:
            # Unparseable frame: the stream is out of sync; drop the worker.
            self._destroy_worker(worker)
            state.note_restart()
            state.resolve_failure(task, "crash", type(exc).__name__, str(exc))
            return False

        kind = response[0] if isinstance(response, tuple) and response else None
        if kind == "ok" and response[1] == task.cell.index:
            state.resolve_success(task, response[2])
            return True
        if kind == "err":
            state.resolve_failure(task, "error", response[2], response[3])
            return True
        self._destroy_worker(worker)
        state.note_restart()
        state.resolve_failure(
            task, "crash", "BackendError",
            f"remote worker answered out of protocol: {response!r}",
        )
        return False
