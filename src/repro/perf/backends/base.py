"""The sweep-backend contract: ``submit_shard`` / ``drain`` / ``close``.

A :class:`SweepBackend` is the execution engine behind a distributed sweep:
the driver (:mod:`repro.perf.backends.driver`) shards a sweep's pending
cells across the backend's parallel lanes, submits each shard, drains the
per-cell outcomes, and merges the shard journals back into one sweep
journal.  Three implementations ship with the repo —

* ``inprocess`` (:mod:`repro.perf.backends.inprocess`) — serial, in the
  caller's process: the *reference* every other backend must match
  byte-for-byte;
* ``pool`` (:mod:`repro.perf.backends.pool`) — the PR 3/4 supervised
  ``ProcessPoolExecutor`` path behind the interface;
* ``remote`` (:mod:`repro.perf.backends.remote`) — subprocess workers
  spoken to over a length-prefixed stdio protocol, the stand-in for
  workers on other hosts (tests and CI run them on localhost).

The full backend-author contract — lifecycle, journal semantics, the
failure taxonomy, and how to prove byte-identity against ``inprocess`` —
is documented in ``docs/BACKENDS.md``; the obligations in one paragraph:

1. Execute **every** cell of every submitted shard, containing per-cell
   failures into :class:`~repro.exceptions.CellFailure` outcomes (cause
   ``crash``/``timeout``/``error``) instead of raising; apply the
   :class:`~repro.perf.runtime.RuntimePolicy`'s watchdog, retry, and
   chaos semantics yourself.
2. Append each completed cell to its shard's
   :class:`~repro.perf.runtime.RunJournal` *as it finishes* — a killed
   sweep may only lose in-flight cells.
3. Never let execution order, lane assignment, or retries change a
   result: a cell is a pure function of its spec, so any backend's result
   table must be byte-identical to the ``inprocess`` reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.exceptions import BackendError, CellFailure, ConfigurationError
from repro.link.simulator import LinkResult, RunSpec
from repro.perf.runtime import RunJournal, RuntimePolicy


@dataclass(frozen=True)
class ShardCell:
    """One sweep cell as a backend sees it: position, identity, and spec."""

    index: int
    fingerprint: str
    spec: RunSpec


@dataclass(frozen=True)
class Shard:
    """One unit of backend work: the cells assigned to one parallel lane.

    ``journal_path`` (when the sweep is journaled) is where the backend
    must checkpoint this shard's completed cells; the driver merges shard
    journals into the sweep journal after ``drain``.
    """

    shard_id: int
    cells: Tuple[ShardCell, ...]
    journal_path: Optional[str] = None

    def journal(self) -> Optional[RunJournal]:
        """The shard's checkpoint journal, or ``None`` when unjournaled."""
        if self.journal_path is None:
            return None
        return RunJournal(self.journal_path)


@dataclass
class CellOutcome:
    """What one cell produced: a result, or a contained failure.

    Exactly one of ``result``/``failure`` is set; a backend that can
    produce neither for a submitted cell is violating the contract (the
    driver raises :class:`~repro.exceptions.BackendError` on the hole).
    """

    shard_id: int
    index: int
    fingerprint: str
    result: Optional[LinkResult] = None
    failure: Optional[CellFailure] = None


class SweepBackend:
    """Base class for sweep backends; subclasses implement :meth:`_drain`.

    Lifecycle: construct with a :class:`RuntimePolicy` (watchdog / retry /
    chaos knobs the backend must honor), ``submit_shard`` any number of
    shards, ``drain`` to execute them all and collect per-cell outcomes,
    repeat submit/drain as needed, then ``close`` exactly once (``close``
    is idempotent; a closed backend rejects further submits and drains).
    Backends are context managers: ``with make_backend("pool") as b: ...``.
    """

    #: Registry key; subclasses must set a unique non-empty name.
    name: str = ""

    def __init__(
        self,
        policy: Optional[RuntimePolicy] = None,
        lanes: int = 1,
        observe: bool = False,
    ) -> None:
        if int(lanes) != lanes or lanes < 1:
            raise ConfigurationError(
                f"backend lanes must be a positive integer, got {lanes!r}"
            )
        self.policy = policy if policy is not None else RuntimePolicy()
        self.lanes = int(lanes)
        self.observe = bool(observe)
        #: Remote workers killed and respawned during drains (metrics).
        self.worker_restarts = 0
        #: Retry attempts consumed across all drained cells (metrics).
        self.cells_retried = 0
        self._pending: List[Shard] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def submit_shard(self, shard: Shard) -> int:
        """Queue one shard for the next :meth:`drain`; returns its id."""
        self._check_open("submit_shard")
        if not isinstance(shard, Shard):
            raise BackendError(
                f"submit_shard takes a Shard, got {type(shard).__name__}"
            )
        if any(existing.shard_id == shard.shard_id for existing in self._pending):
            raise BackendError(
                f"shard id {shard.shard_id} already submitted to this drain"
            )
        self._pending.append(shard)
        return shard.shard_id

    def drain(self) -> List[CellOutcome]:
        """Execute every submitted shard; return one outcome per cell.

        Outcome order is unspecified (the driver reorders by cell index);
        after ``drain`` returns, the backend is empty and ready for more
        submissions.
        """
        self._check_open("drain")
        shards, self._pending = self._pending, []
        if not shards:
            return []
        return self._drain(shards)

    def close(self) -> None:
        """Release workers/processes; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._close()

    def _check_open(self, operation: str) -> None:
        if self._closed:
            raise BackendError(
                f"{operation} on a closed {type(self).__name__}"
            )

    def __enter__(self) -> "SweepBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_options(
        cls,
        options: Dict[str, str],
        policy: Optional[RuntimePolicy] = None,
        workers: Optional[int] = None,
        observe: bool = False,
    ) -> "SweepBackend":
        """Build from parsed ``--backend`` options.

        The base implementation is for single-lane backends with no
        options; multi-lane subclasses override to honor ``workers=N``
        (spec option first, then the ``workers`` argument).
        """
        if options:
            raise ConfigurationError(
                f"backend {cls.name!r} takes no options, got {sorted(options)}"
            )
        return cls(policy=policy, observe=observe)

    # -- subclass hooks ----------------------------------------------------

    def _drain(self, shards: List[Shard]) -> List[CellOutcome]:
        raise BackendError(
            f"{type(self).__name__} does not implement _drain"
        )

    def _close(self) -> None:
        """Subclass teardown hook (default: nothing to release)."""


#: Canonical name -> backend class; the vocabulary of ``--backend NAME``.
BACKEND_REGISTRY: Dict[str, Type[SweepBackend]] = {}


def register_backend(cls: Type[SweepBackend]) -> Type[SweepBackend]:
    """Class decorator adding a backend to :data:`BACKEND_REGISTRY`."""
    if not cls.name:
        raise BackendError(f"backend class {cls.__name__} has no name")
    if cls.name in BACKEND_REGISTRY:
        raise BackendError(f"backend name {cls.name!r} registered twice")
    BACKEND_REGISTRY[cls.name] = cls
    return cls


def parse_backend_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``NAME[:key=value[,key=value...]]`` into (name, options).

    The grammar of every ``--backend`` flag: a registered backend name,
    optionally followed by comma-separated ``key=value`` options (e.g.
    ``remote:workers=2``).  Option validation is the backend's job;
    this only enforces the shape.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigurationError(
            f"backend spec must be NAME[:OPTS], got {spec!r}"
        )
    name, separator, raw_options = spec.strip().partition(":")
    options: Dict[str, str] = {}
    if separator:
        for item in raw_options.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ConfigurationError(
                    f"backend option must be key=value, got {item!r} in {spec!r}"
                )
            options[key.strip()] = value.strip()
    return name.strip(), options


def make_backend(
    spec: str,
    policy: Optional[RuntimePolicy] = None,
    workers: Optional[int] = None,
    observe: bool = False,
) -> SweepBackend:
    """Instantiate a registered backend from a ``NAME[:OPTS]`` spec.

    ``workers`` is the default lane count for backends that take one
    (``pool``/``remote``); an explicit ``workers=`` in the spec's options
    wins over it.  ``inprocess`` accepts no options.
    """
    name, options = parse_backend_spec(spec)
    try:
        cls = BACKEND_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(BACKEND_REGISTRY))
        raise ConfigurationError(
            f"unknown backend {name!r}; known backends: {known}"
        ) from None
    return cls.from_options(
        options, policy=policy, workers=workers, observe=observe
    )
