"""Worker-side program of the remote sweep backend's stdio protocol.

Launched as ``python -m repro.perf.backends.remote_worker`` (one process
per remote lane; in tests and CI the "remote host" is localhost).  The
parent speaks length-prefixed pickle frames over the worker's
stdin/stdout — each frame is a 4-byte big-endian payload length followed
by a pickled tuple:

* worker -> parent on startup: ``("hello", pid)`` — the readiness
  handshake;
* parent -> worker: ``("cell", index, spec, attempt, chaos, observe)`` —
  execute one cell (chaos injectors first, exactly like a pool worker);
* worker -> parent: ``("ok", index, result)`` on success, or
  ``("err", index, error_type, message)`` when the cell raised;
* parent -> worker: ``("exit",)`` — drain finished, terminate cleanly.

The worker is deliberately trusting and minimal: policy (watchdog,
retry, backoff) lives entirely on the parent side, so a worker is just
"run this cell, send back what happened".  EOF on stdin means the parent
is gone and the worker exits; EOF on stdout as seen by the *parent*
means the worker crashed or was partitioned, and the parent contains it
as a ``crash`` :class:`~repro.exceptions.CellFailure`.

Protocol frames are pickles between processes running the same repo
checkout — the standard multiprocessing trust model, same as the pool.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
from typing import Any, BinaryIO, Optional

#: 4-byte big-endian payload length prefixed to every protocol frame.
FRAME_HEADER = struct.Struct(">I")

#: Pickle protocol of the frames (matches the journal's pinned protocol).
FRAME_PICKLE_PROTOCOL = 4


def read_frame(stream: BinaryIO) -> Optional[Any]:
    """One length-prefixed frame from ``stream``, or ``None`` on EOF.

    A partial header or payload (the peer died mid-write) also reads as
    EOF: there is no way to finish the frame, so the connection is over.
    """
    header = stream.read(FRAME_HEADER.size)
    if header is None or len(header) < FRAME_HEADER.size:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            return None
        payload += chunk
    return pickle.loads(payload)


def write_frame(stream: BinaryIO, message: Any) -> None:
    """Write one length-prefixed frame and flush it."""
    payload = pickle.dumps(message, protocol=FRAME_PICKLE_PROTOCOL)
    stream.write(FRAME_HEADER.pack(len(payload)) + payload)
    stream.flush()


def worker_main(
    stdin: Optional[BinaryIO] = None, stdout: Optional[BinaryIO] = None
) -> int:
    """Serve cells until ``("exit",)`` or EOF; returns the exit status."""
    # Imported here (not at module top) so the protocol helpers stay
    # importable without dragging in the whole simulation stack.
    from repro.perf.executor import _process_cache
    from repro.perf.runtime import _annotate_trace

    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    try:
        write_frame(stdout, ("hello", os.getpid()))
    except OSError:
        return 0  # parent already gone
    cache = _process_cache()
    while True:
        message = read_frame(stdin)
        if message is None:
            return 0  # parent went away; nothing left to serve
        kind = message[0] if isinstance(message, tuple) and message else None
        if kind == "exit":
            return 0
        if kind == "cell":
            _, index, spec, attempt, chaos, observe = message
            try:
                for injector in chaos:
                    injector.before_cell(cell_index=index, attempt=attempt)
                result = _annotate_trace(
                    spec.execute(planner=cache, observe=observe), index, attempt
                )
                response = ("ok", index, result)
            except Exception as exc:
                response = ("err", index, type(exc).__name__, str(exc))
        else:
            response = (
                "err", -1, "BackendError", f"unknown frame kind {kind!r}"
            )
        try:
            write_frame(stdout, response)
        except OSError:
            return 0  # parent died (or killed us) mid-cell; exit quietly


if __name__ == "__main__":
    sys.exit(worker_main())
