"""Performance subsystem: parallel execution, resilience, caching, bench.

Four pieces (DESIGN.md §5d-§5e):

* :mod:`repro.perf.executor` — runs any list of independent
  :class:`~repro.link.simulator.RunSpec` cells over a process pool,
  bit-identical to the serial path by construction (each cell derives all
  randomness from its own seed).  ``COLORBARS_WORKERS`` / ``--workers``
  select the pool size; 1 is serial.
* :mod:`repro.perf.runtime` — the resilient execution layer over the
  executor: per-cell watchdog timeouts (``COLORBARS_CELL_TIMEOUT`` /
  ``--cell-timeout``), crash containment into structured
  :class:`~repro.exceptions.CellFailure` records, bounded seed-stable
  retry, and a JSONL checkpoint journal with ``--resume`` — plus the
  process-level chaos injectors of :mod:`repro.faults.chaos` to prove it.
* :mod:`repro.perf.cache` — memoizes the transmitter plan + optical
  waveform per ``(config, payload)`` so fleet/resilience sweeps stop
  rebuilding the identical broadcast per cell.
* :mod:`repro.perf.bench` — the pinned ``colorbars bench`` micro-sweep
  whose JSON report (``BENCH_colorbars.json``) tracks the perf trajectory
  across PRs.

Stage timings themselves live in :mod:`repro.util.stopwatch` (the bottom
layer) so the link layer can attach them without importing this package.
"""

from repro.perf.bench import (
    BENCH_FILENAME,
    BENCH_SCHEMA_VERSION,
    format_breakdown,
    load_and_validate,
    micro_sweep_specs,
    run_bench,
    validate_report,
    write_report,
)
from repro.perf.cache import PlanCache, config_cache_key
from repro.perf.executor import (
    WORKERS_ENV,
    default_workers,
    make_runner,
    parallel_fleet,
    parallel_sweep,
    resolve_workers,
    run_specs,
    validate_workers,
)
from repro.perf.runtime import (
    CELL_TIMEOUT_ENV,
    RunJournal,
    RuntimePolicy,
    RuntimeResult,
    default_cell_timeout,
    resilient_fleet,
    resilient_runner,
    run_specs_resilient,
    spec_fingerprint,
)

__all__ = [
    "BENCH_FILENAME",
    "BENCH_SCHEMA_VERSION",
    "format_breakdown",
    "load_and_validate",
    "micro_sweep_specs",
    "run_bench",
    "validate_report",
    "write_report",
    "PlanCache",
    "config_cache_key",
    "WORKERS_ENV",
    "default_workers",
    "make_runner",
    "parallel_fleet",
    "parallel_sweep",
    "resolve_workers",
    "run_specs",
    "validate_workers",
    "CELL_TIMEOUT_ENV",
    "RunJournal",
    "RuntimePolicy",
    "RuntimeResult",
    "default_cell_timeout",
    "resilient_fleet",
    "resilient_runner",
    "run_specs_resilient",
    "spec_fingerprint",
]
