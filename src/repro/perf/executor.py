"""Parallel sweep executor: independent seeded cells over a process pool.

Every artifact sweep in this reproduction — the Figs 9-11 grids, the fleet
study, the resilience matrix — is a list of
:class:`~repro.link.simulator.RunSpec` cells, each deriving *all* of its
randomness from its own ``(seed, cell)`` tuple.  Cells therefore share no
state, and executing them in worker processes is bit-identical to the
serial loop by construction: the same spec runs the same code against the
same seed either way, and result order is the spec order.

``workers=1`` (the default, also via the ``COLORBARS_WORKERS`` environment
switch) keeps everything in-process and serial.  Both paths share one
:class:`~repro.perf.cache.PlanCache` per process, so fleet/resilience runs
stop rebuilding the identical RS-encoded broadcast for every device/fault
cell.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.camera.devices import DeviceProfile
from repro.exceptions import ConfigurationError
from repro.link.multi import FleetReport, broadcast_to_fleet
from repro.link.simulator import LinkResult, RunSpec, Runner, sweep
from repro.perf.cache import PlanCache

#: Environment switch: ``COLORBARS_WORKERS=4`` parallelizes every sweep that
#: does not pin an explicit worker count.
WORKERS_ENV = "COLORBARS_WORKERS"


def validate_workers(workers, source: str = "workers") -> int:
    """The one worker-count validator every call site routes through.

    ``source`` names the knob in the error message (``workers``, the CLI
    flag, or :data:`WORKERS_ENV`), so the same rule reads the same
    everywhere: a worker count is a positive integer.  Digit strings are
    accepted (the environment can only supply strings); fractional values
    are rejected rather than silently truncated.
    """
    try:
        value = int(workers)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{source} must be a positive integer, got {workers!r}"
        ) from None
    if isinstance(workers, bool) or (
        isinstance(workers, float) and value != workers
    ):
        raise ConfigurationError(
            f"{source} must be a positive integer, got {workers!r}"
        )
    if value < 1:
        raise ConfigurationError(
            f"{source} must be a positive integer, got {workers!r}"
        )
    return value


def resolve_workers(workers: Optional[int] = None, cell_count: Optional[int] = None) -> int:
    """Validated, clamped worker count for a sweep of ``cell_count`` cells.

    ``None`` consults :func:`default_workers`; explicit values go through
    :func:`validate_workers`; and a pool never exceeds the number of cells
    it will actually run (``cell_count``, when known) — spawning idle
    workers is pure startup cost.
    """
    if workers is None:
        workers = default_workers()
    else:
        workers = validate_workers(workers)
    if cell_count is not None:
        workers = max(1, min(workers, cell_count))
    return workers


def default_workers() -> int:
    """Worker count from :data:`WORKERS_ENV`, defaulting to 1 (serial)."""
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return 1
    return validate_workers(raw.strip(), source=WORKERS_ENV)


#: Per-process plan cache for pool workers: one per forked/spawned worker,
#: reused across every cell that worker executes.
_WORKER_CACHE: Optional[PlanCache] = None


def _process_cache() -> PlanCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = PlanCache()
    return _WORKER_CACHE


def _execute_spec(spec: RunSpec) -> LinkResult:
    """Top-level (picklable) cell entry point for pool workers."""
    return spec.execute(planner=_process_cache())


def _execute_spec_observed(spec: RunSpec) -> LinkResult:
    """Observed variant: the worker ships its trace back on the result."""
    return spec.execute(planner=_process_cache(), observe=True)


def run_specs(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    observe: bool = False,
) -> List[LinkResult]:
    """Execute ``specs`` and return results in spec order.

    ``workers=None`` consults :func:`default_workers`; ``1`` runs serially
    in-process (with a shared plan cache); ``>= 2`` fans cells out to a
    process pool.  Both paths produce byte-identical results.

    ``observe=True`` records each cell into a cell-local tracer/registry
    (attached to the results as ``trace``/``obs_metrics``); observation is
    per-cell measurement metadata and cannot change any result.
    """
    specs = list(specs)
    workers = resolve_workers(workers, cell_count=len(specs))
    if workers == 1 or len(specs) <= 1:
        cache = _process_cache()
        return [spec.execute(planner=cache, observe=observe) for spec in specs]
    entry = _execute_spec_observed if observe else _execute_spec
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(entry, specs))


def make_runner(workers: Optional[int] = None, observe: bool = False) -> Runner:
    """A :data:`~repro.link.simulator.Runner` bound to a worker count.

    Inject into :func:`repro.link.simulator.sweep`,
    :func:`repro.link.multi.broadcast_to_fleet`, or any other spec-based
    sweep: ``sweep(device, runner=make_runner(4))``.  ``observe=True``
    makes every executed cell carry its span trace and metrics export
    (``result.trace`` / ``result.obs_metrics``), ready for
    :func:`repro.obs.assemble_trace` / ``MetricsRegistry.merge_export``.
    """

    def runner(specs: Sequence[RunSpec]) -> List[LinkResult]:
        return run_specs(specs, workers=workers, observe=observe)

    return runner


def parallel_sweep(
    device: DeviceProfile, workers: Optional[int] = None, **sweep_kwargs
) -> Dict[Tuple[int, float], LinkResult]:
    """The Figs 9-11 grid through the executor; see :func:`~repro.link.simulator.sweep`."""
    return sweep(device, runner=make_runner(workers), **sweep_kwargs)


def parallel_fleet(
    devices: Sequence[DeviceProfile],
    workers: Optional[int] = None,
    **fleet_kwargs,
) -> FleetReport:
    """The §8 fleet broadcast through the executor; see :func:`~repro.link.multi.broadcast_to_fleet`."""
    return broadcast_to_fleet(devices, runner=make_runner(workers), **fleet_kwargs)
