"""The ``colorbars bench`` micro-sweep: the repo's tracked perf trajectory.

Runs a *pinned* micro-sweep (fixed device geometry, grid, seed, durations)
once serially and once through the process-pool executor, and reports:

* wall-clock per pipeline stage (tx-plan / record / inject / decode /
  metrics), summed over the serial run's cells,
* cells/sec for both modes and the parallel speedup,
* environment provenance (git revision, CPU count, worker count),
* contained cell failures (both legs run under the resilient runtime), and
* a bounded ``history`` of prior reports — rerunning the bench folds the
  previous report in instead of clobbering the trajectory.

The JSON report (``BENCH_colorbars.json``) is the contract CI asserts and
archives; keep :data:`REQUIRED_KEYS` stable (grow the schema by bumping
:data:`BENCH_SCHEMA_VERSION` and adding keys, never by renaming).  Speedup
is an observation about the machine that ran the bench — ``cpu_count`` is
recorded precisely so a 1-core container's ~1x is not read as a regression
against a 4-core runner's ~3x.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.camera.color_filter import perturbed_response
from repro.camera.devices import DeviceProfile
from repro.camera.noise import SensorNoise
from repro.camera.optics import Optics
from repro.camera.sensor import DEFAULT_CAPTURE_PATH, SensorTiming
from repro.core.config import SystemConfig
from repro.exceptions import BenchError
from repro.link.simulator import LinkResult, RunSpec
from repro.perf.runtime import RuntimePolicy, run_specs_resilient
from repro.util.clock import wall_clock
from repro.util.stopwatch import StageTimings

#: Bump when the report layout changes; validators check it exactly.
#: v2 added ``failures`` (resilient-runtime cell failures during the bench)
#: and ``history`` (bounded list of prior reports, so the perf trajectory
#: survives reruns instead of being clobbered).
#: v3 added ``speedup_meaningful`` — false on single-CPU machines, where
#: the serial/parallel comparison measures pool overhead, not parallelism.
#: v4 added ``capture_path`` (which recording engine produced the numbers),
#: made the parallel leg optional (``null`` wall/cells-per-sec/speedup on
#: single-CPU hosts, where the comparison is meaningless), and switched the
#: timed legs to run *warm*: one untimed grid cell runs first so the report
#: tracks steady-state throughput instead of allocator/ufunc warm-up and
#: cold RNG-plan draws.
#: v5 added ``adaptive_vs_fixed`` — goodput of the closed-loop link
#: adaptation controller against its best fixed rung over a pinned
#: time-varying channel (:mod:`repro.link.adapt`), so rate-control
#: regressions show up in the tracked trajectory alongside raw throughput.
#: v6 added ``backend`` — which sweep backend ran each leg (``serial`` is
#: always ``inprocess`` semantics; ``parallel`` names the
#: :mod:`repro.perf.backends` backend of the parallel leg, or ``null``
#: when that leg is skipped), so speedup entries in the folded history
#: are attributable to the engine that produced them.
BENCH_SCHEMA_VERSION = 6

#: Default output path (repo root by convention).
BENCH_FILENAME = "BENCH_colorbars.json"

#: Prior runs kept in a report's ``history`` (most recent last).
MAX_HISTORY = 20

#: Every key a valid report must carry.
REQUIRED_KEYS = (
    "schema_version",
    "git_rev",
    "generated_unix",
    "workers",
    "cpu_count",
    "quick",
    "cells",
    "capture_path",
    "backend",
    "failures",
    "stages_s",
    "wall_clock_s",
    "cells_per_sec",
    "speedup",
    "speedup_meaningful",
    "adaptive_vs_fixed",
    "history",
)

#: CI floor for ``cells_per_sec.serial``: a hard regression tripwire, set
#: ~3x below the committed report's value to absorb runner-to-runner
#: variance while still catching a return to the per-frame Python loops
#: (which ran at ~1.8 cells/sec on the same grid).
SERIAL_CELLS_PER_SEC_FLOOR = 3.0

#: The pinned micro-sweep: small enough to finish in seconds, large enough
#: that record/decode dominate as they do in the full artifact sweeps.
_BENCH_SEED = 7
_BENCH_COLUMNS = 32
_FULL_GRID = ((4, 1000.0), (4, 2000.0), (8, 1000.0), (8, 2000.0))
_QUICK_GRID = ((4, 1000.0), (8, 2000.0))
_FULL_DURATION_S = 1.0
_QUICK_DURATION_S = 0.6


def bench_device() -> DeviceProfile:
    """The pinned bench camera: small, fast, and stable across PRs.

    800 rows at 30 fps with a 25% gap gives 16 rows per symbol at 2 kHz
    (32 at 1 kHz) — every pinned grid cell clears the 10-row demodulation
    minimum while frames still render in milliseconds.
    """
    return DeviceProfile(
        name="bench-800",
        timing=SensorTiming(rows=800, cols=64, frame_rate=30.0, gap_fraction=0.25),
        response=perturbed_response(
            name="bench CFA",
            crosstalk=0.08,
            hue_skew=0.1,
            white_balance_error=0.02,
            fidelity=0.5,
        ),
        noise=SensorNoise(row_noise=0.02),
        optics=Optics(ambient_luminance=0.2),
    )


def micro_sweep_specs(quick: bool = False) -> List[RunSpec]:
    """The pinned cells; ``quick`` halves the grid for CI smoke runs."""
    device = bench_device()
    grid = _QUICK_GRID if quick else _FULL_GRID
    duration_s = _QUICK_DURATION_S if quick else _FULL_DURATION_S
    return [
        RunSpec(
            config=SystemConfig(
                csk_order=order,
                symbol_rate=rate,
                design_loss_ratio=device.timing.gap_fraction,
                frame_rate=device.timing.frame_rate,
            ),
            device=device,
            simulated_columns=_BENCH_COLUMNS,
            seed=_BENCH_SEED,
            duration_s=duration_s,
        )
        for order, rate in grid
    ]


#: Pinned adaptation micro-trajectory: clean -> drifted -> clean on the
#: bench camera, two rungs (32 and 16 CSK).  Small on purpose — the entry
#: tracks the controller's goodput trajectory, not the full acceptance
#: experiment (that is the adaptation-smoke CI job on a phone profile).
_ADAPT_RATE = 2000.0
_ADAPT_SEGMENT_S = 0.5


def adaptive_vs_fixed_entry(quick: bool = False) -> Dict:
    """The ``adaptive_vs_fixed`` report entry: one pinned closed-loop run.

    Identical in quick and full mode — the run is sub-second either way,
    and a pinned trajectory keeps the goodput numbers comparable across
    every entry in the folded history.
    """
    from repro.link.adapt import (
        ModulationLadder,
        ModulationRung,
        adaptive_vs_fixed,
    )
    from repro.link.channel import ChannelTrajectory, TrajectorySegment

    del quick  # same entry in both modes, by design
    segment_s = _ADAPT_SEGMENT_S
    trajectory = ChannelTrajectory(
        segments=(
            TrajectorySegment(duration_s=segment_s),
            TrajectorySegment(duration_s=segment_s, drift_intensity=0.5),
            TrajectorySegment(duration_s=segment_s, drift_intensity=0.5),
            TrajectorySegment(duration_s=segment_s),
        )
    )
    ladder = ModulationLadder(
        rungs=(
            ModulationRung(csk_order=32, loss_ratio=0.20),
            ModulationRung(csk_order=16, white_margin=0.02, loss_ratio=0.25),
        )
    )
    start = time.perf_counter()
    comparison = adaptive_vs_fixed(
        trajectory,
        bench_device(),
        ladder=ladder,
        symbol_rate=_ADAPT_RATE,
        seed=_BENCH_SEED,
        simulated_columns=_BENCH_COLUMNS,
    )
    wall = time.perf_counter() - start
    best_index, best = comparison.best_fixed()
    actions = comparison.adaptive.actions()
    return {
        "goodput_bps": {
            "adaptive": round(comparison.adaptive.goodput_bps, 4),
            "best_fixed": round(best.goodput_bps, 4),
        },
        "best_fixed_rung": best_index,
        "downshifts": actions.count("downshift"),
        "upshifts": actions.count("upshift"),
        "quarantined": comparison.adaptive.quarantined,
        "segments": len(trajectory.segments),
        "wall_s": round(wall, 4),
    }


def run_bench(
    workers: int = 4,
    quick: bool = False,
    metrics=None,
    clock=None,
    cells: Optional[int] = None,
    profile_path=None,
    backend: str = "pool",
) -> Dict:
    """Execute the micro-sweep serially and at ``workers``, return the report.

    Both legs run through the resilient runtime (containment only — no
    watchdog, no retry), so a crashing cell degrades the report into a
    nonzero ``failures`` count instead of killing the bench.  One untimed
    grid cell runs first: the timed legs then measure steady-state
    throughput (ufuncs compiled, allocator warm, the deterministic RNG plan
    cache primed) rather than process start-up costs.

    ``cells`` overrides the grid size by cycling the pinned grid — larger
    runs average out scheduler noise, smaller ones make quick profiling
    turns.  ``profile_path`` (a path) profiles the serial leg with cProfile
    and writes a cumulative-time listing there.

    On a single-CPU host (or ``workers <= 1``) the parallel leg is skipped:
    its wall clock, cells/sec, and the speedup are reported as ``null`` —
    a serial/parallel comparison on one core measures pool overhead, not
    parallelism.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) collects
    pipeline counters across every timed leg — on multi-CPU hosts each cell
    runs twice, so counter totals cover 2x the grid.  Observation is
    measurement metadata and does not enter the report's timings comparison
    beyond its own (null-path) overhead.

    ``backend`` (a :mod:`repro.perf.backends` spec, default ``pool``)
    names the engine of the parallel leg and is recorded in the report —
    so a ``remote`` speedup and a ``pool`` speedup in the folded history
    are never conflated.  The serial leg always runs in-process.

    ``clock`` stamps ``generated_unix`` (provenance metadata only) and
    defaults to :data:`repro.util.clock.wall_clock`; tests inject a
    constant for reproducible reports.
    """
    from repro.exceptions import ConfigurationError
    from repro.perf.backends import BACKEND_REGISTRY, parse_backend_spec

    clock = clock if clock is not None else wall_clock
    try:
        backend_name, _ = parse_backend_spec(backend)
    except ConfigurationError as exc:
        raise BenchError(f"bad backend spec: {exc}") from exc
    if backend_name not in BACKEND_REGISTRY:
        raise BenchError(
            f"unknown backend {backend_name!r}; known backends: "
            + ", ".join(sorted(BACKEND_REGISTRY))
        )
    specs = micro_sweep_specs(quick=quick)
    if cells is not None:
        if cells <= 0:
            raise BenchError(f"cells must be positive, got {cells}")
        specs = [specs[i % len(specs)] for i in range(cells)]
    policy = RuntimePolicy()
    cpu_count = _cpu_count()
    run_parallel = workers > 1 and cpu_count > 1

    # Warm-up: one untimed cell from the pinned grid.
    run_specs_resilient(specs[:1], workers=1, policy=policy)

    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    serial_start = time.perf_counter()
    serial = run_specs_resilient(specs, workers=1, policy=policy, metrics=metrics)
    serial_wall = time.perf_counter() - serial_start
    if profiler is not None:
        profiler.disable()
        _write_profile(profiler, profile_path)

    parallel_wall = None
    parallel_failures = 0
    if run_parallel:
        parallel_start = time.perf_counter()
        parallel = run_specs_resilient(
            specs, workers=workers, policy=policy, metrics=metrics,
            backend=backend,
        )
        parallel_wall = time.perf_counter() - parallel_start
        parallel_failures = len(parallel.failures)

    stages = StageTimings()
    for result in serial.results:
        if result is not None:
            stages.merge(result.timings)

    adapt_entry = adaptive_vs_fixed_entry(quick=quick)

    cell_count = len(specs)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_rev": _git_rev(),
        "generated_unix": clock(),
        "workers": workers,
        "cpu_count": cpu_count,
        "quick": quick,
        "cells": cell_count,
        "capture_path": DEFAULT_CAPTURE_PATH,
        "backend": {
            "serial": "inprocess",
            "parallel": backend if run_parallel else None,
        },
        "failures": len(serial.failures) + parallel_failures,
        "history": [],
        "stages_s": {
            stage: round(seconds, 4) for stage, seconds in stages.as_dict().items()
        },
        "wall_clock_s": {
            "serial": round(serial_wall, 4),
            "parallel": round(parallel_wall, 4) if run_parallel else None,
        },
        "cells_per_sec": {
            "serial": round(cell_count / serial_wall, 4),
            "parallel": (
                round(cell_count / parallel_wall, 4) if run_parallel else None
            ),
        },
        "speedup": round(serial_wall / parallel_wall, 4) if run_parallel else None,
        # On one CPU the two legs contend for the same core: the ratio
        # measures pool overhead, not parallelism, so the leg is skipped
        # outright and the comparison reported as null.
        "speedup_meaningful": run_parallel,
        "adaptive_vs_fixed": adapt_entry,
    }


def _write_profile(profiler, path) -> None:
    """Dump a cProfile session as a cumulative-time listing at ``path``."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(60)
    Path(path).write_text(stream.getvalue())


def format_breakdown(report: Dict) -> List[str]:
    """Human-readable per-stage breakdown lines (the CLI prints them)."""
    lines = [
        f"bench: {report['cells']} cells, git {report['git_rev']}, "
        f"{report['cpu_count']} cpu(s)",
        f"{'stage':>10} | {'seconds':>8} | {'share':>6}",
        "-" * 32,
    ]
    total = sum(report["stages_s"].values()) or 1.0
    for stage, seconds in report["stages_s"].items():
        lines.append(f"{stage:>10} | {seconds:8.3f} | {seconds / total:5.1%}")
    wall = report["wall_clock_s"]
    cps = report["cells_per_sec"]
    lines.append(
        f"serial  : {wall['serial']:.3f} s ({cps['serial']:.2f} cells/s) "
        f"[{report.get('capture_path', 'batched')} capture]"
    )
    if wall["parallel"] is None:
        lines.append(
            "parallel: skipped (single CPU — the comparison would measure "
            "pool overhead, not parallelism)"
        )
    else:
        engine = (report.get("backend") or {}).get("parallel") or "pool"
        lines.append(
            f"parallel: {wall['parallel']:.3f} s ({cps['parallel']:.2f} cells/s) "
            f"at {report['workers']} workers on {engine} "
            f"-> speedup {report['speedup']:.2f}x"
        )
    if report.get("failures"):
        lines.append(
            f"DEGRADED: {report['failures']} cell failure(s) contained "
            "during the bench"
        )
    if report.get("history"):
        lines.append(f"history : {len(report['history'])} prior run(s) kept")
    return lines


def _prior_history(path) -> List[Dict]:
    """History carried over from an existing report at ``path``.

    The previous report (sans its own history) becomes the newest history
    entry; unreadable or foreign files contribute nothing, so the bench
    never refuses to write over a corrupt report.
    """
    try:
        prior = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(prior, dict) or "schema_version" not in prior:
        return []
    history = prior.get("history")
    entries = (
        [entry for entry in history if isinstance(entry, dict)]
        if isinstance(history, list)
        else []
    )
    entries.append({k: v for k, v in prior.items() if k != "history"})
    return entries[-MAX_HISTORY:]


def write_report(report: Dict, path) -> None:
    """Validate then write the report as pretty JSON.

    An existing report at ``path`` is not clobbered: it (and its own
    bounded history) is folded into the new report's ``history`` list, so
    the perf trajectory accumulates across reruns.
    """
    report = dict(report)
    report["history"] = _prior_history(path)
    validate_report(report)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def validate_report(report: Dict) -> None:
    """Raise :class:`BenchError` unless ``report`` matches the schema."""
    if not isinstance(report, dict):
        raise BenchError(f"bench report must be an object, got {type(report).__name__}")
    missing = [key for key in REQUIRED_KEYS if key not in report]
    if missing:
        raise BenchError(f"bench report is missing keys: {', '.join(missing)}")
    if report["schema_version"] != BENCH_SCHEMA_VERSION:
        raise BenchError(
            f"bench schema version {report['schema_version']!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    parallel_skipped = report["wall_clock_s"].get("parallel") is None
    for section in ("wall_clock_s", "cells_per_sec"):
        values = report[section]
        if not isinstance(values, dict) or set(values) != {"serial", "parallel"}:
            raise BenchError(f"{section} must map exactly serial/parallel")
        for mode, value in values.items():
            if mode == "parallel" and parallel_skipped:
                if value is not None:
                    raise BenchError(
                        f"{section}.parallel must be null when the parallel "
                        f"leg is skipped, got {value!r}"
                    )
                continue
            if not isinstance(value, (int, float)) or value <= 0:
                raise BenchError(f"{section}.{mode} must be positive, got {value!r}")
    if not isinstance(report["stages_s"], dict) or not report["stages_s"]:
        raise BenchError("stages_s must be a non-empty object")
    backend = report["backend"]
    if not isinstance(backend, dict) or set(backend) != {"serial", "parallel"}:
        raise BenchError("backend must map exactly serial/parallel")
    if backend["serial"] != "inprocess":
        raise BenchError(
            f"backend.serial must be 'inprocess', got {backend['serial']!r}"
        )
    if parallel_skipped:
        if backend["parallel"] is not None:
            raise BenchError(
                "backend.parallel must be null when the parallel leg is "
                f"skipped, got {backend['parallel']!r}"
            )
    elif not isinstance(backend["parallel"], str) or not backend["parallel"]:
        raise BenchError(
            "backend.parallel must name the parallel leg's backend, "
            f"got {backend['parallel']!r}"
        )
    if report.get("capture_path") not in ("batched", "reference"):
        raise BenchError(
            f"capture_path must be 'batched' or 'reference', "
            f"got {report.get('capture_path')!r}"
        )
    if parallel_skipped:
        if report["speedup"] is not None:
            raise BenchError(
                "speedup must be null when the parallel leg is skipped, "
                f"got {report['speedup']!r}"
            )
    elif not isinstance(report["speedup"], (int, float)) or report["speedup"] <= 0:
        raise BenchError(f"speedup must be positive, got {report['speedup']!r}")
    if not isinstance(report["speedup_meaningful"], bool):
        raise BenchError(
            "speedup_meaningful must be a boolean, got "
            f"{report['speedup_meaningful']!r}"
        )
    adapt = report["adaptive_vs_fixed"]
    if not isinstance(adapt, dict):
        raise BenchError(
            f"adaptive_vs_fixed must be an object, got {type(adapt).__name__}"
        )
    goodput = adapt.get("goodput_bps")
    if not isinstance(goodput, dict) or set(goodput) != {"adaptive", "best_fixed"}:
        raise BenchError(
            "adaptive_vs_fixed.goodput_bps must map exactly adaptive/best_fixed"
        )
    for mode, value in goodput.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            raise BenchError(
                f"adaptive_vs_fixed.goodput_bps.{mode} must be a "
                f"non-negative number, got {value!r}"
            )
    if not isinstance(adapt.get("quarantined"), bool):
        raise BenchError(
            "adaptive_vs_fixed.quarantined must be a boolean, got "
            f"{adapt.get('quarantined')!r}"
        )
    failures = report["failures"]
    if not isinstance(failures, int) or isinstance(failures, bool) or failures < 0:
        raise BenchError(
            f"failures must be a non-negative integer, got {failures!r}"
        )
    history = report["history"]
    if not isinstance(history, list) or not all(
        isinstance(entry, dict) for entry in history
    ):
        raise BenchError("history must be a list of prior report objects")
    if len(history) > MAX_HISTORY:
        raise BenchError(
            f"history must keep at most {MAX_HISTORY} entries, got {len(history)}"
        )


def load_and_validate(path) -> Dict:
    """Read a report file and validate it (CI's schema assertion)."""
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read bench report {path}: {exc}") from exc
    validate_report(report)
    return report


def _git_rev() -> str:
    """Short git revision of the working tree, or ``unknown`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _cpu_count() -> int:
    return os.cpu_count() or 1
