"""Rolling-shutter camera simulator.

The simulation substitute for the paper's Nexus 5 / iPhone 5S receivers.
Scene light (an :class:`~repro.phy.waveform.OpticalWaveform`) is integrated
per scanline with the device's exposure window, pushed through a
device-specific color response (receiver diversity, §6), vignetting optics
(§7 Fig 8a), Bayer mosaic/demosaic, sensor noise, automatic exposure/ISO
(§6.2) and finally gamma encoding — producing the same 8-bit sRGB frames a
phone camera app would hand to the ColorBars receiver.

Rolling-shutter timing (readout duration vs. inter-frame gap) is calibrated
per device to the loss ratios of Table 1.
"""

from repro.camera.auto_exposure import AutoExposure, ExposureSettings
from repro.camera.bayer import bayer_mosaic, demosaic_bilinear
from repro.camera.color_filter import ColorResponse
from repro.camera.devices import (
    DeviceProfile,
    generic_device,
    iphone_5s,
    nexus_5,
)
from repro.camera.frame import CapturedFrame
from repro.camera.noise import SensorNoise
from repro.camera.optics import Optics
from repro.camera.sensor import RollingShutterCamera, SensorTiming

__all__ = [
    "AutoExposure",
    "ExposureSettings",
    "bayer_mosaic",
    "demosaic_bilinear",
    "ColorResponse",
    "DeviceProfile",
    "generic_device",
    "iphone_5s",
    "nexus_5",
    "CapturedFrame",
    "SensorNoise",
    "Optics",
    "RollingShutterCamera",
    "SensorTiming",
]
