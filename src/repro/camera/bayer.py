"""Bayer color-filter-array mosaic and bilinear demosaicing (paper §6.1).

Each photodiode sees only one color through its filter; the ISP estimates
the missing channels from neighbours (demosaicing).  At the sharp color
transitions between rolling-shutter bands this interpolation mixes adjacent
symbols' colors — a genuine inter-symbol-interference mechanism that grows
as bands get narrower, contributing to the SER trend of Fig 9.

The RGGB pattern is used (rows alternate R-G and G-B filters, Fig 5a).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CameraError

#: Channel index sampled at each position of the 2x2 RGGB tile.
_RGGB = np.array([[0, 1], [1, 2]])


def bayer_mask(rows: int, cols: int) -> np.ndarray:
    """``(rows, cols)`` array of channel indices (0=R, 1=G, 2=B), RGGB tiling."""
    if rows <= 0 or cols <= 0:
        raise CameraError(f"rows and cols must be positive, got {rows}x{cols}")
    row_idx = np.arange(rows) % 2
    col_idx = np.arange(cols) % 2
    return _RGGB[row_idx[:, np.newaxis], col_idx[np.newaxis, :]]


def bayer_mosaic(image: np.ndarray) -> np.ndarray:
    """Sample a full-color linear image through the RGGB filter array.

    ``image`` is ``(rows, cols, 3)``; the result is ``(rows, cols)`` — one
    filtered sample per photodiode.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 3 or image.shape[2] != 3:
        raise CameraError(f"expected (rows, cols, 3) image, got {image.shape}")
    mask = bayer_mask(image.shape[0], image.shape[1])
    return np.take_along_axis(image, mask[..., np.newaxis], axis=2)[..., 0]


def _neighbor_average(plane: np.ndarray, presence: np.ndarray) -> np.ndarray:
    """Bilinear fill: average of present neighbours within a 3x3 window."""
    padded_value = np.pad(plane * presence, 1, mode="edge")
    padded_count = np.pad(presence.astype(float), 1, mode="edge")
    value_sum = np.zeros_like(plane, dtype=float)
    count_sum = np.zeros_like(plane, dtype=float)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            value_sum += padded_value[
                1 + dr : 1 + dr + plane.shape[0], 1 + dc : 1 + dc + plane.shape[1]
            ]
            count_sum += padded_count[
                1 + dr : 1 + dr + plane.shape[0], 1 + dc : 1 + dc + plane.shape[1]
            ]
    with np.errstate(invalid="ignore", divide="ignore"):
        filled = value_sum / count_sum
    return np.where(count_sum > 0, filled, 0.0)


def demosaic_bilinear(mosaic: np.ndarray) -> np.ndarray:
    """Reconstruct a full-color image from an RGGB mosaic by bilinear fill.

    Simple bilinear interpolation is what low-latency phone pipelines of the
    paper's era effectively approximate; its channel mixing at band edges is
    the ISI behaviour we want to exercise, not an artifact to avoid.
    """
    mosaic = np.asarray(mosaic, dtype=float)
    if mosaic.ndim != 2:
        raise CameraError(f"expected (rows, cols) mosaic, got {mosaic.shape}")
    rows, cols = mosaic.shape
    mask = bayer_mask(rows, cols)
    out = np.empty((rows, cols, 3), dtype=float)
    for channel in range(3):
        presence = mask == channel
        plane = np.where(presence, mosaic, 0.0)
        averaged = _neighbor_average(mosaic, presence)
        out[..., channel] = np.where(presence, plane, averaged)
    return out


def mosaic_roundtrip(image: np.ndarray) -> np.ndarray:
    """Mosaic + demosaic in one call — the sensor pipeline's CFA stage."""
    return demosaic_bilinear(bayer_mosaic(image))


# -- batched (leading-axes) variants --------------------------------------
#
# The vectorized capture engine (camera.capture) runs the CFA stage over a
# whole recording block ``(frames, rows, cols, 3)`` at once.  These nd
# variants keep the input dtype (the batched pipeline is float32), apply
# per-frame-independent arithmetic only, and share one geometry memo so the
# presence masks and neighbour counts are computed once per sensor shape.

#: (rows, cols) -> (per-channel presence (3, rows, cols) bool,
#:                  per-channel 3x3 neighbour counts (3, rows, cols) float)
_GEOMETRY_MEMO: "dict" = {}
_GEOMETRY_MEMO_MAX = 8


def _demosaic_geometry(rows: int, cols: int):
    """Presence masks and neighbour counts for an RGGB sensor shape.

    Returns ``(presence, counts_by_dtype, has_holes)`` where
    ``counts_by_dtype`` lazily caches the neighbour counts cast to each
    requested mosaic dtype and ``has_holes`` flags geometries (degenerate
    1-row/1-column sensors) where some window contains no sample at all.
    """
    key = (rows, cols)
    hit = _GEOMETRY_MEMO.get(key)
    if hit is not None:
        return hit
    mask = bayer_mask(rows, cols)
    presence = np.empty((3, rows, cols), dtype=bool)
    counts = np.empty((3, rows, cols), dtype=float)
    for channel in range(3):
        pres = mask == channel
        padded = np.pad(pres.astype(float), 1, mode="edge")
        count_sum = np.zeros((rows, cols), dtype=float)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                count_sum += padded[1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols]
        presence[channel] = pres
        counts[channel] = count_sum
    presence.flags.writeable = False
    counts.flags.writeable = False
    entry = (presence, {counts.dtype: counts}, bool((counts == 0).any()))
    if len(_GEOMETRY_MEMO) >= _GEOMETRY_MEMO_MAX:
        _GEOMETRY_MEMO.pop(next(iter(_GEOMETRY_MEMO)))
    _GEOMETRY_MEMO[key] = entry
    return entry


def _geometry_counts(counts_by_dtype: "dict", dtype) -> np.ndarray:
    counts = counts_by_dtype.get(dtype)
    if counts is None:
        counts = next(iter(counts_by_dtype.values())).astype(dtype)
        counts.flags.writeable = False
        counts_by_dtype[dtype] = counts
    return counts


def bayer_mosaic_nd(image: np.ndarray) -> np.ndarray:
    """RGGB sampling over ``(..., rows, cols, 3)``, preserving dtype."""
    image = np.asarray(image)
    if image.ndim < 3 or image.shape[-1] != 3:
        raise CameraError(f"expected (..., rows, cols, 3) image, got {image.shape}")
    mosaic = np.empty(image.shape[:-1], dtype=image.dtype)
    mosaic[..., 0::2, 0::2] = image[..., 0::2, 0::2, 0]
    mosaic[..., 0::2, 1::2] = image[..., 0::2, 1::2, 1]
    mosaic[..., 1::2, 0::2] = image[..., 1::2, 0::2, 1]
    mosaic[..., 1::2, 1::2] = image[..., 1::2, 1::2, 2]
    return mosaic


def _generic_fill_nd(
    mosaic: np.ndarray,
    presence: np.ndarray,
    counts: np.ndarray,
    has_holes: bool,
) -> np.ndarray:
    """Count-based separable 3x3 fill — works for any sensor geometry."""
    rows, cols = mosaic.shape[-2:]
    pad_width = [(0, 0)] * (mosaic.ndim - 2) + [(1, 1), (1, 1)]
    out = np.empty(mosaic.shape + (3,), dtype=mosaic.dtype)
    for channel in range(3):
        pres = presence[channel]
        plane = mosaic * pres
        padded = np.pad(plane, pad_width, mode="edge")
        # Separable 3x3 box sum: column triples first, then row triples —
        # six shifted adds instead of nine.
        col_sum = (
            padded[..., 0:cols]
            + padded[..., 1 : 1 + cols]
            + padded[..., 2 : 2 + cols]
        )
        value_sum = (
            col_sum[..., 0:rows, :]
            + col_sum[..., 1 : 1 + rows, :]
            + col_sum[..., 2 : 2 + rows, :]
        )
        count_sum = counts[channel]
        with np.errstate(invalid="ignore", divide="ignore"):
            filled = value_sum / count_sum
        if has_holes:
            filled = np.where(count_sum > 0, filled, 0)
        np.copyto(filled, plane, where=pres)
        out[..., channel] = filled
    return out


def _edge_triple(x: np.ndarray) -> np.ndarray:
    """Sliding triple sum along the last axis with replicated end pads.

    Matches the generic kernel's grouping exactly: interior elements sum as
    ``(left + center) + right``; the replicated pads make the first element
    ``(x0 + x0) + x1`` and the last ``(x[-2] + x[-1]) + x[-1]``.
    """
    out = np.empty_like(x)
    out[..., 1:-1] = (x[..., :-2] + x[..., 1:-1]) + x[..., 2:]
    out[..., 0] = (x[..., 0] + x[..., 0]) + x[..., 1]
    out[..., -1] = (x[..., -2] + x[..., -1]) + x[..., -1]
    return out


def _parity_fill_nd(
    mosaic: np.ndarray, presence: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Parity-class fill for even-dimension RGGB sensors (the common case).

    On an even ``rows x cols`` grid every absent site has a fixed neighbour
    pattern per 2x2 parity class, so the interior reduces to strided
    neighbour averages — no masked plane, no pad, and each output element
    costs at most three adds on quarter-size views instead of six full-size
    shifted adds.  The additions reproduce the generic separable grouping
    (column triple first, then row triple, zero terms dropped — dropping a
    ``+ 0.0`` term is exact for the non-negative-or-finite values here), so
    the result is bitwise identical to :func:`_generic_fill_nd`.  Border
    rows/columns touch the replicated edge pad; they are recomputed with the
    generic kernel on two-wide strips whose windows match the full-array
    windows exactly.
    """
    rows, cols = mosaic.shape[-2:]
    m = mosaic
    out = np.empty(mosaic.shape + (3,), dtype=mosaic.dtype)

    # Channel 0 (R at even rows, even cols).
    red = out[..., 0]
    red[..., 0::2, 0::2] = m[..., 0::2, 0::2]
    red[..., 0::2, 1 : cols - 1 : 2] = (
        m[..., 0::2, 0 : cols - 2 : 2] + m[..., 0::2, 2::2]
    ) / 2.0
    red[..., 1 : rows - 1 : 2, 0::2] = (
        m[..., 0 : rows - 2 : 2, 0::2] + m[..., 2::2, 0::2]
    ) / 2.0
    red[..., 1 : rows - 1 : 2, 1 : cols - 1 : 2] = (
        (m[..., 0 : rows - 2 : 2, 0 : cols - 2 : 2] + m[..., 0 : rows - 2 : 2, 2::2])
        + (m[..., 2::2, 0 : cols - 2 : 2] + m[..., 2::2, 2::2])
    ) / 4.0

    # Channel 2 (B at odd rows, odd cols) — the mirrored pattern.
    blue = out[..., 2]
    blue[..., 1::2, 1::2] = m[..., 1::2, 1::2]
    blue[..., 1::2, 2::2] = (
        m[..., 1::2, 1 : cols - 2 : 2] + m[..., 1::2, 3::2]
    ) / 2.0
    blue[..., 2::2, 1::2] = (
        m[..., 1 : rows - 2 : 2, 1::2] + m[..., 3::2, 1::2]
    ) / 2.0
    blue[..., 2::2, 2::2] = (
        (m[..., 1 : rows - 2 : 2, 1 : cols - 2 : 2] + m[..., 1 : rows - 2 : 2, 3::2])
        + (m[..., 3::2, 1 : cols - 2 : 2] + m[..., 3::2, 3::2])
    ) / 4.0

    # Channel 1 (G at even-odd and odd-even); absent sites average the
    # 4-neighbour cross with the generic grouping (up + (left+right)) + down.
    green = out[..., 1]
    green[..., 0::2, 1::2] = m[..., 0::2, 1::2]
    green[..., 1::2, 0::2] = m[..., 1::2, 0::2]
    cross = m[..., 1 : rows - 2 : 2, 2::2] + (
        m[..., 2::2, 1 : cols - 2 : 2] + m[..., 2::2, 3::2]
    )
    cross += m[..., 3::2, 2::2]
    green[..., 2::2, 2::2] = cross / 4.0
    cross = m[..., 0 : rows - 2 : 2, 1 : cols - 1 : 2] + (
        m[..., 1 : rows - 1 : 2, 0 : cols - 2 : 2] + m[..., 1 : rows - 1 : 2, 2::2]
    )
    cross += m[..., 2::2, 1 : cols - 1 : 2]
    green[..., 1 : rows - 1 : 2, 1 : cols - 1 : 2] = cross / 4.0

    # Border rows/cols see the replicated edge pad; recompute them with the
    # generic kernel's exact arithmetic on two-wide slices.  The generic
    # kernel pads the masked plane before summing, and replicating a row
    # commutes with the column triple, so a border value is the column
    # triple (with ``(p0 + p0) + p1``-style pad grouping) followed by the
    # row triple — reproduced here term by term, bitwise identical.
    for channel in range(3):
        pres = presence[channel]
        chan = out[..., channel]
        edge = m[..., :, 0:2] * pres[:, 0:2]
        col_sum = (edge[..., 0] + edge[..., 0]) + edge[..., 1]
        filled = _edge_triple(col_sum) / counts[channel][:, 0]
        np.copyto(filled, m[..., :, 0], where=pres[:, 0])
        chan[..., :, 0] = filled
        edge = m[..., :, cols - 2 :] * pres[:, cols - 2 :]
        col_sum = (edge[..., 0] + edge[..., 1]) + edge[..., 1]
        filled = _edge_triple(col_sum) / counts[channel][:, cols - 1]
        np.copyto(filled, m[..., :, cols - 1], where=pres[:, cols - 1])
        chan[..., :, cols - 1] = filled
        edge = m[..., 0:2, :] * pres[0:2, :]
        top_sum = _edge_triple(edge[..., 0, :])
        filled = ((top_sum + top_sum) + _edge_triple(edge[..., 1, :])) / counts[
            channel
        ][0]
        np.copyto(filled, m[..., 0, :], where=pres[0])
        chan[..., 0, :] = filled
        edge = m[..., rows - 2 :, :] * pres[rows - 2 :, :]
        bottom_sum = _edge_triple(edge[..., 1, :])
        filled = (
            (_edge_triple(edge[..., 0, :]) + bottom_sum) + bottom_sum
        ) / counts[channel][rows - 1]
        np.copyto(filled, m[..., rows - 1, :], where=pres[rows - 1])
        chan[..., rows - 1, :] = filled
    return out


def demosaic_bilinear_nd(mosaic: np.ndarray) -> np.ndarray:
    """Bilinear demosaic over ``(..., rows, cols)``, preserving dtype.

    Same 3x3 neighbour-average fill as :func:`demosaic_bilinear`, batched
    over any leading axes: every operation is elementwise or a fixed spatial
    shift, so a batched call is bitwise identical to per-frame calls.  Even
    sensor dimensions (every real device) take the parity-class fast path;
    odd or degenerate shapes fall back to the count-based generic kernel.
    Both produce bitwise-identical output.
    """
    mosaic = np.asarray(mosaic)
    if mosaic.ndim < 2:
        raise CameraError(f"expected (..., rows, cols) mosaic, got {mosaic.shape}")
    rows, cols = mosaic.shape[-2:]
    presence, counts_by_dtype, has_holes = _demosaic_geometry(rows, cols)
    counts = _geometry_counts(counts_by_dtype, mosaic.dtype)
    if rows % 2 == 0 and cols % 2 == 0 and rows >= 4 and cols >= 4:
        return _parity_fill_nd(mosaic, presence, counts)
    return _generic_fill_nd(mosaic, presence, counts, has_holes)


def mosaic_roundtrip_nd(image: np.ndarray) -> np.ndarray:
    """Batched mosaic + demosaic — the vectorized pipeline's CFA stage."""
    return demosaic_bilinear_nd(bayer_mosaic_nd(image))
