"""Bayer color-filter-array mosaic and bilinear demosaicing (paper §6.1).

Each photodiode sees only one color through its filter; the ISP estimates
the missing channels from neighbours (demosaicing).  At the sharp color
transitions between rolling-shutter bands this interpolation mixes adjacent
symbols' colors — a genuine inter-symbol-interference mechanism that grows
as bands get narrower, contributing to the SER trend of Fig 9.

The RGGB pattern is used (rows alternate R-G and G-B filters, Fig 5a).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CameraError

#: Channel index sampled at each position of the 2x2 RGGB tile.
_RGGB = np.array([[0, 1], [1, 2]])


def bayer_mask(rows: int, cols: int) -> np.ndarray:
    """``(rows, cols)`` array of channel indices (0=R, 1=G, 2=B), RGGB tiling."""
    if rows <= 0 or cols <= 0:
        raise CameraError(f"rows and cols must be positive, got {rows}x{cols}")
    row_idx = np.arange(rows) % 2
    col_idx = np.arange(cols) % 2
    return _RGGB[row_idx[:, np.newaxis], col_idx[np.newaxis, :]]


def bayer_mosaic(image: np.ndarray) -> np.ndarray:
    """Sample a full-color linear image through the RGGB filter array.

    ``image`` is ``(rows, cols, 3)``; the result is ``(rows, cols)`` — one
    filtered sample per photodiode.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 3 or image.shape[2] != 3:
        raise CameraError(f"expected (rows, cols, 3) image, got {image.shape}")
    mask = bayer_mask(image.shape[0], image.shape[1])
    return np.take_along_axis(image, mask[..., np.newaxis], axis=2)[..., 0]


def _neighbor_average(plane: np.ndarray, presence: np.ndarray) -> np.ndarray:
    """Bilinear fill: average of present neighbours within a 3x3 window."""
    padded_value = np.pad(plane * presence, 1, mode="edge")
    padded_count = np.pad(presence.astype(float), 1, mode="edge")
    value_sum = np.zeros_like(plane, dtype=float)
    count_sum = np.zeros_like(plane, dtype=float)
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            value_sum += padded_value[
                1 + dr : 1 + dr + plane.shape[0], 1 + dc : 1 + dc + plane.shape[1]
            ]
            count_sum += padded_count[
                1 + dr : 1 + dr + plane.shape[0], 1 + dc : 1 + dc + plane.shape[1]
            ]
    with np.errstate(invalid="ignore", divide="ignore"):
        filled = value_sum / count_sum
    return np.where(count_sum > 0, filled, 0.0)


def demosaic_bilinear(mosaic: np.ndarray) -> np.ndarray:
    """Reconstruct a full-color image from an RGGB mosaic by bilinear fill.

    Simple bilinear interpolation is what low-latency phone pipelines of the
    paper's era effectively approximate; its channel mixing at band edges is
    the ISI behaviour we want to exercise, not an artifact to avoid.
    """
    mosaic = np.asarray(mosaic, dtype=float)
    if mosaic.ndim != 2:
        raise CameraError(f"expected (rows, cols) mosaic, got {mosaic.shape}")
    rows, cols = mosaic.shape
    mask = bayer_mask(rows, cols)
    out = np.empty((rows, cols, 3), dtype=float)
    for channel in range(3):
        presence = mask == channel
        plane = np.where(presence, mosaic, 0.0)
        averaged = _neighbor_average(mosaic, presence)
        out[..., channel] = np.where(presence, plane, averaged)
    return out


def mosaic_roundtrip(image: np.ndarray) -> np.ndarray:
    """Mosaic + demosaic in one call — the sensor pipeline's CFA stage."""
    return demosaic_bilinear(bayer_mosaic(image))
