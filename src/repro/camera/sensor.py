"""The rolling-shutter sensor: scanline exposure, readout, inter-frame gap.

The sensor exposes and reads one scanline at a time (paper §2.1).  A frame
period ``1/F`` splits into the *readout* span — during which scanlines
sample the LED waveform — and the *inter-frame gap*, during which the ISP
processes the frame and every transmitted symbol is lost (§3.1 challenge 2,
Fig 2a).  The gap fraction is the device's inter-frame loss ratio ``l`` of
Table 1.

Capture pipeline per frame:

1. per-scanline exposure integration of the waveform (fast analytic windows),
2. scene optics (distance, ambient), device color response,
3. broadcast to 2-D, vignetting, exposure/ISO gain,
4. Bayer mosaic + demosaic (optional), sensor noise,
5. sRGB gamma + 8-bit quantization.

The number of *simulated* columns is configurable: the receiver averages
each scanline across columns anyway, so simulating a band of columns around
the image center preserves the statistics at a fraction of the cost; the
full-resolution geometry still defines timing and vignetting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.camera.auto_exposure import AutoExposure, ExposureSettings
from repro.camera.bayer import mosaic_roundtrip_nd
from repro.camera.capture import (
    PIXEL_DTYPE,
    AWB_ROW_LUMINANCE_FLOOR,
    RecordingPlan,
    apply_sensor_noise,
    develop_frame,
    develop_frames,
    draw_prnu_gain,
    encode_srgb_bytes,
    plan_recording,
)
from repro.camera.color_filter import ColorResponse
from repro.camera.frame import CapturedFrame
from repro.camera.noise import SensorNoise
from repro.camera.optics import Optics, cached_vignette_map
from repro.color.srgb import xyz_to_linear_rgb
from repro.exceptions import SensorTimingError
from repro.obs.schema import M_FRAMES_RECORDED, SPAN_CAPTURE
from repro.obs.trace import NULL_TRACER
from repro.phy.waveform import OpticalWaveform
from repro.util.rng import make_rng
from repro.util.validation import require, require_positive

#: Default engine for :meth:`RollingShutterCamera.record`.  ``"batched"``
#: develops the whole recording in chunked numpy passes; ``"reference"``
#: develops one frame at a time through the same kernels.  The two are
#: byte-identical (tests/camera/test_capture_equivalence.py); the reference
#: path exists as the equivalence oracle and a debugging aid.
DEFAULT_CAPTURE_PATH = "batched"

#: Valid values for ``capture_path``.
CAPTURE_PATHS = ("batched", "reference")


@dataclass(frozen=True)
class SensorTiming:
    """Rolling-shutter timing: resolution, frame rate, and gap fraction.

    ``gap_fraction`` is the inter-frame loss ratio ``l``: the gap lasts
    ``l / frame_rate`` and the readout ``(1 - l) / frame_rate``.
    """

    rows: int
    cols: int
    frame_rate: float
    gap_fraction: float

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise SensorTimingError(
                f"resolution must be positive, got {self.rows}x{self.cols}"
            )
        if self.frame_rate <= 0:
            raise SensorTimingError(
                f"frame_rate must be positive, got {self.frame_rate}"
            )
        if not 0 <= self.gap_fraction < 1:
            raise SensorTimingError(
                f"gap_fraction must be in [0, 1), got {self.gap_fraction}"
            )

    @property
    def frame_period(self) -> float:
        return 1.0 / self.frame_rate

    @property
    def readout_duration(self) -> float:
        """Time spent scanning rows within one frame period."""
        return (1.0 - self.gap_fraction) * self.frame_period

    @property
    def gap_duration(self) -> float:
        """The inter-frame dead time when transmitted symbols are lost."""
        return self.gap_fraction * self.frame_period

    @property
    def row_period(self) -> float:
        """Time between consecutive scanline exposures."""
        return self.readout_duration / self.rows

    def rows_per_symbol(self, symbol_rate: float) -> float:
        """Band width in scanlines at a symbol rate (Fig 3c's quantity)."""
        require_positive(symbol_rate, "symbol_rate")
        return 1.0 / (symbol_rate * self.row_period)

    def symbols_lost_per_gap(self, symbol_rate: float) -> float:
        """Expected symbols transmitted during one inter-frame gap."""
        require_positive(symbol_rate, "symbol_rate")
        return symbol_rate * self.gap_duration


class RollingShutterCamera:
    """A complete simulated phone camera.

    Parameters
    ----------
    timing:
        Rolling-shutter geometry/timing (device preset).
    response:
        The device's color response (receiver diversity).
    noise, optics:
        Sensor noise and lens models.
    auto_exposure:
        AE controller; ``None`` creates a default automatic one.
    simulated_columns:
        Columns actually rendered per frame (centered strip).  The receiver
        column-averages each scanline, so a strip preserves band statistics;
        noise after averaging is slightly pessimistic versus the full sensor,
        which only makes reproduced error rates conservative.
    radiometric_gain:
        Linear signal per (luminance x second x ISO/100).  The default is
        calibrated so the paper's close-range LED at the default emitter
        luminance reaches mid-exposure at the shortest shutter, as a bright
        close LED does on a real phone.
    enable_bayer:
        Route frames through the mosaic/demosaic stage (realistic edges).
    enable_awb:
        Automatic white balance: the ISP scales channel gains so the bright
        content of the frame averages to neutral (gray-world), adapting
        gradually across frames.  Phone pipelines always do this; it is why
        the LED's white symbols look white on any device even though each
        device's color *distortions* (crosstalk) remain — exactly the
        diversity picture of Fig 6(a).
    """

    def __init__(
        self,
        timing: SensorTiming,
        response: ColorResponse,
        noise: Optional[SensorNoise] = None,
        optics: Optional[Optics] = None,
        auto_exposure: Optional[AutoExposure] = None,
        simulated_columns: int = 64,
        radiometric_gain: float = 124.0,
        enable_bayer: bool = True,
        enable_awb: bool = True,
        awb_adapt_rate: float = 0.12,
        seed=None,
        capture_path: Optional[str] = None,
    ) -> None:
        require(
            0 < simulated_columns <= timing.cols,
            f"simulated_columns must be in (0, {timing.cols}], "
            f"got {simulated_columns}",
        )
        require_positive(radiometric_gain, "radiometric_gain")
        path = capture_path if capture_path is not None else DEFAULT_CAPTURE_PATH
        require(
            path in CAPTURE_PATHS,
            f"capture_path must be one of {CAPTURE_PATHS}, got {path!r}",
        )
        self.capture_path = path
        self.timing = timing
        self.response = response
        self.noise = noise if noise is not None else SensorNoise()
        self.optics = optics if optics is not None else Optics()
        self.auto_exposure = (
            auto_exposure if auto_exposure is not None else AutoExposure()
        )
        self.simulated_columns = simulated_columns
        self.radiometric_gain = radiometric_gain
        self.enable_bayer = enable_bayer
        self.enable_awb = enable_awb
        require(
            0 < awb_adapt_rate <= 1,
            f"awb_adapt_rate must be in (0, 1], got {awb_adapt_rate}",
        )
        self.awb_adapt_rate = awb_adapt_rate
        self._awb_gains = np.ones(3)
        self.rng = make_rng(seed)
        self._frame_index = 0
        # The vignette strip is geometry-only; computing it per frame would
        # dominate capture time on high-row-count sensors, so cache it.
        self._vignette_cache = self._compute_vignette_strip(
            timing.rows, simulated_columns
        )
        # Scene and color-response transforms are constant for the camera's
        # lifetime; hoisting them out of capture_frame saves a matrix build
        # and two optics evaluations per frame.
        self._response_matrix_t = self.response.effective_matrix.T
        self._scene_gain = self.optics.distance_gain()
        self._scene_ambient = self.optics.ambient_xyz()
        # float32 image-pipeline constants (see camera.capture): the
        # vignette strip cast once, its per-row mean (the scanline metering
        # basis), the squared read noise, and the lazily drawn PRNU fixed
        # pattern — a property of the silicon, drawn once per camera.
        self._vignette_f32 = np.ascontiguousarray(
            self._vignette_cache, dtype=PIXEL_DTYPE
        )
        self._vignette_f32.flags.writeable = False
        self._vignette_row_mean = self._vignette_cache.mean(axis=1)
        self._vignette_row_mean.flags.writeable = False
        self._read_noise_sq = PIXEL_DTYPE(self.noise.read_noise_electrons**2)
        self._prnu_gain: Optional[np.ndarray] = None

    # -- capture ---------------------------------------------------------

    def capture_frame(
        self,
        waveform: OpticalWaveform,
        start_time: float,
        settings: Optional[ExposureSettings] = None,
    ) -> CapturedFrame:
        """Capture one frame starting its first scanline at ``start_time``.

        With ``settings=None`` the AE controller's current settings are used
        and updated from the captured frame (automatic mode, as in the
        paper's evaluation); explicit settings model the manual sweeps of
        Figs 6(b)/6(c).
        """
        manual = settings is not None
        applied = settings if manual else self.auto_exposure.settings

        rows = self.timing.rows
        row_starts = start_time + np.arange(rows) * self.timing.row_period
        row_stops = row_starts + applied.exposure_s

        # 1. Scanline exposure integration of the transmitted waveform.
        scene_xyz = waveform.mean_xyz(row_starts, row_stops)
        # 2. Optics and device color response (hoisted invariants; identical
        # arithmetic to Optics.apply_to_scene / scene_xyz_to_camera_linear).
        scene_xyz = scene_xyz * self._scene_gain + self._scene_ambient
        camera_linear = xyz_to_linear_rgb(scene_xyz) @ self._response_matrix_t

        # 3. Radiometric scaling to full-well units, float32 cast, broadcast
        # to 2-D under the vignette strip (the image pipeline computes in
        # float32 — see camera.capture).
        gain = (
            self.radiometric_gain
            * applied.exposure_s
            * (applied.iso / self.noise.reference_iso)
        )
        signal_rows = np.clip(camera_linear * gain, 0.0, None).astype(PIXEL_DTYPE)
        signal = signal_rows[:, np.newaxis, :] * self._vignette_f32[..., np.newaxis]

        # 4. CFA sampling and sensor noise, drawn in the canonical order
        # (PRNU fixed pattern once per camera, then shot, then row gains).
        if self.enable_bayer:
            signal = mosaic_roundtrip_nd(signal)
        if self.noise.prnu > 0 and self._prnu_gain is None:
            self._prnu_gain = draw_prnu_gain(
                self.noise.prnu, rows, self.simulated_columns, self.rng
            )
        shot = self.rng.standard_normal(signal.shape, dtype=PIXEL_DTYPE)
        iso_gain = applied.iso / self.noise.reference_iso
        electrons = signal * PIXEL_DTYPE(
            self.noise.full_well_electrons / iso_gain
        )
        signal = np.clip(
            apply_sensor_noise(
                electrons,
                PIXEL_DTYPE(iso_gain / self.noise.full_well_electrons),
                self._read_noise_sq,
                shot,
                self._prnu_gain,
            ),
            0.0,
            1.0,
        )
        if self.noise.row_noise > 0:
            row_gain = (
                1.0 + self.rng.normal(0.0, self.noise.row_noise, (rows, 1, 3))
            ).astype(PIXEL_DTYPE)
            signal = np.clip(signal * row_gain, 0.0, 1.0)

        # 5. Automatic white balance (gray-world over bright content).
        if self.enable_awb:
            self._update_awb(signal)
            signal = np.clip(
                signal * self._awb_gains.astype(PIXEL_DTYPE), 0.0, 1.0
            )

        # 6. Gamma encode and quantize.
        pixels = encode_srgb_bytes(signal)

        frame = CapturedFrame(
            index=self._frame_index,
            pixels=pixels,
            start_time=start_time,
            row_period=self.timing.row_period,
            exposure=applied,
        )
        self._frame_index += 1

        if not manual:
            self.auto_exposure.observe_frame(float(signal.mean()), self.rng)
        return frame

    def record(
        self,
        waveform: OpticalWaveform,
        duration: float,
        start_time: float = 0.0,
        frame_jitter_s: float = 3e-4,
        tracer=None,
        metrics=None,
    ) -> List[CapturedFrame]:
        """Record video: frames at the frame rate, gaps between readouts.

        Mirrors the paper's receiver capturing "a continuous set of frames
        through video recording".  ``frame_jitter_s`` is the per-frame
        standard deviation of frame-start timing noise — real camera and
        transmitter oscillators drift relative to each other, which is what
        prevents the inter-frame gap from locking onto the same packet
        positions cycle after cycle (the paper leans on exactly this
        "unsynchronization", §5).

        ``tracer``/``metrics`` (see :mod:`repro.obs`) emit one ``capture``
        span per frame and count recorded frames; the no-op defaults keep
        the loop on the fast path.

        Recording runs the vectorized capture engine (:mod:`repro.camera.
        capture`): a sequential prologue threads jitter drift, AE, and AWB
        through scanline statistics in the canonical RNG draw order, then
        the image pipeline develops all frames in batched numpy passes
        (``capture_path="batched"``, the default) or one frame at a time
        through the same kernels (``"reference"``) — byte-identical by
        construction and pinned by the equivalence tests.
        """
        require_positive(duration, "duration")
        if frame_jitter_s < 0:
            raise SensorTimingError(
                f"frame_jitter_s must be >= 0, got {frame_jitter_s}"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        frames: List[CapturedFrame] = []
        rec = plan_recording(self, waveform, duration, start_time, frame_jitter_s)
        if rec is not None:
            if self.capture_path == "reference":
                for i in range(rec.frame_count):
                    with tracer.span(SPAN_CAPTURE, frame=i):
                        frames.append(
                            self._assemble_frame(rec, i, develop_frame(self, rec, i))
                        )
            else:
                pixels = develop_frames(self, rec)
                for i in range(rec.frame_count):
                    with tracer.span(SPAN_CAPTURE, frame=i):
                        frames.append(self._assemble_frame(rec, i, pixels[i]))
        if metrics is not None:
            metrics.counter(M_FRAMES_RECORDED).inc(len(frames))
        return frames

    def _assemble_frame(
        self, rec: RecordingPlan, index: int, pixels: np.ndarray
    ) -> CapturedFrame:
        frame = CapturedFrame(
            index=self._frame_index,
            pixels=pixels,
            start_time=float(rec.start_times[index]),
            row_period=self.timing.row_period,
            exposure=rec.settings[index],
        )
        self._frame_index += 1
        return frame

    # -- internals ---------------------------------------------------------

    def _update_awb(self, signal: np.ndarray) -> None:
        """Adapt white-balance gains from the frame's bright content.

        Gray-world over pixels above a brightness floor: the dominant bright
        stimulus (the LED's time-averaged near-white light) is steered to
        neutral.  Gains adapt with an EWMA so single frames of saturated
        color data cannot yank the balance.
        """
        luminance = signal.mean(axis=-1)
        # Gray-world over all lit pixels.  Dark rows (LED off) are excluded:
        # they carry only read noise and would bias the ratio estimate.  No
        # upper cut: a bright-subset estimate would skew toward the most
        # luminous colors when little white is on air.
        bright = signal[luminance >= 0.05]
        if bright.size == 0:
            return
        channel_means = bright.reshape(-1, 3).mean(axis=0)
        channel_means = np.maximum(channel_means, 1e-4)
        target = channel_means.mean()
        desired = target / channel_means
        desired = np.clip(desired, 0.25, 4.0)
        self._awb_gains = (
            (1 - self.awb_adapt_rate) * self._awb_gains
            + self.awb_adapt_rate * desired
        )

    def _update_awb_rows(self, row_rgb: np.ndarray) -> None:
        """Scanline-statistics AWB metering (the recording prologue's path).

        Same gray-world EWMA as :meth:`_update_awb`, metered on per-row mean
        RGB under the vignette row means — the decimated raw statistics a
        real ISP's 3A engine runs on — so recording never has to develop a
        frame before the next frame's control state is known.
        """
        luminance = row_rgb.mean(axis=-1)
        bright = row_rgb[luminance >= AWB_ROW_LUMINANCE_FLOOR]
        if bright.size == 0:
            return
        channel_means = np.maximum(bright.mean(axis=0), 1e-4)
        target = channel_means.mean()
        desired = np.clip(target / channel_means, 0.25, 4.0)
        self._awb_gains = (
            (1 - self.awb_adapt_rate) * self._awb_gains
            + self.awb_adapt_rate * desired
        )

    def _compute_vignette_strip(self, rows: int, cols: int) -> np.ndarray:
        """Vignetting over the simulated center strip of the full sensor.

        The full-sensor map is fetched from the process-wide geometry memo
        (:func:`repro.camera.optics.cached_vignette_map`): sweep cells share
        device geometry, so only the first camera per geometry pays the
        ~1 s cos^4 evaluation at phone resolutions.
        """
        full = cached_vignette_map(self.optics, rows, self.timing.cols)
        left = (self.timing.cols - cols) // 2
        return full[:, left : left + cols]

    def reset(self, seed=None) -> None:
        """Restart frame numbering and RNG (fresh recording session).

        Reseeding also discards the PRNU fixed pattern (the pattern is the
        first thing a fresh RNG draws) and the adapted AWB gains, so a
        reseeded camera reproduces a same-seeded new camera exactly.  The
        AE controller is caller-owned and keeps its state; lock it if the
        session must be bit-reproducible end to end.
        """
        self._frame_index = 0
        if seed is not None:
            self.rng = make_rng(seed)
            self._prnu_gain = None
            self._awb_gains = np.ones(3)
