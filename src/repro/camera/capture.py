"""Whole-recording capture engine: pre-drawn noise plans and batched kernels.

The per-frame capture loop of early revisions spent most of its time in
Python/numpy dispatch over small arrays.  This module restructures a
recording so that everything *deterministic* runs as a handful of numpy
passes over a ``(frames, rows, cols, 3)`` block, while the inherently
*sequential* state — frame-jitter drift accumulation, the AE controller,
the AWB EWMA — is threaded through a cheap per-frame prologue that only
touches ``(rows, 3)`` scanline statistics.

The vectorized-capture contract (DESIGN.md §5i):

* **Canonical draw order.**  All randomness for a recording is drawn from
  the camera RNG up front, in one documented order: (1) frame jitter
  ``(F,)``, (2) AE drift ``(F,)``, (3) the PRNU fixed pattern
  ``(rows, cols, 3)`` — once per camera lifetime, (4) shot-noise normals
  ``(F, rows, cols, 3)``, (5) row-noise gains ``(F, rows, 1, 3)``.  Draw
  shapes depend only on the recording geometry and noise flags, never on
  signal values, so the order is reproducible by construction.
* **Sequential prologue.**  AE and AWB meter on per-scanline statistics
  (signal rows times the vignette row means) — the way a real ISP's
  statistics engine meters on decimated raw stats — so the settings chain
  ``settings[i+1] = f(settings[i], stats[i], drift[i])`` costs O(rows)
  per frame and never blocks the heavy image formation.
* **Batched image formation.**  Vignette broadcast, Bayer mosaic/demosaic,
  the fused shot/read/PRNU noise kernel, row-noise gains, AWB gains and
  the sRGB encode all run over the whole recording (chunked to bound
  memory).  The image pipeline computes in float32 — distribution-faithful
  for a sensor model whose output is 8-bit — while all *timing* stays in
  float64.
* **Fast ↔ reference equivalence.**  :func:`develop_frames` (batched) and
  :func:`develop_frame` (one frame at a time) consume the same prologue
  arrays and the same float32 kernels, differing only in whether the
  leading frames axis is present; every kernel is elementwise or
  per-frame-spatial, so the two paths produce byte-identical pixels.
  ``RollingShutterCamera(capture_path="reference")`` keeps the slow path
  selectable, and ``tests/camera/test_capture_equivalence.py`` pins the
  guarantee.

Plans are memoized process-wide keyed on the *exact RNG state* plus the
draw-plan spec: sweep cells sharing a seed (the bench, resilience sweeps)
draw their noise once, and a cache hit restores the generator to the same
end state a miss would have left, so cache state can never change results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.camera.auto_exposure import ExposureSettings
from repro.camera.bayer import mosaic_roundtrip_nd
from repro.color.srgb import xyz_to_linear_rgb
from repro.exceptions import CameraError

#: Dtype of the batched image pipeline (timing stays float64).
PIXEL_DTYPE = np.float32

#: Row-luminance floor for the scanline gray-world AWB metering, matching
#: the pixel-level floor of the single-frame path.
AWB_ROW_LUMINANCE_FLOOR = 0.05

#: Frames are developed in chunks of at most this many float32 elements:
#: bounds peak RSS on phone-resolution recordings and keeps each chunk's
#: working set cache-resident (measured ~30% faster than one whole-recording
#: block on the bench geometry).  Chunking cannot change results — every
#: kernel is per-frame independent.
_CHUNK_ELEMENTS = 480_000


# -- the draw plan ---------------------------------------------------------


@dataclass(frozen=True)
class DrawPlanSpec:
    """Everything that determines a recording's draw shapes and sigmas.

    Value-only and hashable: together with the RNG state it is the memo key
    for :func:`cached_capture_plan`.  ``drift_sigma`` is zero when AE is
    locked (no drift draws happen); ``prnu`` is zero when the camera's
    fixed pattern has already been drawn.
    """

    frame_count: int
    rows: int
    cols: int
    jitter_sigma: float
    drift_sigma: float
    prnu: float
    row_noise: float

    def __post_init__(self) -> None:
        if self.frame_count <= 0 or self.rows <= 0 or self.cols <= 0:
            raise CameraError(
                f"draw plan needs positive dimensions, got {self}"
            )


class CaptureDrawPlan:
    """All RNG draws for one recording, in the canonical order.

    Arrays are read-only: plans are shared through the process-wide memo
    and must never be mutated by a consumer.
    """

    __slots__ = ("spec", "jitter", "drift", "prnu_gain", "shot", "row_gain")

    def __init__(
        self,
        spec: DrawPlanSpec,
        jitter: np.ndarray,
        drift: np.ndarray,
        prnu_gain: Optional[np.ndarray],
        shot: np.ndarray,
        row_gain: Optional[np.ndarray],
    ) -> None:
        self.spec = spec
        self.jitter = jitter
        self.drift = drift
        self.prnu_gain = prnu_gain
        self.shot = shot
        self.row_gain = row_gain
        for array in (jitter, drift, prnu_gain, shot, row_gain):
            if array is not None:
                array.flags.writeable = False

    @property
    def nbytes(self) -> int:
        total = 0
        for array in (self.jitter, self.drift, self.prnu_gain, self.shot, self.row_gain):
            if array is not None:
                total += array.nbytes
        return total


def draw_capture_plan(
    spec: DrawPlanSpec, rng: np.random.Generator
) -> CaptureDrawPlan:
    """Draw a recording's noise plan in the canonical order (see module doc)."""
    frames, rows, cols = spec.frame_count, spec.rows, spec.cols
    jitter = (
        rng.normal(0.0, spec.jitter_sigma, frames)
        if spec.jitter_sigma > 0
        else np.zeros(frames)
    )
    drift = (
        rng.normal(0.0, spec.drift_sigma, frames)
        if spec.drift_sigma > 0
        else np.zeros(frames)
    )
    prnu_gain = None
    if spec.prnu > 0:
        prnu_gain = draw_prnu_gain(spec.prnu, rows, cols, rng)
    shot = rng.standard_normal((frames, rows, cols, 3), dtype=PIXEL_DTYPE)
    row_gain = None
    if spec.row_noise > 0:
        row_gain = (
            1.0 + rng.normal(0.0, spec.row_noise, (frames, rows, 1, 3))
        ).astype(PIXEL_DTYPE)
    return CaptureDrawPlan(spec, jitter, drift, prnu_gain, shot, row_gain)


def draw_prnu_gain(
    prnu: float, rows: int, cols: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw the camera-lifetime PRNU fixed-pattern gain ``(rows, cols, 3)``.

    Photo-response non-uniformity is a property of the silicon, not of a
    frame: it is drawn once per camera (draw-order slot 3) and reused for
    every subsequent frame and recording.
    """
    gain = (1.0 + rng.normal(0.0, prnu, (rows, cols, 3))).astype(PIXEL_DTYPE)
    gain.flags.writeable = False
    return gain


#: Process-wide plan memo: (bit-generator state, spec) -> (plan, end state).
#: Sweeps reuse one seed across cells, so every cell after the first gets
#: its draws for free; restoring the stored end state on a hit makes the
#: cache observationally invisible to the generator.
_PLAN_CACHE: Dict[Tuple, Tuple[CaptureDrawPlan, dict]] = {}
_PLAN_CACHE_MAX_BYTES = 128_000_000


def _plan_cache_key(spec: DrawPlanSpec, rng: np.random.Generator) -> Tuple:
    # ``repr`` of the state dict is deterministic: numpy builds it with a
    # fixed insertion order for a given bit generator.
    return (repr(rng.bit_generator.state), spec)


def cached_capture_plan(
    spec: DrawPlanSpec, rng: np.random.Generator
) -> CaptureDrawPlan:
    """Draw (or fetch) a plan; the RNG always ends in the post-draw state."""
    key = _plan_cache_key(spec, rng)
    hit = _PLAN_CACHE.get(key)
    if hit is not None:
        plan, end_state = hit
        rng.bit_generator.state = end_state
        return plan
    plan = draw_capture_plan(spec, rng)
    end_state = rng.bit_generator.state
    if plan.nbytes <= _PLAN_CACHE_MAX_BYTES:
        used = sum(entry[0].nbytes for entry in _PLAN_CACHE.values())
        while _PLAN_CACHE and used + plan.nbytes > _PLAN_CACHE_MAX_BYTES:
            evicted, _ = _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            used -= evicted.nbytes
        _PLAN_CACHE[key] = (plan, end_state)
    return plan


# -- the sequential prologue ----------------------------------------------


@dataclass
class RecordingPlan:
    """Per-frame deterministic state shared by both develop paths.

    Produced once per recording by :func:`plan_recording`; both the batched
    and the reference path read these arrays (float32 casts included), so
    no settings/gain value can ever differ between them.
    """

    frame_count: int
    start_times: np.ndarray        # (F,) float64
    settings: List[ExposureSettings]
    electron_rows: np.ndarray      # (F, rows, 3) float32, photoelectron-scaled
    awb_gains: Optional[np.ndarray]   # (F, 1, 1, 3) float32, None = AWB off
    electron_inv_scale: np.ndarray  # (F, 1, 1, 1) float32
    draws: CaptureDrawPlan


def plan_recording(
    camera,
    waveform,
    duration: float,
    start_time: float,
    frame_jitter_s: float,
) -> Optional[RecordingPlan]:
    """Run the sequential prologue: draws, timing, AE/AWB, row signals.

    Mutates the camera's AE controller and AWB gains exactly as the
    recording proceeds (this *is* the recording's control loop); returns
    ``None`` when the duration is too short for a single frame.
    """
    timing = camera.timing
    frame_count = int(duration * timing.frame_rate)
    if frame_count <= 0:
        return None

    rows = timing.rows
    cols = camera.simulated_columns
    noise = camera.noise
    ae = camera.auto_exposure
    auto = not ae.locked
    spec = DrawPlanSpec(
        frame_count=frame_count,
        rows=rows,
        cols=cols,
        jitter_sigma=frame_jitter_s,
        drift_sigma=ae.drift_sigma if auto else 0.0,
        prnu=noise.prnu if camera._prnu_gain is None else 0.0,
        row_noise=noise.row_noise,
    )
    draws = cached_capture_plan(spec, camera.rng)
    if spec.prnu > 0:
        camera._prnu_gain = draws.prnu_gain

    row_offsets = np.arange(rows) * timing.row_period
    vignette_row_mean = camera._vignette_row_mean

    start_times = np.empty(frame_count)
    settings: List[ExposureSettings] = []
    signal_rows = np.empty((frame_count, rows, 3))
    awb_gains = np.empty((frame_count, 3)) if camera.enable_awb else None
    iso_values = np.empty(frame_count)

    drift_t = 0.0
    for i in range(frame_count):
        if frame_jitter_s > 0:
            drift_t += float(draws.jitter[i])
        t0 = start_time + i * timing.frame_period + drift_t
        applied = ae.settings
        row_starts = t0 + row_offsets
        row_stops = row_starts + applied.exposure_s

        scene_xyz = waveform.mean_xyz(row_starts, row_stops)
        scene_xyz = scene_xyz * camera._scene_gain + camera._scene_ambient
        camera_linear = xyz_to_linear_rgb(scene_xyz) @ camera._response_matrix_t
        gain = (
            camera.radiometric_gain
            * applied.exposure_s
            * (applied.iso / noise.reference_iso)
        )
        rows_signal = np.clip(camera_linear * gain, 0.0, None)

        # Scanline metering basis: the row signal under the mean vignette of
        # its scanline — the exact per-row mean of the pre-mosaic image.
        row_rgb = rows_signal * vignette_row_mean[:, np.newaxis]
        if camera.enable_awb:
            camera._update_awb_rows(row_rgb)
            awb_gains[i] = camera._awb_gains
        if auto:
            metered = row_rgb * camera._awb_gains if camera.enable_awb else row_rgb
            mean_level = float(np.clip(metered, 0.0, 1.0).mean())
            ae.step(mean_level, float(draws.drift[i]))

        start_times[i] = t0
        settings.append(applied)
        signal_rows[i] = rows_signal
        iso_values[i] = applied.iso

    iso_gain = iso_values / noise.reference_iso
    scale = (noise.full_well_electrons / iso_gain).astype(PIXEL_DTYPE)
    inv_scale = (iso_gain / noise.full_well_electrons).astype(PIXEL_DTYPE)
    # The per-frame electron scale is folded into the row signal here: the
    # vignette multiply and the (linear) CFA roundtrip commute with a
    # per-frame scalar, so the develop kernels start directly from
    # photoelectron rows and skip one full-resolution multiply.
    electron_rows = signal_rows.astype(PIXEL_DTYPE)
    electron_rows *= scale[:, np.newaxis, np.newaxis]
    return RecordingPlan(
        frame_count=frame_count,
        start_times=start_times,
        settings=settings,
        electron_rows=electron_rows,
        awb_gains=(
            awb_gains.astype(PIXEL_DTYPE).reshape(frame_count, 1, 1, 3)
            if awb_gains is not None
            else None
        ),
        electron_inv_scale=inv_scale.reshape(frame_count, 1, 1, 1),
        draws=draws,
    )


# -- float32 kernels (shared verbatim by both develop paths) ---------------


def apply_sensor_noise(
    electrons: np.ndarray,
    inv_scale: np.ndarray,
    read_noise_sq: np.float32,
    shot: np.ndarray,
    prnu_gain: Optional[np.ndarray],
) -> np.ndarray:
    """Fused shot/read/PRNU noise: photoelectrons in, linear signal out.

    The Gaussian shot/read approximation uses one fused
    ``sqrt(electrons + read^2)`` standard deviation; ``shot`` holds the
    pre-drawn unit normals, ``prnu_gain`` the camera's fixed pattern.  The
    output is *unclipped* — the pipeline saturates exactly once, inside
    :func:`encode_srgb_bytes`.
    """
    std = np.sqrt(electrons + read_noise_sq)
    noisy = electrons + shot * std
    if prnu_gain is not None:
        noisy *= prnu_gain
    noisy *= inv_scale
    return noisy


def encode_srgb_bytes(linear: np.ndarray) -> np.ndarray:
    """Gamma-encode linear float32 and quantize to uint8 in one pass.

    Clips to [0, 1] first — this is the pipeline's single saturation point.
    """
    x = np.clip(linear, 0.0, 1.0)
    srgb = np.power(x, 1.0 / 2.4)
    srgb *= 1.055
    srgb -= 0.055
    np.copyto(srgb, x * 12.92, where=x <= 0.0031308)
    srgb *= 255.0
    np.round(srgb, out=srgb)
    return srgb.astype(np.uint8)


def _develop_block(camera, rec: RecordingPlan, lo: int, hi: int) -> np.ndarray:
    """Develop frames [lo, hi) as one batched block -> uint8 pixels."""
    draws = rec.draws
    signal = (
        rec.electron_rows[lo:hi, :, np.newaxis, :]
        * camera._vignette_f32[:, :, np.newaxis]
    )
    if camera.enable_bayer:
        signal = mosaic_roundtrip_nd(signal)
    signal = apply_sensor_noise(
        signal,
        rec.electron_inv_scale[lo:hi],
        camera._read_noise_sq,
        draws.shot[lo:hi],
        camera._prnu_gain,
    )
    row_gain = draws.row_gain
    if row_gain is not None and rec.awb_gains is not None:
        signal *= row_gain[lo:hi] * rec.awb_gains[lo:hi]
    elif row_gain is not None:
        signal *= row_gain[lo:hi]
    elif rec.awb_gains is not None:
        signal *= rec.awb_gains[lo:hi]
    return encode_srgb_bytes(signal)


def develop_frames(camera, rec: RecordingPlan) -> np.ndarray:
    """The batched path: all frames' pixels, ``(F, rows, cols, 3)`` uint8.

    Chunked over the frames axis to bound peak memory; every kernel is
    per-frame independent, so chunking cannot change a single byte.
    """
    rows, cols = camera.timing.rows, camera.simulated_columns
    per_frame = rows * cols * 3
    chunk = max(1, _CHUNK_ELEMENTS // per_frame)
    if chunk >= rec.frame_count:
        return _develop_block(camera, rec, 0, rec.frame_count)
    pixels = np.empty((rec.frame_count, rows, cols, 3), dtype=np.uint8)
    for lo in range(0, rec.frame_count, chunk):
        hi = min(lo + chunk, rec.frame_count)
        pixels[lo:hi] = _develop_block(camera, rec, lo, hi)
    return pixels


def develop_frame(camera, rec: RecordingPlan, index: int) -> np.ndarray:
    """The reference path: one frame's pixels via the same kernels.

    Identical arithmetic to :func:`develop_frames` on the matching slice —
    the fast↔reference equivalence gate asserts byte equality.
    """
    draws = rec.draws
    signal = (
        rec.electron_rows[index][:, np.newaxis, :]
        * camera._vignette_f32[..., np.newaxis]
    )
    if camera.enable_bayer:
        signal = mosaic_roundtrip_nd(signal)
    signal = apply_sensor_noise(
        signal,
        rec.electron_inv_scale[index],
        camera._read_noise_sq,
        draws.shot[index],
        camera._prnu_gain,
    )
    row_gain = draws.row_gain
    if row_gain is not None and rec.awb_gains is not None:
        signal *= row_gain[index] * rec.awb_gains[index]
    elif row_gain is not None:
        signal *= row_gain[index]
    elif rec.awb_gains is not None:
        signal *= rec.awb_gains[index]
    return encode_srgb_bytes(signal)
