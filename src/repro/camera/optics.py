"""Lens/scene optics: vignetting, distance attenuation, ambient light.

Fig 8(a) of the paper shows the received frame is brighter at the center
than at the periphery; that non-uniform brightness is the reason the
receiver demodulates in CIELab's ab-plane instead of RGB.  The standard
cos^4 vignetting law reproduces it.  Distance attenuation and additive
ambient light complete the link-budget model (the paper operates within
~3 cm of a low-lumen LED).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.color.ciexyz import xy_to_XYZ
from repro.color.illuminants import ILLUMINANT_A
from repro.exceptions import CameraError


@dataclass(frozen=True)
class Optics:
    """Optical path between the LED and the sensor.

    ``vignetting_strength`` in [0, 1] scales the corner falloff (0 disables);
    ``field_angle_rad`` is the half field-of-view reaching the frame corner;
    ``distance_m`` attenuates irradiance by the inverse-square law relative
    to ``reference_distance_m``; ``ambient_luminance`` adds a constant
    incandescent-ish background (illuminant A chromaticity).
    """

    vignetting_strength: float = 0.85
    field_angle_rad: float = 0.35
    distance_m: float = 0.03
    reference_distance_m: float = 0.03
    ambient_luminance: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.vignetting_strength <= 1.0:
            raise CameraError(
                f"vignetting_strength must be in [0, 1], "
                f"got {self.vignetting_strength}"
            )
        if self.distance_m <= 0 or self.reference_distance_m <= 0:
            raise CameraError("distances must be positive")
        if self.ambient_luminance < 0:
            raise CameraError("ambient_luminance must be >= 0")

    def distance_gain(self) -> float:
        """Inverse-square irradiance factor relative to the reference range."""
        ratio = self.reference_distance_m / self.distance_m
        return ratio * ratio

    def vignette_map(self, rows: int, cols: int) -> np.ndarray:
        """``(rows, cols)`` relative illumination map (1 at the center).

        Classic cos^4(theta) falloff with theta growing radially toward the
        corners, blended by ``vignetting_strength``.
        """
        if rows <= 0 or cols <= 0:
            raise CameraError(f"rows and cols must be positive, got {rows}x{cols}")
        row_coords = (np.arange(rows) - (rows - 1) / 2.0) / max((rows - 1) / 2.0, 1)
        col_coords = (np.arange(cols) - (cols - 1) / 2.0) / max((cols - 1) / 2.0, 1)
        radius = np.sqrt(
            row_coords[:, np.newaxis] ** 2 + col_coords[np.newaxis, :] ** 2
        ) / np.sqrt(2.0)
        theta = radius * self.field_angle_rad
        falloff = np.cos(theta) ** 4
        return 1.0 - self.vignetting_strength * (1.0 - falloff)

    def ambient_xyz(self) -> np.ndarray:
        """XYZ of the additive ambient background light."""
        if self.ambient_luminance == 0.0:
            return np.zeros(3)
        return xy_to_XYZ(
            np.array(ILLUMINANT_A.xy), Y=self.ambient_luminance
        )

    def apply_to_scene(self, xyz: np.ndarray) -> np.ndarray:
        """Distance attenuation plus ambient, before the sensor sees light."""
        xyz = np.asarray(xyz, dtype=float)
        return xyz * self.distance_gain() + self.ambient_xyz()


#: Full-sensor vignette maps are pure geometry — (optics, rows, cols) — yet
#: cost ~1 s at phone resolutions, so rebuilding one per camera dominates
#: short sweep cells.  Memoized here; entries are returned read-only because
#: they are shared across every camera in the process.
_VIGNETTE_CACHE: Dict[Tuple["Optics", int, int], np.ndarray] = {}
_VIGNETTE_CACHE_MAX = 16


def cached_vignette_map(optics: Optics, rows: int, cols: int) -> np.ndarray:
    """A process-wide memo over :meth:`Optics.vignette_map`.

    Bit-identical to calling the method directly (the map is deterministic
    geometry); the returned array is marked non-writeable — copy before
    mutating.  The cache holds the :data:`_VIGNETTE_CACHE_MAX` most recently
    inserted geometries (FIFO), bounding memory for synthetic-device
    population studies that vary optics per device.
    """
    key = (optics, rows, cols)
    cached = _VIGNETTE_CACHE.get(key)
    if cached is None:
        cached = optics.vignette_map(rows, cols)
        cached.flags.writeable = False
        while len(_VIGNETTE_CACHE) >= _VIGNETTE_CACHE_MAX:
            _VIGNETTE_CACHE.pop(next(iter(_VIGNETTE_CACHE)))
        _VIGNETTE_CACHE[key] = cached
    return cached
