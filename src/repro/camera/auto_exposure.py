"""Automatic exposure / ISO control (paper §6.2).

Phone cameras continuously retune exposure time and ISO to the ambient
conditions; the paper shows the same transmitted color being received
differently as those parameters move (Figs 6b/6c), and deliberately leaves
both on automatic during evaluation "as it happens in most practical
scenarios".  This controller reproduces that behaviour: a proportional
controller steering mean frame luminance toward a target, with bounded
actuator ranges, preference for short exposures (bright scene), and a small
random drift so consecutive frames are never parameter-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.exceptions import CameraError


@dataclass(frozen=True)
class ExposureSettings:
    """The two knobs AE controls, as the paper's Figs 6(b)/6(c) sweep them."""

    exposure_s: float
    iso: float

    def __post_init__(self) -> None:
        if self.exposure_s <= 0:
            raise CameraError(f"exposure_s must be positive, got {self.exposure_s}")
        if self.iso <= 0:
            raise CameraError(f"iso must be positive, got {self.iso}")

    def gain(self, reference_iso: float = 100.0) -> float:
        """Combined radiometric gain relative to 1 s at the reference ISO."""
        return self.exposure_s * (self.iso / reference_iso)


@dataclass
class AutoExposure:
    """Bounded proportional AE controller with per-frame drift.

    ``target_level`` is the desired mean linear signal of the frame (phone
    AEs aim for mid-gray); ``adapt_rate`` is the per-frame proportional step;
    ``drift_sigma`` the lognormal per-frame wander that keeps the channel
    non-stationary (what periodic recalibration compensates).
    """

    min_exposure_s: float = 1.0 / 8000.0
    max_exposure_s: float = 1.0 / 120.0
    min_iso: float = 100.0
    max_iso: float = 1600.0
    target_level: float = 0.45
    adapt_rate: float = 0.5
    drift_sigma: float = 0.01
    locked: bool = False

    def __post_init__(self) -> None:
        if self.min_exposure_s <= 0 or self.max_exposure_s <= self.min_exposure_s:
            raise CameraError("exposure bounds must satisfy 0 < min < max")
        if self.min_iso <= 0 or self.max_iso <= self.min_iso:
            raise CameraError("iso bounds must satisfy 0 < min < max")
        if not 0 < self.target_level < 1:
            raise CameraError(
                f"target_level must be in (0, 1), got {self.target_level}"
            )
        if not 0 <= self.adapt_rate <= 1:
            raise CameraError(f"adapt_rate must be in [0, 1], got {self.adapt_rate}")
        if self.drift_sigma < 0:
            raise CameraError("drift_sigma must be >= 0")
        self._settings = ExposureSettings(self.min_exposure_s, self.min_iso)

    @property
    def settings(self) -> ExposureSettings:
        """Settings the next frame will be captured with."""
        return self._settings

    def lock(self, settings: Optional[ExposureSettings] = None) -> None:
        """Freeze AE (manual mode), optionally at explicit settings."""
        if settings is not None:
            self._settings = settings
        self.locked = True

    def unlock(self) -> None:
        self.locked = False

    def observe_frame(
        self, mean_linear_level: float, rng: np.random.Generator
    ) -> ExposureSettings:
        """Feed back the captured frame's mean level; returns next settings.

        The controller multiplies total gain by ``(target / observed) ^ rate``
        (clamped), preferring exposure-time changes and touching ISO only
        when exposure saturates its bounds — the strategy phone AEs follow to
        keep noise low.
        """
        if mean_linear_level < 0:
            raise CameraError("mean_linear_level must be >= 0")
        if self.locked:
            return self._settings
        drift = (
            float(rng.normal(0.0, self.drift_sigma))
            if self.drift_sigma > 0
            else 0.0
        )
        return self.step(mean_linear_level, drift)

    def step(self, mean_linear_level: float, drift_normal: float) -> ExposureSettings:
        """Advance the controller one frame with a pre-drawn drift normal.

        The vectorized capture prologue (:mod:`repro.camera.capture`) draws
        all drift normals for a recording up front and feeds them here one
        frame at a time; :meth:`observe_frame` is the draw-then-step wrapper
        for single-frame capture.  Callers are responsible for the ``locked``
        check — a locked controller must not be stepped.
        """
        if mean_linear_level < 0:
            raise CameraError("mean_linear_level must be >= 0")
        observed = max(mean_linear_level, 1e-4)
        correction = (self.target_level / observed) ** self.adapt_rate
        correction = float(np.clip(correction, 0.25, 4.0))
        if self.drift_sigma > 0:
            correction *= float(np.exp(drift_normal))

        desired_gain = self._settings.gain() * correction
        # Allocate to exposure first at base ISO.
        exposure = desired_gain / (self.min_iso / 100.0)
        exposure = float(np.clip(exposure, self.min_exposure_s, self.max_exposure_s))
        residual = desired_gain / (exposure * (self.min_iso / 100.0))
        iso = float(np.clip(self.min_iso * residual, self.min_iso, self.max_iso))
        self._settings = ExposureSettings(exposure, iso)
        return self._settings
