"""Per-device color response — the receiver-diversity substrate (paper §6.1).

Real phone cameras differ in color-filter spectral curves, their arrangement
and the ISP's demosaic/correction chain, so the same emitted chromaticity is
reported as different RGB by different devices (Fig 6a).  We model the net
effect as a device-specific 3x3 matrix acting on the scene's linear sRGB
representation plus white-balance gains: a compact stand-in for
filter-spectrum x correction-matrix products that preserves the property the
paper's calibration mechanism targets — a *consistent, device-dependent*
chroma displacement that the receiver cannot predict a priori.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.color.srgb import xyz_to_linear_rgb
from repro.exceptions import CameraError


@dataclass(frozen=True)
class ColorResponse:
    """A device's scene-XYZ -> camera linear-RGB behaviour.

    ``matrix`` mixes channels (crosstalk left uncorrected by the ISP);
    ``white_balance`` applies per-channel gains.  ``fidelity`` in [0, 1]
    blends the device matrix toward the identity: 1 is a colorimetrically
    perfect camera.  The iPhone 5S preset uses higher fidelity than the
    Nexus 5 preset, reproducing the paper's observation that the iPhone
    "better captures the true color".
    """

    name: str
    matrix: np.ndarray
    white_balance: np.ndarray = field(
        default_factory=lambda: np.ones(3)
    )
    fidelity: float = 1.0

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise CameraError(f"color matrix must be 3x3, got {matrix.shape}")
        wb = np.asarray(self.white_balance, dtype=float)
        if wb.shape != (3,):
            raise CameraError(f"white balance must have 3 gains, got {wb.shape}")
        if not 0.0 <= self.fidelity <= 1.0:
            raise CameraError(f"fidelity must be in [0, 1], got {self.fidelity}")
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "white_balance", wb)

    @property
    def effective_matrix(self) -> np.ndarray:
        """The fidelity-blended channel-mixing matrix including white balance."""
        blended = (
            self.fidelity * np.eye(3) + (1.0 - self.fidelity) * self.matrix
        )
        return np.diag(self.white_balance) @ blended

    def scene_xyz_to_camera_linear(self, xyz: np.ndarray) -> np.ndarray:
        """Scene XYZ -> the device's linear RGB (pre-noise, pre-gamma).

        Accepts ``(..., 3)`` arrays.  Values may exceed [0, 1]; exposure
        scaling and saturation are applied later by the sensor model.
        """
        xyz = np.asarray(xyz, dtype=float)
        ideal = xyz_to_linear_rgb(xyz)
        return ideal @ self.effective_matrix.T

    def apply_to_linear(self, linear_rgb: np.ndarray) -> np.ndarray:
        """Apply the device response to already-linear scene RGB."""
        linear_rgb = np.asarray(linear_rgb, dtype=float)
        return linear_rgb @ self.effective_matrix.T


def ideal_response(name: str = "ideal") -> ColorResponse:
    """A colorimetrically perfect camera (identity response)."""
    return ColorResponse(name=name, matrix=np.eye(3), fidelity=1.0)


def perturbed_response(
    name: str,
    crosstalk: float,
    hue_skew: float = 0.0,
    white_balance_error: float = 0.0,
    fidelity: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> ColorResponse:
    """Construct a plausible device response from interpretable knobs.

    ``crosstalk`` leaks each channel into its neighbours (filter overlap);
    ``hue_skew`` rotates red/blue response asymmetrically (filter passband
    shift); ``white_balance_error`` detunes per-channel gains.  With an
    ``rng`` the perturbations are randomized around the given magnitudes —
    useful for generating populations of synthetic devices; without one the
    construction is deterministic.
    """
    if not 0 <= crosstalk < 0.5:
        raise CameraError(f"crosstalk must be in [0, 0.5), got {crosstalk}")
    if rng is None:
        signs = np.array([1.0, -1.0, 1.0])
        jitter = np.ones(3)
    else:
        signs = rng.choice([-1.0, 1.0], size=3)
        jitter = 1.0 + 0.3 * (rng.random(3) - 0.5)

    c = crosstalk
    matrix = np.array(
        [
            [1.0 - 2 * c, c * (1 + hue_skew), c * (1 - hue_skew)],
            [c, 1.0 - 2 * c, c],
            [c * (1 - hue_skew), c * (1 + hue_skew), 1.0 - 2 * c],
        ]
    )
    wb = 1.0 + white_balance_error * signs * jitter
    return ColorResponse(
        name=name, matrix=matrix, white_balance=wb, fidelity=fidelity
    )
