"""Captured-frame container with the timing metadata the receiver relies on.

A rolling-shutter frame is more than pixels: each scanline was exposed in a
known time window, and the gap before the next frame is where symbols are
lost (paper §5).  :class:`CapturedFrame` carries both, so the receiver can
translate band row-spans into on-air time and compute how many symbols each
inter-frame gap swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.camera.auto_exposure import ExposureSettings
from repro.exceptions import CameraError


@dataclass(frozen=True)
class CapturedFrame:
    """One frame: 8-bit sRGB pixels plus rolling-shutter timing metadata."""

    index: int
    pixels: np.ndarray
    start_time: float
    row_period: float
    exposure: ExposureSettings

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise CameraError(
                f"pixels must be (rows, cols, 3), got {pixels.shape}"
            )
        if pixels.dtype != np.uint8:
            raise CameraError(f"pixels must be uint8, got {pixels.dtype}")
        if self.row_period <= 0:
            raise CameraError(f"row_period must be positive, got {self.row_period}")
        object.__setattr__(self, "pixels", pixels)

    @property
    def rows(self) -> int:
        return self.pixels.shape[0]

    @property
    def cols(self) -> int:
        return self.pixels.shape[1]

    @property
    def readout_duration(self) -> float:
        """Time from the first row's exposure start to the last row's."""
        return self.rows * self.row_period

    def row_exposure_window(self, row: int) -> tuple:
        """The ``(start, stop)`` exposure interval of one scanline."""
        if not 0 <= row < self.rows:
            raise CameraError(f"row {row} outside frame of {self.rows} rows")
        start = self.start_time + row * self.row_period
        return (start, start + self.exposure.exposure_s)

    def row_mid_times(self) -> np.ndarray:
        """Exposure-window midpoints of every scanline — the band clock."""
        starts = self.start_time + np.arange(self.rows) * self.row_period
        return starts + self.exposure.exposure_s / 2.0

    def time_to_row(self, time: float) -> int:
        """The scanline whose exposure midpoint is closest to ``time``."""
        mids = self.row_mid_times()
        return int(np.argmin(np.abs(mids - time)))
