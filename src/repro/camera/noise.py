"""Sensor noise model: shot noise, read noise, ISO gain, quantization.

A CMOS pixel's photon count follows Poisson statistics; at the signal levels
of a bright LED the Gaussian approximation with variance proportional to the
signal is accurate and fast.  ISO amplifies signal and noise together, which
is why Fig 6(c) shows the perceived color wandering at high ISO.  Output
quantization to 8 bits happens after gamma encoding in the sensor pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CameraError


@dataclass(frozen=True)
class SensorNoise:
    """Noise parameters of a camera sensor.

    ``full_well_electrons`` sets the shot-noise scale: a linear signal of 1.0
    corresponds to a full well, whose SNR is ``sqrt(full_well)``.
    ``read_noise_electrons`` is the signal-independent floor.  ``prnu``
    (photo-response non-uniformity) is a fixed-pattern per-pixel gain spread,
    expressed as a fraction.
    """

    full_well_electrons: float = 5000.0
    read_noise_electrons: float = 6.0
    prnu: float = 0.01
    reference_iso: float = 100.0
    row_noise: float = 0.03

    def __post_init__(self) -> None:
        if self.full_well_electrons <= 0:
            raise CameraError("full_well_electrons must be positive")
        if self.read_noise_electrons < 0:
            raise CameraError("read_noise_electrons must be >= 0")
        if not 0 <= self.prnu < 0.2:
            raise CameraError(f"prnu must be in [0, 0.2), got {self.prnu}")
        if self.reference_iso <= 0:
            raise CameraError("reference_iso must be positive")
        if not 0 <= self.row_noise < 0.5:
            raise CameraError(f"row_noise must be in [0, 0.5), got {self.row_noise}")

    def apply_row_noise(
        self, linear_signal: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Row-correlated multiplicative chroma noise.

        Phone video pipelines add scanline-scale chroma disturbances —
        4:2:0 chroma subsampling, block-quantization of the codec, ISP
        denoising — that are *correlated along a scanline*, so the
        receiver's column averaging cannot remove them.  This is the noise
        floor that makes narrow bands (few scanlines per symbol) harder to
        demodulate than wide ones, i.e. the SER-vs-frequency trend of
        Fig 9.  Modelled as an independent per-(row, channel) gain error.
        """
        if self.row_noise == 0:
            return linear_signal
        signal = np.asarray(linear_signal, dtype=float)
        if signal.ndim != 3:
            raise CameraError(
                f"expected (rows, cols, 3) image, got shape {signal.shape}"
            )
        gains = 1.0 + rng.normal(
            0.0, self.row_noise, (signal.shape[0], 1, signal.shape[2])
        )
        return np.clip(signal * gains, 0.0, 1.0)

    def apply(
        self,
        linear_signal: np.ndarray,
        iso: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Add shot + read noise to a linear image at the given ISO.

        ``linear_signal`` is the pre-saturation linear image in full-well
        units (1.0 = saturation at the reference ISO).  Higher ISO means the
        same output level was produced by fewer photons, so relative noise
        grows with the ISO gain.  The result is clipped to [0, 1]
        (saturation).
        """
        if iso <= 0:
            raise CameraError(f"iso must be positive, got {iso}")
        signal = np.clip(np.asarray(linear_signal, dtype=float), 0.0, None)
        iso_gain = iso / self.reference_iso

        # Photons collected: signal/iso_gain of a full well.
        electrons = signal * self.full_well_electrons / iso_gain
        shot_std = np.sqrt(np.maximum(electrons, 0.0))
        total_std = np.sqrt(shot_std**2 + self.read_noise_electrons**2)
        noisy_electrons = electrons + rng.normal(0.0, 1.0, signal.shape) * total_std

        if self.prnu > 0:
            noisy_electrons = noisy_electrons * (
                1.0 + rng.normal(0.0, self.prnu, signal.shape)
            )

        out = noisy_electrons * iso_gain / self.full_well_electrons
        return np.clip(out, 0.0, 1.0)

    def chroma_noise_floor(self, iso: float, pixels_averaged: int) -> float:
        """Rough post-averaging relative noise at mid-signal (for analysis)."""
        if pixels_averaged <= 0:
            raise CameraError("pixels_averaged must be positive")
        iso_gain = iso / self.reference_iso
        electrons = 0.5 * self.full_well_electrons / iso_gain
        per_pixel = np.sqrt(electrons + self.read_noise_electrons**2) / electrons
        return float(per_pixel / np.sqrt(pixels_averaged))


def quantize_8bit(srgb: np.ndarray) -> np.ndarray:
    """Quantize gamma-encoded values in [0, 1] to uint8 levels."""
    srgb = np.clip(np.asarray(srgb, dtype=float), 0.0, 1.0)
    return np.round(srgb * 255.0).astype(np.uint8)


def dequantize_8bit(pixels: np.ndarray) -> np.ndarray:
    """uint8 image back to floats in [0, 1] (receiver side)."""
    return np.asarray(pixels, dtype=float) / 255.0
