"""Device presets: the two phones of the paper's evaluation plus a generic.

Each profile bundles the rolling-shutter timing (resolution, frame rate,
inter-frame gap calibrated to Table 1), a color response (receiver
diversity, Fig 6a), and noise character.  The presets encode the paper's two
observed asymmetries:

* **Nexus 5** — lower inter-frame loss ratio (0.2312) so it receives more
  symbols per second (higher throughput, Fig 10), but a less faithful color
  response and noisier chroma, so its SER is higher (Fig 9).
* **iPhone 5S** — higher loss ratio (0.3727) but "better captures the true
  color": a higher-fidelity response and cleaner sensor, so lower SER.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.camera.auto_exposure import AutoExposure
from repro.camera.color_filter import ColorResponse, perturbed_response
from repro.camera.noise import SensorNoise
from repro.camera.optics import Optics
from repro.camera.sensor import RollingShutterCamera, SensorTiming
from repro.util.rng import RngLike, make_rng

#: Table 1 inter-frame loss ratios.
NEXUS5_LOSS_RATIO = 0.2312
IPHONE5S_LOSS_RATIO = 0.3727


@dataclass(frozen=True)
class DeviceProfile:
    """Everything needed to instantiate a simulated phone camera."""

    name: str
    timing: SensorTiming
    response: ColorResponse
    noise: SensorNoise
    optics: Optics = field(default_factory=Optics)

    def make_camera(
        self,
        simulated_columns: int = 64,
        seed=None,
        auto_exposure: Optional[AutoExposure] = None,
        enable_bayer: bool = True,
        capture_path: Optional[str] = None,
    ) -> RollingShutterCamera:
        """Instantiate the camera simulator for this device.

        ``capture_path`` selects the recording engine (``"batched"`` or the
        per-frame ``"reference"`` oracle); ``None`` uses the module default.
        """
        return RollingShutterCamera(
            timing=self.timing,
            response=self.response,
            noise=self.noise,
            optics=self.optics,
            auto_exposure=auto_exposure,
            simulated_columns=simulated_columns,
            enable_bayer=enable_bayer,
            seed=seed,
            capture_path=capture_path,
        )


def nexus_5() -> DeviceProfile:
    """The Nexus 5 rear camera of the paper's Android receiver.

    2448x3264 at 30 fps (§8); gap fraction from Table 1.  The color response
    has visible crosstalk and a slight warm white-balance error, and the
    sensor is the noisier of the two — together yielding the higher SER the
    paper reports for this device.
    """
    return DeviceProfile(
        name="Nexus 5",
        timing=SensorTiming(
            rows=3264, cols=2448, frame_rate=30.0, gap_fraction=NEXUS5_LOSS_RATIO
        ),
        response=perturbed_response(
            name="Nexus 5 (IMX179-class)",
            crosstalk=0.16,
            hue_skew=0.35,
            white_balance_error=0.05,
            fidelity=0.25,
        ),
        noise=SensorNoise(
            full_well_electrons=3800.0,
            read_noise_electrons=8.0,
            prnu=0.012,
            row_noise=0.30,
        ),
    )


def iphone_5s() -> DeviceProfile:
    """The iPhone 5S rear camera of the paper's iOS receiver.

    1080x1920 video at 30 fps (§8); gap fraction from Table 1.  Higher color
    fidelity and a cleaner sensor than the Nexus preset (lower SER), but the
    larger inter-frame gap costs it throughput, exactly the trade the paper
    observes.
    """
    return DeviceProfile(
        name="iPhone 5S",
        timing=SensorTiming(
            rows=1920, cols=1080, frame_rate=30.0, gap_fraction=IPHONE5S_LOSS_RATIO
        ),
        response=perturbed_response(
            name="iPhone 5S (larger-pixel BSI)",
            crosstalk=0.07,
            hue_skew=-0.2,
            white_balance_error=0.02,
            fidelity=0.55,
        ),
        noise=SensorNoise(
            full_well_electrons=6500.0,
            read_noise_electrons=5.0,
            prnu=0.008,
            row_noise=0.16,
        ),
    )


def generic_device(
    loss_ratio: float = 0.25,
    rows: int = 1920,
    cols: int = 1080,
    frame_rate: float = 30.0,
    crosstalk: float = 0.1,
    seed: RngLike = None,
) -> DeviceProfile:
    """A parameterized synthetic phone for sweeps and population studies.

    ``seed`` may be an int or an existing ``Generator`` (e.g. one derived via
    :func:`repro.util.rng.derive_rng`), so preset jitter participates in the
    single-seed derivation tree; ``None`` keeps the preset deterministic.
    """
    rng = make_rng(seed) if seed is not None else None
    return DeviceProfile(
        name=f"generic(l={loss_ratio})",
        timing=SensorTiming(
            rows=rows, cols=cols, frame_rate=frame_rate, gap_fraction=loss_ratio
        ),
        response=perturbed_response(
            name="generic CFA",
            crosstalk=crosstalk,
            hue_skew=0.1,
            white_balance_error=0.03,
            fidelity=0.4,
            rng=rng,
        ),
        noise=SensorNoise(),
    )
