#!/usr/bin/env python3
"""Indoor navigation: ceiling lights broadcast smart-sign beacons.

The paper's second motivating application (§1): office luminaires broadcast
location beacons that a phone resolves against its floor map.  Each light
sends a compact CRC-protected beacon — just a 32-bit location id, the way
deployed smart-sign systems work — and the phone looks the id up locally.
Reliability matters more than rate here, so the link uses 4-CSK: the
paper's recommendation for "applications where reliable LED-to-camera
communication is desirable" (SER below 1e-3).

Usage::

    python examples/indoor_navigation.py
"""

import zlib

from repro import LinkSimulator, SystemConfig, iphone_5s
from repro.link.workloads import beacon_payload


#: The phone's local floor map: beacon id -> navigation hint.
FLOOR_MAP = {
    0x0201: "Turn left for rooms B201-B209",
    0x0202: "Straight ahead: stairwell and elevators",
    0x0203: "Conference room B204: second door right",
}


def parse_beacon(data: bytes):
    """Validate CRC and extract the location id."""
    body, checksum = data[:-4], data[-4:]
    if zlib.crc32(body).to_bytes(4, "big") != checksum:
        return None
    return int.from_bytes(body[:4], "big")


def main() -> None:
    device = iphone_5s()
    config = SystemConfig(
        csk_order=4,  # reliability over rate, per the paper's conclusion
        symbol_rate=3000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    k = config.rs_params().k
    print(f"link: {config.describe()}  (payload {k} bytes/packet)\n")

    for identifier in FLOOR_MAP:
        beacon = beacon_payload(identifier)  # 4-byte id + CRC32 = 8 bytes
        payload = beacon + bytes((-len(beacon)) % k)

        simulator = LinkSimulator(config, device, seed=identifier)
        result = simulator.run(payload=payload, duration_s=3.0)

        recovered = result.recovered_broadcast()
        if recovered is None:
            print(f"light 0x{identifier:04x}: beacon incomplete, keep pointing")
            continue
        got_id = parse_beacon(recovered[: len(beacon)])
        if got_id is None:
            print(f"light 0x{identifier:04x}: CRC failed, keep pointing")
            continue
        hint = FLOOR_MAP.get(got_id, "unknown location")
        ser = result.metrics.data_symbol_error_rate
        print(f"light 0x{got_id:04x}: {hint!r}")
        print(
            f"  SER={ser:.4f}  goodput={result.metrics.goodput_bps:.0f} bps"
            "  (CRC verified)"
        )


if __name__ == "__main__":
    main()
