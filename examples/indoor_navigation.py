#!/usr/bin/env python3
"""Indoor navigation: ceiling lights broadcast smart-sign beacons.

The paper's second motivating application (§1): office luminaires broadcast
location beacons that a phone resolves against its floor map.  Each light
sends a compact CRC-protected beacon — just a 32-bit location id, the way
deployed smart-sign systems work — and the phone looks the id up locally.
Reliability matters more than rate here, so the link uses 4-CSK: the
paper's recommendation for "applications where reliable LED-to-camera
communication is desirable" (SER below 1e-3).

This version is a *live client* of the session API: the phone pans across
the ceiling, so frames from all three lights arrive interleaved, and each
light is one session in a :class:`repro.SessionManager` — admitted, fed
frame by frame, and closed when the phone moves on.  The original offline
decode (``LinkSimulator.run``) still runs as the golden check: the live
sessions must recover byte-identical payloads.

Usage::

    python examples/indoor_navigation.py
"""

import zlib

from repro import LinkSimulator, SessionManager, SystemConfig, iphone_5s
from repro import make_streaming_receiver
from repro.link.workloads import beacon_payload


#: The phone's local floor map: beacon id -> navigation hint.
FLOOR_MAP = {
    0x0201: "Turn left for rooms B201-B209",
    0x0202: "Straight ahead: stairwell and elevators",
    0x0203: "Conference room B204: second door right",
}


def parse_beacon(data: bytes):
    """Validate CRC and extract the location id."""
    body, checksum = data[:-4], data[-4:]
    if zlib.crc32(body).to_bytes(4, "big") != checksum:
        return None
    return int.from_bytes(body[:4], "big")


def recover_broadcast(plan, payloads, k):
    """Reassemble the cyclic broadcast from a session's decoded payloads.

    Mirrors :meth:`repro.LinkResult.recovered_broadcast` for live sessions:
    each payload is the k-byte prefix of its systematic codeword, which
    identifies its block in the cycle.
    """
    index_of_prefix = {
        bytes(codeword[:k]): i for i, codeword in enumerate(plan.codewords)
    }
    recovered = {}
    for payload in payloads:
        index = index_of_prefix.get(bytes(payload))
        if index is not None:
            recovered.setdefault(index, payload)
    if len(recovered) < len(plan.codewords):
        return None
    joined = b"".join(recovered[i] for i in range(len(plan.codewords)))
    return joined[: len(plan.payload)]


def main() -> None:
    device = iphone_5s()
    config = SystemConfig(
        csk_order=4,  # reliability over rate, per the paper's conclusion
        symbol_rate=3000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    k = config.rs_params().k
    print(f"link: {config.describe()}  (payload {k} bytes/packet)\n")

    # Record each light's broadcast (and keep the batch decode as golden).
    recordings = {}
    goldens = {}
    for identifier in FLOOR_MAP:
        beacon = beacon_payload(identifier)  # 4-byte id + CRC32 = 8 bytes
        payload = beacon + bytes((-len(beacon)) % k)
        simulator = LinkSimulator(config, device, seed=identifier)
        plan, frames, _ = simulator.record_session(
            payload=payload, duration_s=3.0
        )
        recordings[identifier] = (beacon, plan, frames)
        goldens[identifier] = LinkSimulator(
            config, device, seed=identifier
        ).run(payload=payload, duration_s=3.0)

    # The live client: one session per light, frames interleaved as the
    # phone pans across the ceiling.
    manager = SessionManager(
        lambda session_id: make_streaming_receiver(config, device.timing)
    )
    for identifier in FLOOR_MAP:
        manager.open_session(f"light-{identifier:04x}")
    longest = max(len(frames) for _, _, frames in recordings.values())
    for position in range(longest):
        for identifier, (_, _, frames) in recordings.items():
            if position < len(frames):
                manager.submit_frame(f"light-{identifier:04x}", frames[position])
        manager.pump()

    for identifier, (beacon, plan, _) in recordings.items():
        session = manager.close_session(f"light-{identifier:04x}")
        payloads = session.payloads()
        golden = goldens[identifier]
        assert payloads == golden.report.payloads, (
            "live session diverged from the offline golden decode"
        )
        recovered = recover_broadcast(plan, payloads, k)
        if recovered is None:
            print(f"light 0x{identifier:04x}: beacon incomplete, keep pointing")
            continue
        got_id = parse_beacon(recovered[: len(beacon)])
        if got_id is None:
            print(f"light 0x{identifier:04x}: CRC failed, keep pointing")
            continue
        hint = FLOOR_MAP.get(got_id, "unknown location")
        ser = golden.metrics.data_symbol_error_rate
        print(f"light 0x{got_id:04x}: {hint!r}")
        print(
            f"  SER={ser:.4f}  goodput={golden.metrics.goodput_bps:.0f} bps"
            "  (CRC verified, live session == batch golden)"
        )


if __name__ == "__main__":
    main()
