#!/usr/bin/env python3
"""Fleet deployment: one luminaire, many different phones.

§8's closing observation, as a deployment tool: a single ColorBars
transmitter serving a mixed population of phones must provision its
Reed-Solomon parity for the worst inter-frame loss ratio in the fleet —
the better phones then pay that parity overhead.  This example runs one
shared broadcast against the two paper phones plus a synthetic mid-range
device and prints each receiver's outcome and what a dedicated link would
have given it instead.

Usage::

    python examples/fleet_deployment.py
"""

from repro import generic_device, iphone_5s, nexus_5
from repro.link.multi import broadcast_to_fleet


def main() -> None:
    fleet = [
        nexus_5(),
        iphone_5s(),
        generic_device(loss_ratio=0.30, crosstalk=0.12, seed=9),
    ]
    print("fleet:", ", ".join(device.name for device in fleet), "\n")

    report = broadcast_to_fleet(
        fleet,
        csk_order=16,
        symbol_rate=3000,
        duration_s=2.5,
        compare_dedicated=True,
        seed=31,
    )

    for line in report.summary_lines():
        print(line)

    print("\nprovisioning cost (goodput given up to serve the fleet):")
    for member in report.members:
        cost = member.provisioning_cost_bps
        print(f"  {member.device_name}: {cost:+.0f} bps")

    worst = max(
        report.members, key=lambda m: m.shared_metrics.inter_frame_loss_ratio
    )
    print(
        f"\nthe fleet goodput is bounded by {worst.device_name} "
        f"(loss ratio {worst.shared_metrics.inter_frame_loss_ratio:.3f}) — "
        "the paper's deployment observation."
    )


if __name__ == "__main__":
    main()
