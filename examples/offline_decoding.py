#!/usr/bin/env python3
"""Offline decoding: record on one device, persist, decode later.

The paper's iPhone 5S path captures video and runs the decoding procedure
offline (§8).  This example reproduces that workflow with the simulator:
record a broadcast, save the clip to a single ``.npz`` file, reload it, and
decode — then repeat after pushing the clip through a video-pipeline
degradation (4:2:0 chroma subsampling + block quantization) to see what the
encoder costs the link.

Usage::

    python examples/offline_decoding.py
"""

import tempfile
from pathlib import Path

from repro import SystemConfig, iphone_5s
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.channel import ChannelConditions
from repro.camera.devices import DeviceProfile
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE
from repro.video import (
    Recording,
    load_recording,
    save_recording,
    simulate_video_pipeline,
)


def main() -> None:
    device = iphone_5s()
    # A dense configuration (32-CSK, narrow bands) where encoder chroma
    # degradation measurably matters; at low orders and wide bands the
    # constellation margins absorb it.
    config = SystemConfig(
        csk_order=32, symbol_rate=3000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(2 * config.rs_params().k, seed=3))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)

    profile = DeviceProfile(
        name=device.name, timing=device.timing, response=device.response,
        noise=device.noise, optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=3)
    frames = camera.record(waveform, duration=2.5)
    clip = Recording(
        frames=frames, device_name=device.name, symbol_rate=config.symbol_rate
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = save_recording(clip, Path(tmp) / "session")
        size_kib = path.stat().st_size / 1024
        print(f"recorded {clip.frame_count} frames "
              f"({clip.duration_s:.1f} s) -> {path.name}, {size_kib:.0f} KiB")

        loaded = load_recording(path)

        def decode(frame_list, label):
            receiver = make_receiver(config, device.timing)
            report = receiver.process_frames(frame_list)
            matches = align_ground_truth(report.bands, plan.symbols, waveform)
            ser = data_symbol_error_rate(matches)
            print(
                f"{label:22s}: SER={ser:.4f} "
                f"packets {report.packets_decoded}/{report.packets_seen}"
            )
            return ser

        decode(loaded.frames, "offline (clean clip)")

        degraded = loaded.map_pixels(
            lambda px: simulate_video_pipeline(px, chroma_step=24.0)
        )
        decode(degraded.frames, "offline (compressed)")

        print("\nthe encoder's chroma subsampling and quantization eat into")
        print("the per-scanline chroma ColorBars modulates — one reason an")
        print("offline video path can trail a real-time camera path.")


if __name__ == "__main__":
    main()
