#!/usr/bin/env python3
"""Receiver-diversity study: how different cameras see the same symbols.

Reproduces the paper's §6 observations interactively: transmit the 8-CSK
constellation, capture it with a population of simulated devices (the two
paper phones plus synthetic ones), and print where each symbol lands in the
CIELab ab-plane per device — plus what happens to the symbol error rate when
calibration is turned off.

Usage::

    python examples/camera_diversity_study.py
"""

import numpy as np

from repro import SystemConfig, nexus_5, iphone_5s
from repro.camera.devices import DeviceProfile, generic_device
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.csk.demodulator import nominal_calibration
from repro.link.channel import ChannelConditions
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE


def capture_references(device: DeviceProfile, seed: int = 0):
    """Learned calibration references and the uncalibrated SER on a device."""
    config = SystemConfig(
        csk_order=8, symbol_rate=2000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(2 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    profile = DeviceProfile(
        name=device.name, timing=device.timing, response=device.response,
        noise=device.noise, optics=ChannelConditions.paper_setup().make_optics(),
    )
    camera = profile.make_camera(simulated_columns=32, seed=seed)
    frames = camera.record(waveform, duration=2.0)
    receiver = make_receiver(config, device.timing)
    report = receiver.process_frames(frames)
    matches = align_ground_truth(report.bands, plan.symbols, waveform)

    calibrated_ser = data_symbol_error_rate(matches)
    nominal = nominal_calibration(config.constellation, transmitter.modulator)
    wrong = total = 0
    for match in matches:
        if not match.truth.is_data:
            continue
        index, _ = nominal.match(match.band.chroma)
        total += 1
        wrong += int(index) != match.truth.index
    uncalibrated_ser = wrong / max(total, 1)
    refs = receiver.calibration.references if receiver.calibration.is_calibrated else None
    return refs, calibrated_ser, uncalibrated_ser


def main() -> None:
    devices = [
        nexus_5(),
        iphone_5s(),
        generic_device(loss_ratio=0.28, crosstalk=0.2, seed=5),
    ]
    all_refs = {}
    print("Per-device symbol chroma (8-CSK) and calibration value:\n")
    for device in devices:
        refs, cal_ser, uncal_ser = capture_references(device)
        all_refs[device.name] = refs
        print(f"{device.name}:")
        if refs is None:
            print("  (calibration did not complete)")
            continue
        for index, (a, b) in enumerate(refs):
            print(f"  symbol {index}: a={a:7.1f} b={b:7.1f}")
        print(f"  SER calibrated   = {cal_ser:.4f}")
        print(f"  SER uncalibrated = {uncal_ser:.4f}\n")

    names = [n for n, r in all_refs.items() if r is not None]
    if len(names) >= 2:
        first, second = all_refs[names[0]], all_refs[names[1]]
        displacement = np.sqrt(((first - second) ** 2).sum(axis=1))
        print(
            f"mean displacement of the same symbol between {names[0]} and "
            f"{names[1]}: {displacement.mean():.1f} dE "
            "(several JNDs: why §6 calibration exists)"
        )


if __name__ == "__main__":
    main()
