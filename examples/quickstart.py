#!/usr/bin/env python3
"""Quickstart: broadcast a message from a tri-LED to a simulated phone.

Runs the complete ColorBars chain — Reed-Solomon encoding, packetization,
CSK modulation, the rolling-shutter camera, and the full receiver — and
prints what arrived.  Everything is deterministic given the seed.

Usage::

    python examples/quickstart.py
"""

from repro import LinkSimulator, SystemConfig, nexus_5


def main() -> None:
    # The link contract both ends share: 8-CSK at 2000 symbols/second,
    # provisioned for the Nexus 5's inter-frame loss ratio.
    device = nexus_5()
    config = SystemConfig(
        csk_order=8,
        symbol_rate=2000,
        design_loss_ratio=device.timing.gap_fraction,
    )
    print(f"link config : {config.describe()}")
    print(f"receiver    : {device.name} "
          f"({device.timing.cols}x{device.timing.rows} @ "
          f"{device.timing.frame_rate:.0f} fps)")

    message = b"Hello from the light bulb! ColorBars over a rolling shutter."
    # Pad to whole Reed-Solomon blocks so the broadcast is self-contained.
    k = config.rs_params().k
    payload = message + bytes((-len(message)) % k)

    simulator = LinkSimulator(config, device, seed=42)
    result = simulator.run(payload=payload, duration_s=3.0)

    print(f"\nrecording   : {result.metrics.duration_s:.1f} s of video")
    print(f"metrics     : {result.metrics.summary()}")

    recovered = result.recovered_broadcast()
    if recovered is None:
        print("broadcast   : incomplete (record longer for every block)")
    else:
        text = recovered[: len(message)].decode("utf-8", errors="replace")
        print(f"broadcast   : {text!r}")
        assert recovered[: len(message)] == message
        print("payload verified byte-for-byte.")


if __name__ == "__main__":
    main()
