#!/usr/bin/env python3
"""Retail scenario: a shelf luminaire broadcasts product info to shoppers.

The paper's motivating application (§1): an LED above a merchandise rack
streams promotions that a shopper receives by pointing a phone camera at the
light.  This example broadcasts a small "offer card" continuously to two
different shoppers' phones — a Nexus 5 and an iPhone 5S — each with its own
camera characteristics and inter-frame loss.

This version is a *live client* of the session API: both shoppers stand at
the shelf at once, so one :class:`repro.SessionManager` carries a session
per phone, fed frame by frame as each camera captures.  The original
offline decode (``LinkSimulator.run``) still runs as the golden check: the
live sessions must recover byte-identical payloads.

Usage::

    python examples/retail_advertisement.py
"""

import json
import zlib

from repro import LinkSimulator, SessionManager, SystemConfig, iphone_5s, nexus_5
from repro import make_streaming_receiver


def build_offer_card() -> bytes:
    """A compact JSON offer, compressed for air time."""
    offer = {
        "sku": "LED-A19-9W",
        "title": "Smart bulb 3-pack",
        "price": "11.99",
        "promo": "buy 2 packs, 20% off",
        "aisle": 7,
    }
    return zlib.compress(json.dumps(offer, separators=(",", ":")).encode())


def main() -> None:
    card = build_offer_card()
    print(f"offer card: {len(card)} bytes compressed")

    # A store deployment provisions FEC for its worst supported phone
    # (paper §8: goodput is bounded by the slowest receiver); here we
    # provision per device to show the difference.
    shoppers = {}
    for device in (nexus_5(), iphone_5s()):
        config = SystemConfig(
            csk_order=16,
            symbol_rate=3000,
            design_loss_ratio=device.timing.gap_fraction,
        )
        k = config.rs_params().k
        payload = card + bytes((-len(card)) % k)
        simulator = LinkSimulator(config, device, seed=7)
        _, frames, _ = simulator.record_session(payload=payload, duration_s=3.0)
        golden = LinkSimulator(config, device, seed=7).run(
            payload=payload, duration_s=3.0
        )
        shoppers[device.name] = (device, config, frames, golden)

    # One manager, one session per phone; each session gets the receiver
    # matched to its phone's camera.
    manager = SessionManager(
        lambda session_id: make_streaming_receiver(
            shoppers[session_id][1], shoppers[session_id][0].timing
        )
    )
    for name in shoppers:
        manager.open_session(name)
    longest = max(len(frames) for _, _, frames, _ in shoppers.values())
    for position in range(longest):
        for name, (_, _, frames, _) in shoppers.items():
            if position < len(frames):
                manager.submit_frame(name, frames[position])
        manager.pump()

    for name, (device, _, _, golden) in shoppers.items():
        session = manager.close_session(name)
        assert session.payloads() == golden.report.payloads, (
            "live session diverged from the offline golden decode"
        )
        recovered = golden.recovered_broadcast()
        status = "incomplete"
        if recovered is not None:
            offer = json.loads(zlib.decompress(recovered[: len(card)]))
            status = f"OK: {offer['title']} @ {offer['price']} ({offer['promo']})"
        print(f"\n{device.name}:")
        print(f"  {golden.metrics.summary()}")
        print(f"  packets: {len(session.payloads())} decoded live"
              " (== batch golden)")
        print(f"  offer: {status}")


if __name__ == "__main__":
    main()
