#!/usr/bin/env python3
"""Retail scenario: a shelf luminaire broadcasts product info to shoppers.

The paper's motivating application (§1): an LED above a merchandise rack
streams promotions that a shopper receives by pointing a phone camera at the
light.  This example broadcasts a small "offer card" continuously and shows
two different shoppers' phones — a Nexus 5 and an iPhone 5S — receiving it,
each with its own camera characteristics and inter-frame loss.

Usage::

    python examples/retail_advertisement.py
"""

import json
import zlib

from repro import LinkSimulator, SystemConfig, iphone_5s, nexus_5


def build_offer_card() -> bytes:
    """A compact JSON offer, compressed for air time."""
    offer = {
        "sku": "LED-A19-9W",
        "title": "Smart bulb 3-pack",
        "price": "11.99",
        "promo": "buy 2 packs, 20% off",
        "aisle": 7,
    }
    return zlib.compress(json.dumps(offer, separators=(",", ":")).encode())


def main() -> None:
    card = build_offer_card()
    print(f"offer card: {len(card)} bytes compressed")

    for device in (nexus_5(), iphone_5s()):
        # A store deployment provisions FEC for its worst supported phone
        # (paper §8: goodput is bounded by the slowest receiver); here we
        # provision per device to show the difference.
        config = SystemConfig(
            csk_order=16,
            symbol_rate=3000,
            design_loss_ratio=device.timing.gap_fraction,
        )
        k = config.rs_params().k
        payload = card + bytes((-len(card)) % k)

        simulator = LinkSimulator(config, device, seed=7)
        result = simulator.run(payload=payload, duration_s=3.0)

        recovered = result.recovered_broadcast()
        status = "incomplete"
        if recovered is not None:
            offer = json.loads(zlib.decompress(recovered[: len(card)]))
            status = f"OK: {offer['title']} @ {offer['price']} ({offer['promo']})"
        print(f"\n{device.name}:")
        print(f"  {result.metrics.summary()}")
        print(f"  time to card: needs every RS block at least once")
        print(f"  offer: {status}")


if __name__ == "__main__":
    main()
