#!/usr/bin/env python3
"""Flicker tuning: how many white symbols does a deployment need?

Walks the §4 design space: for each symbol rate, derive the minimum white
fraction from the Bloch's-law model (the Fig 3b curve), verify it against a
direct waveform simulation of the perceived chromaticity, and report the
data airtime that remains — the rate/illumination trade a deployment makes.

Usage::

    python examples/flicker_tuning.py
"""

import numpy as np

from repro.csk.constellation import design_constellation
from repro.csk.modulator import CskModulator
from repro.flicker.bloch import (
    perceived_chromaticity_series,
    worst_case_excursion,
)
from repro.flicker.threshold import FlickerModel, XY_FLICKER_THRESHOLD
from repro.phy.led import typical_tri_led
from repro.phy.symbols import data_symbol, white_symbol
from repro.phy.waveform import EXTEND_CYCLE


def simulate_excursion(led, constellation, rate, white_fraction, seed=0):
    modulator = CskModulator(constellation, led, symbol_rate=rate)
    rng = np.random.default_rng(seed)
    symbols = [
        white_symbol()
        if rng.random() < white_fraction
        else data_symbol(int(rng.integers(0, constellation.order)))
        for _ in range(int(rate * 0.6))
    ]
    waveform = modulator.waveform(symbols, extend=EXTEND_CYCLE)
    return worst_case_excursion(waveform, led.white_point.as_array())


def main() -> None:
    led = typical_tri_led()
    constellation = design_constellation(16, led.gamut)
    model = FlickerModel.reference()

    print("Fig 3(b) operating table (16-CSK payloads, reference curve):\n")
    print("rate (Hz) | min white | data share | simulated excursion | verdict")
    for rate in (500, 1000, 2000, 3000, 4000):
        fraction = model.required_white_fraction(rate)
        excursion = simulate_excursion(led, constellation, rate, fraction)
        verdict = "flicker-free" if excursion < 2.5 * XY_FLICKER_THRESHOLD else "VISIBLE"
        print(
            f"{rate:9d} | {fraction:9.2f} | {1 - fraction:10.2f} |"
            f" {excursion:19.4f} | {verdict}"
        )

    print("\nWhat the eye sees with NO white symbols at 1 kHz:")
    modulator = CskModulator(constellation, led, symbol_rate=1000)
    rng = np.random.default_rng(1)
    symbols = [data_symbol(int(rng.integers(0, 16))) for _ in range(600)]
    waveform = modulator.waveform(symbols, extend=EXTEND_CYCLE)
    series = perceived_chromaticity_series(waveform)
    white = led.white_point.as_array()
    distances = np.hypot(series[:, 0] - white[0], series[:, 1] - white[1])
    print(
        f"  perceived chromaticity wanders up to {distances.max():.4f} from "
        f"white (threshold {XY_FLICKER_THRESHOLD}) -> visible color flicker"
    )


if __name__ == "__main__":
    main()
