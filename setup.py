"""Setup shim: enables `python setup.py develop` on environments without wheel."""
from setuptools import setup

setup()
