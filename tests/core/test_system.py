"""Unit tests for the transmitter and receiver factory."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.exceptions import ConfigurationError
from repro.phy.waveform import EXTEND_CYCLE


@pytest.fixture
def config():
    return SystemConfig(csk_order=8, symbol_rate=1000, illumination_ratio=0.8)


@pytest.fixture
def transmitter(config):
    return ColorBarsTransmitter(config)


class TestPlan:
    def test_empty_payload_rejected(self, transmitter):
        with pytest.raises(ConfigurationError):
            transmitter.plan(b"")

    def test_one_packet_per_codeword(self, transmitter):
        k = transmitter.codec.k
        plan = transmitter.plan(bytes(3 * k))
        assert plan.data_packets == 3
        assert len(plan.codewords) == 3

    def test_partial_block_padded(self, transmitter):
        k = transmitter.codec.k
        plan = transmitter.plan(bytes(k + 1))
        assert plan.data_packets == 2

    def test_calibration_packets_present(self, transmitter):
        plan = transmitter.plan(bytes(transmitter.codec.k * 10))
        assert plan.calibration_packets >= 1

    def test_calibration_cadence(self, config):
        """Calibration packets recur roughly every S / rate symbols."""
        transmitter = ColorBarsTransmitter(config)
        plan = transmitter.plan(bytes(transmitter.codec.k * 30))
        spacing = config.symbol_rate / config.calibration_rate_hz
        expected = plan.num_symbols / spacing
        assert plan.calibration_packets == pytest.approx(expected, rel=0.5)

    def test_stream_symbols_consistent(self, transmitter):
        plan = transmitter.plan(bytes(transmitter.codec.k))
        calibration_len = transmitter.packetizer.calibration_packet_length()
        data_len = transmitter.packetizer.packet_length(transmitter.codec.n)
        assert plan.num_symbols == calibration_len + data_len


class TestWaveform:
    def test_waveform_from_plan(self, transmitter):
        plan = transmitter.plan(b"hello world")
        waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
        assert waveform.num_symbols == plan.num_symbols
        assert waveform.extend == EXTEND_CYCLE

    def test_waveform_from_bytes(self, transmitter):
        waveform = transmitter.waveform(b"payload bytes")
        assert waveform.num_symbols > 0

    def test_airtime_per_packet(self, transmitter, config):
        airtime = transmitter.airtime_per_packet()
        expected = (
            transmitter.packetizer.packet_length(transmitter.codec.n)
            / config.symbol_rate
        )
        assert airtime == pytest.approx(expected)

    def test_payload_bytes_per_packet(self, transmitter):
        assert transmitter.payload_bytes_per_packet() == transmitter.codec.k


class TestMakeReceiver:
    def test_receiver_matches_config(self, config, tiny_device):
        receiver = make_receiver(config, tiny_device.timing)
        assert receiver.codec.n == config.rs_params().n
        assert receiver.symbol_rate == config.symbol_rate

    def test_band_width_guard(self, config, tiny_device):
        """Configs whose bands fall under 10 rows must be rejected."""
        fast = SystemConfig(csk_order=8, symbol_rate=4000, illumination_ratio=0.8)
        with pytest.raises(Exception):
            make_receiver(fast, tiny_device.timing)
