"""docs/ARCHITECTURE.md must name every layer the code declares.

The doc's layer map is prose, but its coverage is a checked contract:
a new layer added to ``repro.tooling.layers.LAYER_DEPS`` without a row
in the architecture doc fails here (and in CI's ``docs-consistency``
job), so the map cannot drift from the import graph it describes.
"""

import re
from pathlib import Path

from repro.tooling.layers import APP_LAYER, LAYER_DEPS

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "ARCHITECTURE.md"


def _doc_layer_cells(text):
    """Backticked first-column entries of the doc's markdown tables."""
    cells = set()
    for line in text.splitlines():
        match = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if match:
            cells.add(match.group(1))
    return cells


class TestArchitectureDoc:
    def test_doc_exists(self):
        assert DOC.exists(), "docs/ARCHITECTURE.md is missing"

    def test_every_declared_layer_is_documented(self):
        cells = _doc_layer_cells(DOC.read_text())
        missing = sorted(set(LAYER_DEPS) - cells)
        assert not missing, (
            f"layers declared in repro.tooling.layers.LAYER_DEPS but "
            f"absent from docs/ARCHITECTURE.md's layer map: {missing}"
        )

    def test_app_pseudo_layer_is_documented(self):
        assert APP_LAYER in _doc_layer_cells(DOC.read_text())

    def test_doc_names_no_unknown_layers(self):
        # The reverse direction: a layer row for something the code no
        # longer declares is stale documentation.
        known = set(LAYER_DEPS) | {APP_LAYER}
        rows = _doc_layer_cells(DOC.read_text())
        layer_rows = {cell for cell in rows if re.fullmatch(r"[a-z_]+", cell)}
        # Non-layer tables (e.g. the DESIGN index) use different cell
        # shapes, so only single-word lowercase cells are layer claims.
        unknown = sorted(layer_rows - known)
        assert not unknown, f"doc claims layers the code does not declare: {unknown}"
