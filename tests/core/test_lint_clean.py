"""Repo-wide gate: the ``repro`` package must be reprolint-clean.

This is the machine-checked form of the project's code contracts (DESIGN.md
"Code contracts & static analysis"): RNG discipline, import layering,
exception hygiene, and the smaller hygiene rules — plus, in strict mode, the
whole-program contract rules (determinism, pickle-safety, obs-schema,
exception-taxonomy) modulo the committed baseline.  If this test fails, run
``colorbars lint`` (or ``colorbars lint --strict``) for the same report and
fix (or, with justification, ``# reprolint: disable=<rule>`` / baseline)
each finding.
"""

from pathlib import Path

import repro
from repro.tooling import (
    Baseline,
    default_baseline_path,
    lint_tree,
    run_analysis,
)
from repro.tooling.project import AnalysisCache

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_package_tree_is_violation_free():
    report = lint_tree(PACKAGE_ROOT)
    assert report.files_checked >= 70, "lint walked suspiciously few files"
    assert report.clean, "\n" + report.format()


def test_package_tree_is_strict_clean_modulo_baseline():
    baseline = Baseline.load(default_baseline_path())
    result = run_analysis([PACKAGE_ROOT], strict=True, baseline=baseline)
    assert result.clean, "\n" + "\n".join(f.format() for f in result.findings)
    assert not result.stale_baseline_entries, (
        "baseline entries no longer match any finding — prune them: "
        + ", ".join(
            f"{e.path}:{e.rule}" for e in result.stale_baseline_entries
        )
    )


def test_baseline_entries_are_justified():
    # Nothing gets grandfathered silently: every committed entry carries a
    # human-written reason (not the --update-baseline placeholder).
    baseline = Baseline.load(default_baseline_path())
    for entry in baseline.entries:
        assert entry.reason.strip(), f"baseline entry without reason: {entry}"
        assert not entry.reason.startswith("TODO"), (
            f"baseline entry still has placeholder reason: {entry}"
        )


def test_second_lint_run_is_cache_warm():
    # The repo gate runs the linter repeatedly (pytest + CLI in the same
    # process); the content-hash cache must make every rerun parse-free.
    cache = AnalysisCache()
    lint_tree(PACKAGE_ROOT, cache=cache)
    misses_after_cold = cache.misses
    assert misses_after_cold > 0
    report = lint_tree(PACKAGE_ROOT, cache=cache)
    assert cache.misses == misses_after_cold, "second lint run re-parsed files"
    assert cache.hits >= report.files_checked
