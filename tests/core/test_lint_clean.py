"""Repo-wide gate: the ``repro`` package must be reprolint-clean.

This is the machine-checked form of the project's code contracts (DESIGN.md
"Code contracts & static analysis"): RNG discipline, import layering,
exception hygiene, and the smaller hygiene rules.  If this test fails, run
``colorbars lint`` for the same report and fix (or, with justification,
``# reprolint: disable=<rule>``) each finding.
"""

from pathlib import Path

import repro
from repro.tooling import lint_tree

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_package_tree_is_violation_free():
    report = lint_tree(PACKAGE_ROOT)
    assert report.files_checked >= 70, "lint walked suspiciously few files"
    assert report.clean, "\n" + report.format()
