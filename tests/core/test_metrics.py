"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    GroundTruthMatch,
    align_ground_truth,
    compute_link_metrics,
    data_symbol_error_rate,
    symbol_error_rate,
)
from repro.csk.demodulator import DecisionKind, SymbolDecision
from repro.phy.symbols import data_symbol, off_symbol, white_symbol
from repro.phy.waveform import EXTEND_CYCLE, OpticalWaveform
from repro.rx.detector import ReceivedBand
from repro.rx.receiver import ReceiverReport
from repro.rx.segmentation import Band


def make_band(kind, index=None, mid_time=0.0005, frame=0):
    decision = SymbolDecision(kind, index, 0.5, True)
    return ReceivedBand(
        frame_index=frame,
        band=Band(0, 20, 5, 15, np.array([70.0, 0.0, 0.0])),
        mid_time=mid_time,
        decision=decision,
    )


@pytest.fixture
def stream_and_waveform(modulator8):
    symbols = [data_symbol(1), white_symbol(), off_symbol(), data_symbol(4)]
    waveform = modulator8.waveform(symbols, extend=EXTEND_CYCLE)
    return symbols, waveform


class TestAlignment:
    def test_bands_paired_by_time(self, stream_and_waveform):
        symbols, waveform = stream_and_waveform
        period = waveform.symbol_period
        bands = [
            make_band(DecisionKind.DATA, 1, mid_time=0 * period + period / 2),
            make_band(DecisionKind.WHITE, None, mid_time=1 * period + period / 2),
        ]
        matches = align_ground_truth(bands, symbols, waveform)
        assert len(matches) == 2
        assert matches[0].truth.index == 1
        assert matches[0].correct
        assert matches[1].correct

    def test_cyclic_wraparound(self, stream_and_waveform):
        symbols, waveform = stream_and_waveform
        period = waveform.symbol_period
        # 4 symbols -> time 4.5 periods wraps to symbol 0.
        band = make_band(DecisionKind.DATA, 1, mid_time=4.5 * period)
        matches = align_ground_truth([band], symbols, waveform)
        assert matches[0].truth.index == 1


class TestCorrectness:
    def test_kind_mismatch_incorrect(self, stream_and_waveform):
        symbols, waveform = stream_and_waveform
        period = waveform.symbol_period
        band = make_band(DecisionKind.WHITE, None, mid_time=period / 2)  # truth: data
        matches = align_ground_truth([band], symbols, waveform)
        assert not matches[0].correct

    def test_index_mismatch_incorrect(self, stream_and_waveform):
        symbols, waveform = stream_and_waveform
        band = make_band(DecisionKind.DATA, 2, mid_time=waveform.symbol_period / 2)
        matches = align_ground_truth([band], symbols, waveform)
        assert not matches[0].correct


class TestRates:
    def test_empty_is_zero(self):
        assert symbol_error_rate([]) == 0.0
        assert data_symbol_error_rate([]) == 0.0

    def test_ser_fraction(self, stream_and_waveform):
        symbols, waveform = stream_and_waveform
        period = waveform.symbol_period
        bands = [
            make_band(DecisionKind.DATA, 1, mid_time=period / 2),     # correct
            make_band(DecisionKind.DATA, 0, mid_time=1.5 * period),   # wrong (white)
            make_band(DecisionKind.OFF, None, mid_time=2.5 * period), # correct
            make_band(DecisionKind.DATA, 2, mid_time=3.5 * period),   # wrong (4)
        ]
        matches = align_ground_truth(bands, symbols, waveform)
        assert symbol_error_rate(matches) == pytest.approx(0.5)
        # DATA truths are positions 0 and 3: one of two wrong.
        assert data_symbol_error_rate(matches) == pytest.approx(0.5)


class TestLinkMetrics:
    def test_throughput_and_goodput(self):
        report = ReceiverReport()
        report.bands = [make_band(DecisionKind.DATA, 0)] * 100
        report.symbols_detected = 100
        report.symbols_lost_in_gaps = 25
        report.packets_decoded = 4
        report.packets_seen = 5
        metrics = compute_link_metrics(
            report=report,
            matches=[],
            bits_per_symbol=3,
            payload_bytes_per_packet=10,
            duration_s=2.0,
        )
        assert metrics.throughput_bps == pytest.approx(150.0)
        assert metrics.goodput_bps == pytest.approx(160.0)
        assert metrics.inter_frame_loss_ratio == pytest.approx(0.2)

    def test_summary_readable(self):
        report = ReceiverReport()
        metrics = compute_link_metrics(report, [], 3, 10, 1.0)
        assert "SER" in metrics.summary()

    def test_invalid_duration(self):
        with pytest.raises(Exception):
            compute_link_metrics(ReceiverReport(), [], 3, 10, 0.0)
