"""Unit tests for the shared system configuration."""

import pytest

from repro.core.config import SystemConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        config = SystemConfig()
        assert config.csk_order == 8
        assert config.bits_per_symbol == 3

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(csk_order=6)

    def test_invalid_loss_ratio(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(design_loss_ratio=0.6)

    def test_symbol_rate_beyond_pwm(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(symbol_rate=5000)

    def test_invalid_illumination_ratio(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(illumination_ratio=0.0)


class TestDerived:
    def test_flicker_driven_eta_decreases_whites_with_rate(self):
        slow = SystemConfig(symbol_rate=1000)
        fast = SystemConfig(symbol_rate=4000)
        assert fast.effective_illumination_ratio() > slow.effective_illumination_ratio()

    def test_explicit_eta_respected(self):
        config = SystemConfig(illumination_ratio=0.75)
        assert config.effective_illumination_ratio() == 0.75

    def test_rs_params_match_loss(self):
        config = SystemConfig(
            csk_order=8, symbol_rate=3000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        params = config.rs_params()
        assert params.k < params.n <= 255
        assert params.code_rate < 1.0

    def test_higher_loss_more_parity(self):
        low = SystemConfig(design_loss_ratio=0.1, illumination_ratio=0.8)
        high = SystemConfig(design_loss_ratio=0.4, illumination_ratio=0.8)
        assert high.rs_params().code_rate < low.rs_params().code_rate

    def test_factories_consistent(self):
        config = SystemConfig(csk_order=16)
        assert config.make_mapper().bits_per_symbol == 4
        packetizer = config.make_packetizer()
        assert packetizer.bits_per_symbol == 4
        codec = config.make_codec()
        assert codec.n == config.rs_params().n

    def test_describe_mentions_parameters(self):
        text = SystemConfig(csk_order=16, symbol_rate=3000).describe()
        assert "16-CSK" in text and "3000" in text
