"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.device == "nexus5"
        assert args.order == 8

    def test_sweep_list_args(self):
        args = build_parser().parse_args(
            ["sweep", "--orders", "4,8", "--rates", "1000"]
        )
        assert args.orders == "4,8"

    def test_unknown_device_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "--device", "pixel9"])


class TestInfo:
    def test_info_prints_parameters(self, capsys):
        code = main(["info", "--order", "16", "--rate", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RS(" in out
        assert "rows per symbol" in out
        assert "16-CSK" in out

    def test_info_respects_device(self, capsys):
        main(["info", "--device", "iphone5s"])
        assert "iPhone 5S" in capsys.readouterr().out


class TestSweepGuard:
    def test_sweep_marks_infeasible_rates(self, capsys):
        # 13 kHz exceeds the Nexus 5's 10-row band limit: reported, not run.
        code = main(
            [
                "sweep",
                "--orders", "4",
                "--rates", "13000",
                "--duration", "0.2",
            ]
        )
        assert code == 0
        assert "band < 10 px" in capsys.readouterr().out
