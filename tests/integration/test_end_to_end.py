"""End-to-end integration tests: payload in, payload out through the full chain."""

import pytest

from repro.core.config import SystemConfig
from repro.core.metrics import align_ground_truth, data_symbol_error_rate
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.simulator import LinkSimulator
from repro.link.workloads import beacon_payload, text_payload


class TestFullChain:
    def test_text_broadcast_recovered(self, tiny_device):
        """A retail-style text payload survives the complete optical chain."""
        config = SystemConfig(
            csk_order=8, symbol_rate=1000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        payload = text_payload(2 * config.rs_params().k, seed=7)
        result = LinkSimulator(config, tiny_device, seed=3).run(
            payload=payload, duration_s=3.0
        )
        assert result.recovered_broadcast() == payload

    def test_beacon_broadcast(self, tiny_device):
        config = SystemConfig(
            csk_order=4, symbol_rate=1000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        k = config.rs_params().k
        beacon = beacon_payload(42, "maps/floor2")
        padded = beacon + bytes(max(0, k - len(beacon)))
        result = LinkSimulator(config, tiny_device, seed=4).run(
            payload=padded[:k], duration_s=3.0
        )
        delivered = result.delivered_payload()
        assert padded[:k] in delivered

    def test_low_order_near_zero_ser(self, tiny_device):
        """Paper: 4/8-CSK give SER below 1e-2 even through a noisy camera."""
        for order in (4, 8):
            config = SystemConfig(
                csk_order=order, symbol_rate=1000, design_loss_ratio=0.25,
                illumination_ratio=0.8,
            )
            result = LinkSimulator(config, tiny_device, seed=5).run(duration_s=2.0)
            assert result.metrics.data_symbol_error_rate < 0.02

    def test_erasure_recovery_in_spanning_packets(self, tiny_device):
        """Packets straddling the inter-frame gap must still decode (§5)."""
        config = SystemConfig(
            csk_order=8, symbol_rate=1000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        result = LinkSimulator(config, tiny_device, seed=6).run(duration_s=3.0)
        incomplete_decodes = 0
        # Every decoded packet implies erasure decoding worked whenever the
        # packet was cut; check we decoded more packets than frames could
        # hold uncut packets.
        assert result.metrics.packets_decoded >= 3
        assert result.report.symbols_lost_in_gaps > 0

    def test_calibration_absorbed_before_data(self, tiny_device):
        config = SystemConfig(
            csk_order=8, symbol_rate=1000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        transmitter = ColorBarsTransmitter(config)
        plan = transmitter.plan(text_payload(config.rs_params().k))
        waveform = transmitter.waveform(plan)
        camera = tiny_device.make_camera(simulated_columns=16, seed=0)
        frames = camera.record(waveform, duration=2.0)
        receiver = make_receiver(config, tiny_device.timing)
        assert not receiver.calibration.is_calibrated
        report = receiver.process_frames(frames)
        assert receiver.calibration.is_calibrated
        assert report.calibration_updates > 0


class TestGroundTruthConsistency:
    def test_ser_measured_against_truth(self, tiny_device):
        config = SystemConfig(
            csk_order=8, symbol_rate=1000, design_loss_ratio=0.25,
            illumination_ratio=0.8,
        )
        result = LinkSimulator(config, tiny_device, seed=8).run(duration_s=1.5)
        # Recomputing from the stored matches must reproduce the metric.
        assert data_symbol_error_rate(result.matches) == pytest.approx(
            result.metrics.data_symbol_error_rate
        )

    def test_no_frames_no_output(self, tiny_device):
        config = SystemConfig(
            csk_order=8, symbol_rate=1000, illumination_ratio=0.8
        )
        receiver = make_receiver(config, tiny_device.timing)
        report = receiver.process_frames([])
        assert report.packets_decoded == 0
        assert report.frames_processed == 0
