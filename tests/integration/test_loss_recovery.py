"""Property-based integration test: packets survive arbitrary gap bursts.

Fabricates the assembler's input directly from a packetizer's output,
drops random contiguous bursts of symbols (the inter-frame gap), and checks
that the reconstructed codeword + erasure positions always let the RS codec
recover the payload whenever the loss is within the code's budget — the §5
reliability contract, exercised over many random burst geometries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.csk.constellation import design_constellation
from repro.csk.demodulator import DecisionKind, SymbolDecision
from repro.csk.mapping import SymbolMapper
from repro.exceptions import UncorrectableBlockError
from repro.fec.reed_solomon import ReedSolomonCodec
from repro.packet.packetizer import PacketConfig, Packetizer
from repro.phy.led import typical_tri_led
from repro.rx.assembler import PacketAssembler
from repro.rx.detector import ReceivedBand
from repro.rx.segmentation import Band

SYMBOL_RATE = 1000.0
PERIOD = 1.0 / SYMBOL_RATE


def make_stack(order=8, eta=0.8):
    gamut = typical_tri_led().gamut
    mapper = SymbolMapper(design_constellation(order, gamut))
    packetizer = Packetizer(mapper, PacketConfig(illumination_ratio=eta))
    assembler = PacketAssembler(packetizer, SYMBOL_RATE)
    return packetizer, assembler


def bands_for(symbols, drop):
    frames = {0: [], 1: []}
    for position, symbol in enumerate(symbols):
        if position in drop:
            continue
        if symbol.is_off:
            decision = SymbolDecision(DecisionKind.OFF, None, 0.0, True)
        elif symbol.is_white:
            decision = SymbolDecision(DecisionKind.WHITE, None, 0.5, True)
        else:
            decision = SymbolDecision(DecisionKind.DATA, symbol.index, 0.5, True)
        frame_index = 0 if position < (len(symbols) // 2) else 1
        band = Band(0, 20, 5, 15, np.array([70.0, 0.0, 0.0]))
        frames[frame_index].append(
            ReceivedBand(
                frame_index=frame_index,
                band=band,
                mid_time=position * PERIOD + PERIOD / 2,
                decision=decision,
            )
        )
    return [frames[0], frames[1]]


class TestBurstRecovery:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=30),
    )
    def test_burst_within_budget_recovers(self, seed, burst_len):
        """Any in-body burst the parity covers must decode exactly."""
        rng = np.random.default_rng(seed)
        packetizer, assembler = make_stack()
        codec = ReedSolomonCodec(40, 20)
        payload = bytes(rng.integers(0, 256, 20, dtype=np.uint8))
        codeword = codec.encode(payload)
        symbols = packetizer.build_data_packet(codeword)

        header_len = 8 + 3  # preamble + size field
        body_len = len(symbols) - header_len
        burst_len = min(burst_len, body_len - 1)
        if burst_len > 0:
            start = header_len + int(
                rng.integers(0, body_len - burst_len + 1)
            )
            drop = set(range(start, start + burst_len))
        else:
            drop = set()

        items = assembler.stitch(bands_for(symbols, drop))
        packets, _ = assembler.extract(items)
        assert len(packets) == 1
        packet = packets[0]
        assert packet.header_bytes == 40

        # Bits per data symbol = 3 -> bytes erased by the burst.
        if len(packet.erasure_positions) <= codec.num_parity:
            decoded = codec.decode(
                packet.codeword, packet.erasure_positions
            )
            assert decoded == payload
        else:
            with pytest.raises(UncorrectableBlockError):
                codec.decode(packet.codeword, packet.erasure_positions)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_unerased_bytes_always_faithful(self, seed):
        """Bytes outside the erasure set must match the codeword exactly."""
        rng = np.random.default_rng(seed)
        packetizer, assembler = make_stack(order=16)
        codec = ReedSolomonCodec(30, 16)
        payload = bytes(rng.integers(0, 256, 16, dtype=np.uint8))
        codeword = codec.encode(payload)
        symbols = packetizer.build_data_packet(codeword)

        header_len = 8 + 3
        drop = {
            int(p)
            for p in rng.choice(
                np.arange(header_len, len(symbols)),
                size=min(6, len(symbols) - header_len),
                replace=False,
            )
        }
        items = assembler.stitch(bands_for(symbols, drop))
        packets, _ = assembler.extract(items)
        assert len(packets) == 1
        packet = packets[0]
        for index, byte in enumerate(packet.codeword):
            if index not in packet.erasure_positions:
                assert byte == codeword[index]
