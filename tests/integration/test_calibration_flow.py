"""Integration tests for the calibration lifecycle across recordings."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import ColorBarsTransmitter, make_receiver
from repro.link.workloads import text_payload
from repro.phy.waveform import EXTEND_CYCLE


@pytest.fixture
def link(tiny_device):
    config = SystemConfig(
        csk_order=8, symbol_rate=1000, design_loss_ratio=0.25,
        illumination_ratio=0.8,
    )
    transmitter = ColorBarsTransmitter(config)
    plan = transmitter.plan(text_payload(2 * config.rs_params().k))
    waveform = transmitter.waveform(plan, extend=EXTEND_CYCLE)
    return config, transmitter, plan, waveform


class TestCalibrationLifecycle:
    def test_cold_receiver_calibrates_from_stream(self, link, tiny_device):
        config, transmitter, plan, waveform = link
        camera = tiny_device.make_camera(simulated_columns=16, seed=0)
        frames = camera.record(waveform, duration=2.0)
        receiver = make_receiver(config, tiny_device.timing)
        assert not receiver.calibration.is_calibrated
        receiver.process_frames(frames)
        assert receiver.calibration.is_calibrated
        assert receiver.calibration.seen_count == 8

    def test_warm_receiver_decodes_immediately(self, link, tiny_device):
        """A receiver carrying calibration from a previous session decodes
        a new recording in a single pass."""
        config, transmitter, plan, waveform = link
        camera = tiny_device.make_camera(simulated_columns=16, seed=1)
        first = camera.record(waveform, duration=2.0)
        receiver = make_receiver(config, tiny_device.timing)
        receiver.process_frames(first)
        table = receiver.calibration

        # New session, same channel: reuse the table.
        camera2 = tiny_device.make_camera(simulated_columns=16, seed=2)
        second = camera2.record(waveform, duration=1.0)
        warm = make_receiver(config, tiny_device.timing, calibration=table)
        report = warm.process_frames(second)
        assert report.packets_decoded > 0

    def test_references_keep_updating(self, link, tiny_device):
        config, transmitter, plan, waveform = link
        camera = tiny_device.make_camera(simulated_columns=16, seed=3)
        frames = camera.record(waveform, duration=2.0)
        receiver = make_receiver(config, tiny_device.timing)
        report = receiver.process_frames(frames)
        # Bootstrap pass + decode pass both absorb calibration packets.
        assert report.calibration_updates >= 2
        assert receiver.calibration.updates_applied >= report.calibration_updates

    def test_separation_margin_reported(self, link, tiny_device):
        config, transmitter, plan, waveform = link
        camera = tiny_device.make_camera(simulated_columns=16, seed=4)
        frames = camera.record(waveform, duration=2.0)
        receiver = make_receiver(config, tiny_device.timing)
        receiver.process_frames(frames)
        assert receiver.calibration.separation_margin() > 2.3
