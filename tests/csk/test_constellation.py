"""Unit tests for the CSK constellation designs."""

import numpy as np
import pytest

from repro.csk.constellation import (
    SUPPORTED_ORDERS,
    Constellation,
    design_constellation,
)
from repro.color.chromaticity import ChromaticityPoint
from repro.exceptions import ConstellationError


class TestDesigns:
    def test_supported_orders(self, gamut):
        for order in SUPPORTED_ORDERS:
            constellation = design_constellation(order, gamut)
            assert len(constellation) == order

    def test_unsupported_order(self, gamut):
        with pytest.raises(ConstellationError):
            design_constellation(64, gamut)

    def test_bits_per_symbol(self, gamut):
        expected = {4: 2, 8: 3, 16: 4, 32: 5}
        for order, bits in expected.items():
            assert design_constellation(order, gamut).bits_per_symbol == bits

    def test_white_balance_invariant(self, gamut, any_order):
        """Equal-proportion mixture of all symbols must be the white point (§4)."""
        constellation = design_constellation(any_order, gamut)
        mean = constellation.mean_chromaticity()
        centroid = gamut.centroid()
        assert mean.distance_to(centroid) < 1e-9

    def test_centroid_symbol_free(self, gamut, any_order):
        """No data symbol may sit on the white point (illumination ambiguity)."""
        constellation = design_constellation(any_order, gamut)
        centroid = gamut.centroid()
        for point in constellation.points:
            assert point.distance_to(centroid) > 0.02

    def test_all_points_in_gamut(self, gamut, any_order):
        constellation = design_constellation(any_order, gamut)
        for point in constellation.points:
            assert gamut.contains(point, tolerance=1e-6)

    def test_min_distance_decreases_with_order(self, gamut):
        distances = [
            design_constellation(order, gamut).min_distance()
            for order in SUPPORTED_ORDERS
        ]
        assert distances == sorted(distances, reverse=True)

    def test_no_duplicate_points(self, gamut, any_order):
        constellation = design_constellation(any_order, gamut)
        points = {(round(p.x, 9), round(p.y, 9)) for p in constellation.points}
        assert len(points) == any_order


class TestConstellationClass:
    def test_point_lookup(self, constellation8):
        assert isinstance(constellation8.point(0), ChromaticityPoint)

    def test_point_out_of_range(self, constellation8):
        with pytest.raises(ConstellationError):
            constellation8.point(8)

    def test_as_array_shape(self, constellation8):
        assert constellation8.as_array().shape == (8, 2)

    def test_nearest_exact_point(self, constellation8):
        target = constellation8.point(5)
        index, distance = constellation8.nearest(target.as_array())
        assert index == 5
        assert distance < 1e-12

    def test_nearest_perturbed(self, constellation8):
        target = constellation8.point(2).as_array() + np.array([0.005, -0.005])
        index, _ = constellation8.nearest(target)
        assert index == 2

    def test_wrong_point_count(self, gamut):
        points = [gamut.red, gamut.green, gamut.blue]
        with pytest.raises(ConstellationError):
            Constellation(4, points, gamut)

    def test_non_power_of_two(self, gamut):
        points = gamut.grid_points(2)
        with pytest.raises(ConstellationError):
            Constellation(6, points, gamut)

    def test_duplicate_rejected(self, gamut):
        points = [gamut.red, gamut.red, gamut.green, gamut.blue]
        with pytest.raises(ConstellationError):
            Constellation(4, points, gamut)

    def test_outside_gamut_rejected(self, gamut):
        points = [
            gamut.red,
            gamut.green,
            gamut.blue,
            ChromaticityPoint(0.9, 0.9),
        ]
        with pytest.raises(ConstellationError):
            Constellation(4, points, gamut)
