"""Tests for the constellation optimizer (the paper's §10 future work)."""

import numpy as np
import pytest

from repro.csk.constellation import design_constellation
from repro.csk.optimizer import (
    identity_map,
    optimize_constellation,
    received_space_map,
    separation_report,
)
from repro.exceptions import ConstellationError


class TestIdentitySpace:
    def test_never_worse_than_start(self, gamut):
        standard = design_constellation(8, gamut)
        optimized = optimize_constellation(
            8, gamut, iterations=300, seed=0
        )
        before = separation_report(standard)["decision_min_separation"]
        after = separation_report(optimized)["decision_min_separation"]
        assert after >= before * 0.999

    def test_white_balance_preserved(self, gamut):
        optimized = optimize_constellation(16, gamut, iterations=300, seed=1)
        mean = optimized.mean_chromaticity()
        assert mean.distance_to(gamut.centroid()) < 1e-9

    def test_points_stay_in_gamut(self, gamut):
        optimized = optimize_constellation(8, gamut, iterations=300, seed=2)
        for point in optimized.points:
            assert gamut.contains(point, tolerance=1e-9)

    def test_white_point_kept_clear(self, gamut):
        optimized = optimize_constellation(8, gamut, iterations=300, seed=3)
        centroid = gamut.centroid()
        for point in optimized.points:
            assert point.distance_to(centroid) > 0.02

    def test_deterministic_given_seed(self, gamut):
        a = optimize_constellation(8, gamut, iterations=200, seed=5)
        b = optimize_constellation(8, gamut, iterations=200, seed=5)
        assert np.allclose(a.as_array(), b.as_array())

    def test_invalid_parameters(self, gamut):
        with pytest.raises(ConstellationError):
            optimize_constellation(8, gamut, iterations=0)
        with pytest.raises(ConstellationError):
            optimize_constellation(8, gamut, margin=0.5)


class TestReceivedSpace:
    def test_device_aware_optimization_improves_margin(self, gamut, led):
        from repro.camera.devices import nexus_5

        mapper = received_space_map(nexus_5().response, led)
        standard = design_constellation(16, gamut)
        optimized = optimize_constellation(
            16, gamut, space_map=mapper, iterations=600, seed=7
        )
        before = separation_report(standard, mapper)["decision_min_separation"]
        after = separation_report(optimized, mapper)["decision_min_separation"]
        assert after > before * 1.05  # a real improvement, not noise

    def test_map_shape(self, led):
        from repro.camera.devices import iphone_5s

        mapper = received_space_map(iphone_5s().response, led)
        xy = led.gamut.centroid().as_array()[np.newaxis, :]
        out = mapper(xy)
        assert out.shape == (1, 2)


class TestReport:
    def test_report_fields(self, gamut):
        report = separation_report(design_constellation(8, gamut))
        assert report["white_balanced"]
        assert report["transmit_min_distance"] > 0
        assert report["decision_min_separation"] == pytest.approx(
            report["transmit_min_distance"], rel=1e-6
        )


class TestConfigIntegration:
    def test_custom_constellation_used(self, gamut):
        from repro.core.config import SystemConfig

        optimized = optimize_constellation(8, gamut, iterations=100, seed=9)
        config = SystemConfig(csk_order=8, custom_constellation=optimized)
        assert config.constellation is optimized

    def test_order_mismatch_rejected(self, gamut):
        from repro.core.config import SystemConfig
        from repro.exceptions import ConfigurationError

        optimized = optimize_constellation(8, gamut, iterations=50, seed=9)
        with pytest.raises(ConfigurationError):
            SystemConfig(csk_order=16, custom_constellation=optimized)
